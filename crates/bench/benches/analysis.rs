//! Batch vs streaming analysis: the same capture analyzed through the
//! buffer-everything path (`analyze_capture`) and through the online
//! path (`LiveAnalyzer` / `FlowProbe` fed one record at a time). The
//! two produce bit-identical reports; this measures what the streaming
//! path costs in throughput and what it saves in peak memory.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csig_core::{LiveAnalyzer, ModelMeta, SignatureClassifier};
use csig_dtree::{Dataset, TreeParams};
use csig_features::FlowProbe;
use csig_netsim::{Capture, FlowId, LinkConfig, PacketRecord, SimDuration, Simulator};
use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};
use std::hint::black_box;

/// A realistic server-side capture: a 4 MB download over a 20 Mbps /
/// 100 ms-buffer bottleneck (~6 k packets), same shape as pipeline.rs.
fn sample_capture() -> Capture {
    let mut sim = Simulator::new(1234);
    let server = sim.add_host(Box::new(TcpServerAgent::new(
        TcpConfig::default(),
        ServerSendPolicy::Fixed(4_000_000),
    )));
    let client = sim.add_host(Box::new(TcpClientAgent::new(
        server,
        TcpConfig::default(),
        ClientBehavior::Once,
        500,
    )));
    sim.add_duplex_link(
        server,
        client,
        LinkConfig::new(20_000_000, SimDuration::from_millis(20)).buffer_ms(100),
    );
    sim.compute_routes();
    let cap = sim.attach_capture(server);
    sim.set_event_budget(50_000_000);
    sim.run();
    sim.take_capture(cap)
}

fn tiny_model() -> SignatureClassifier {
    let mut d = Dataset::new();
    for i in 0..20 {
        let x = i as f64 / 20.0;
        d.push(vec![0.6 + 0.4 * x, 0.15 + 0.2 * x], 0);
        d.push(vec![0.3 * x, 0.05 * x], 1);
    }
    SignatureClassifier::train(
        &d,
        TreeParams::default(),
        ModelMeta {
            congestion_threshold: 0.8,
            trained_on: "bench".into(),
            n_train: 40,
            n_filtered: 0,
        },
    )
}

/// One-shot peak-memory note: what the batch path must buffer vs what
/// the streaming path holds, on the same capture.
fn print_memory_note(cap: &Capture) {
    let batch_bytes = cap.len() * std::mem::size_of::<PacketRecord>();
    let mut probe = FlowProbe::new(FlowId(500));
    let mut peak_outstanding = 0usize;
    for rec in &cap.records {
        probe.push(rec);
        peak_outstanding = peak_outstanding.max(probe.outstanding_len());
    }
    // The probe's variable-size state is the RTT extractor's
    // outstanding-segment list; everything else is O(1) scalars.
    let stream_bytes =
        std::mem::size_of::<FlowProbe>() + peak_outstanding * 3 * std::mem::size_of::<u64>();
    eprintln!(
        "memory-note: batch buffers {} records = {} bytes; \
         streaming probe peak state ~{} bytes ({} outstanding segments) \
         — {:.0}x smaller",
        cap.len(),
        batch_bytes,
        stream_bytes,
        peak_outstanding,
        batch_bytes as f64 / stream_bytes as f64
    );
}

fn bench_analysis(c: &mut Criterion) {
    let cap = sample_capture();
    let clf = tiny_model();
    print_memory_note(&cap);

    let mut g = c.benchmark_group("analysis");
    g.throughput(Throughput::Elements(cap.len() as u64));

    // Batch: buffer everything, then analyze (the pre-refactor shape —
    // analyze_capture now replays through LiveAnalyzer internally).
    g.bench_function("batch_analyze_capture", |b| {
        b.iter(|| black_box(csig_core::analyze_capture(black_box(&clf), black_box(&cap))))
    });

    // Streaming: feed the analyzer one record at a time, as a live tap
    // would, then collect the reports.
    g.bench_function("streaming_live_analyzer", |b| {
        b.iter(|| {
            let mut live = LiveAnalyzer::new(clf.clone());
            for rec in &cap.records {
                live.push(black_box(rec));
            }
            black_box(live.finish())
        })
    });

    // Per-record cost of a single-flow probe (no classification).
    g.bench_function("streaming_flow_probe", |b| {
        b.iter(|| {
            let mut probe = FlowProbe::new(FlowId(500));
            for rec in &cap.records {
                probe.push(black_box(rec));
            }
            black_box(probe.features())
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_analysis
}
criterion_main!(benches);
