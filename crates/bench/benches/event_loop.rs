//! Event-loop hot-path benchmarks: the calendar-queue scheduler in
//! isolation, plus the two canonical end-to-end scenarios tracked in
//! `BENCH_netsim.json` (see `src/bin/bench_netsim.rs`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csig_netsim::{EventKind, EventQueue, LinkConfig, NodeId, SimDuration, SimTime, Simulator};
use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Scheduler push/pop mix: a classic hold-model workload. Keeps ~1k
/// events pending and alternates pop-one/push-one with short-horizon
/// offsets (the LinkService/Deliver regime), salted with same-tick ties
/// and occasional far-future events that exercise the overflow tier.
fn scheduler_hold(ops: u64, seed: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut rng = StdRng::seed_from_u64(seed);
    // Pre-fill.
    let mut now = SimTime::ZERO;
    for i in 0..1024u64 {
        q.push(
            now + SimDuration::from_nanos(rng.gen_range(0..2_000_000)),
            EventKind::Start(NodeId(i as u32)),
        );
    }
    let mut popped = 0u64;
    for _ in 0..ops {
        if let Some(e) = q.pop() {
            now = e.time;
            popped += 1;
        }
        let offset = match rng.gen_range(0..100u32) {
            // Same-tick tie: lands in the bucket being drained.
            0..=4 => 0,
            // Far future: beyond the wheel window, via the overflow heap.
            5..=6 => rng.gen_range(400_000_000..2_000_000_000),
            // Short horizon: the service/delivery regime.
            _ => rng.gen_range(1..2_000_000),
        };
        q.push(
            now + SimDuration::from_nanos(offset),
            EventKind::Start(NodeId(0)),
        );
    }
    popped
}

fn lean_tcp() -> TcpConfig {
    TcpConfig {
        record_samples: false,
        ..TcpConfig::default()
    }
}

/// One 4 MB transfer over a 50 Mbps / 10 ms duplex.
fn single_flow(seed: u64) -> u64 {
    let mut sim = Simulator::new(seed);
    let server = sim.add_host(Box::new(TcpServerAgent::new(
        lean_tcp(),
        ServerSendPolicy::Fixed(4_000_000),
    )));
    let client = sim.add_host(Box::new(TcpClientAgent::new(
        server,
        lean_tcp(),
        ClientBehavior::Once,
        1,
    )));
    sim.add_duplex_link(
        server,
        client,
        LinkConfig::new(50_000_000, SimDuration::from_millis(10)).buffer_ms(50),
    );
    sim.compute_routes();
    sim.set_event_budget(50_000_000);
    sim.run();
    sim.events_processed()
}

/// 32 clients fetching 1 MB each through a shared 100 Mbps bottleneck.
fn contended_32(seed: u64) -> u64 {
    let mut sim = Simulator::new(seed);
    let mut server_agent = TcpServerAgent::new(lean_tcp(), ServerSendPolicy::Fixed(1_000_000));
    server_agent.keep_completed = false;
    let server = sim.add_host(Box::new(server_agent));
    let r1 = sim.add_router();
    let r2 = sim.add_router();
    sim.add_duplex_link(
        server,
        r1,
        LinkConfig::new(1_000_000_000, SimDuration::from_millis(1)),
    );
    sim.add_duplex_link(
        r1,
        r2,
        LinkConfig::new(100_000_000, SimDuration::from_millis(10)).buffer_ms(50),
    );
    for i in 0..32u32 {
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            lean_tcp(),
            ClientBehavior::Once,
            i + 1,
        )));
        sim.add_duplex_link(
            r2,
            client,
            LinkConfig::new(1_000_000_000, SimDuration::from_millis(1)),
        );
    }
    sim.compute_routes();
    sim.set_event_budget(200_000_000);
    sim.run();
    sim.events_processed()
}

fn bench_event_loop(c: &mut Criterion) {
    const HOLD_OPS: u64 = 200_000;
    let single_events = single_flow(1);
    let contended_events = contended_32(1);

    let mut g = c.benchmark_group("event_loop");
    g.throughput(Throughput::Elements(HOLD_OPS));
    g.bench_function("scheduler_hold_mix", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(scheduler_hold(HOLD_OPS, seed))
        })
    });
    g.throughput(Throughput::Elements(single_events));
    g.bench_function("single_flow_4mb", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(single_flow(seed))
        })
    });
    g.sample_size(10);
    g.throughput(Throughput::Elements(contended_events));
    g.bench_function("contended_bottleneck_32", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(contended_32(seed))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_loop
}
criterion_main!(benches);
