//! Per-figure regeneration benches: times the smallest meaningful unit
//! of every table/figure pipeline (the `fig*` binaries run the full
//! versions; EXPERIMENTS.md records their outputs). One bench exists
//! per paper artifact so `cargo bench` exercises every experiment path.

use criterion::{criterion_group, criterion_main, Criterion};
use csig_bench::{ablation, dispute, fig1, fig3, multiplexing, tslp_exp};
use csig_core::train_from_results;
use csig_dtree::TreeParams;
use csig_mlab::{generate, run_campaign, Dispute2014Config, Tslp2017Config};
use csig_netsim::SimDuration;
use csig_testbed::{run_test, AccessParams, CongestionMode, Profile, TestbedConfig};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Fig. 1 — one test per scenario at the Figure-1 setting.
    g.bench_function("fig1_unit", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(fig1::run(1, Profile::Scaled, seed))
        })
    });

    // Figs. 3/4 — threshold sweep + scatter on precomputed results
    // (the analysis stage; the sweep itself is the testbed bench).
    let sweep_results = fig3::run_sweep(2, false, Profile::Scaled, 303);
    g.bench_function("fig3_threshold_sweep_analysis", |b| {
        b.iter(|| black_box(fig3::threshold_points(black_box(&sweep_results), 1)))
    });
    g.bench_function("fig4_scatter_analysis", |b| {
        b.iter(|| black_box(fig3::fig4_points(black_box(&sweep_results))))
    });

    // §3.3 — one reduced-multiplexing external test.
    g.bench_function("multiplexing_unit", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let cfg = TestbedConfig::scaled(
                AccessParams {
                    rate_mbps: 50,
                    loss_pct: 0.02,
                    latency_ms: 20,
                    buffer_ms: 50,
                },
                seed,
            )
            .with_congestion(CongestionMode::TgCong { flows: 8 });
            black_box(run_test(&cfg))
        })
    });

    // Figs. 5/7/8/9 — one Dispute2014 cell (3 NDT micro-sims).
    g.bench_function("dispute2014_cell", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(generate(&Dispute2014Config {
                tests_per_cell: 1,
                test_duration: SimDuration::from_secs(2),
                seed,
            }))
        })
    });

    // Fig. 7 analysis on a precomputed campaign + model.
    let campaign = generate(&Dispute2014Config {
        tests_per_cell: 3,
        test_duration: SimDuration::from_secs(2),
        seed: 707,
    });
    let clf = train_from_results(&sweep_results, 0.7, TreeParams::default()).expect("model");
    g.bench_function("fig7_analysis", |b| {
        b.iter(|| black_box(dispute::fig7(black_box(&clf), black_box(&campaign))))
    });
    g.bench_function("fig9_retrain_and_classify", |b| {
        b.iter(|| black_box(dispute::fig9(black_box(&campaign), 1)))
    });

    // Fig. 6 / §5.4 — a 1-day TSLP2017 campaign slice.
    g.bench_function("fig6_tslp_campaign_day", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_campaign(&Tslp2017Config {
                days: 1,
                episode_days: vec![0],
                peak_test_minutes: 240,
                offpeak_test_minutes: 480,
                test_duration: SimDuration::from_secs(2),
                probe_interval: SimDuration::from_secs(1800),
                seed,
                ..Tslp2017Config::default()
            }))
        })
    });
    let tslp_out = run_campaign(&Tslp2017Config {
        days: 1,
        episode_days: vec![0],
        peak_test_minutes: 120,
        offpeak_test_minutes: 480,
        test_duration: SimDuration::from_secs(2),
        probe_interval: SimDuration::from_secs(900),
        seed: 808,
        ..Tslp2017Config::default()
    });
    g.bench_function("exp_tslp2017_evaluate", |b| {
        b.iter(|| {
            black_box(tslp_exp::evaluate(
                black_box(&clf),
                black_box(&tslp_out),
                25,
            ))
        })
    });

    // Ablations — CV analysis on precomputed results.
    g.bench_function("ablation_feature_depth_cv", |b| {
        b.iter(|| {
            black_box(ablation::feature_depth_ablation(
                black_box(&sweep_results),
                0.7,
                5,
            ))
        })
    });

    // §6 — one CUBIC/RED self-induced test.
    g.bench_function("cc_variant_unit", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut cfg = TestbedConfig::scaled(AccessParams::figure1(), seed);
            cfg.tcp.cc = csig_tcp::CcKind::Cubic;
            cfg.queue = csig_netsim::QueueKind::Red(Default::default());
            black_box(run_test(&cfg))
        })
    });

    // Keep the multiplexing module exercised end-to-end at tiny scale.
    g.bench_function("multiplexing_analysis", |b| {
        b.iter(|| black_box(multiplexing::run(black_box(&clf), 1, Profile::Scaled, 9)))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
