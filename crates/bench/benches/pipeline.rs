//! Microbenchmarks of the analysis pipeline: RTT extraction,
//! slow-start detection, feature computation, tree training/prediction
//! and pcap (de)serialization — the per-flow cost a production
//! deployment of the technique would pay.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use csig_dtree::{Dataset, DecisionTree, TreeParams};
use csig_features::features_from_samples;
use csig_netsim::{Capture, LinkConfig, SimDuration, Simulator};
use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};
use csig_trace::{detect_slow_start, extract_rtt_samples, read_pcap, split_flows, write_pcap};
use std::hint::black_box;

/// A realistic server-side capture: a 4 MB download over a 20 Mbps /
/// 100 ms-buffer bottleneck (~6 k packets).
fn sample_capture() -> Capture {
    let mut sim = Simulator::new(1234);
    let server = sim.add_host(Box::new(TcpServerAgent::new(
        TcpConfig::default(),
        ServerSendPolicy::Fixed(4_000_000),
    )));
    let client = sim.add_host(Box::new(TcpClientAgent::new(
        server,
        TcpConfig::default(),
        ClientBehavior::Once,
        500,
    )));
    sim.add_duplex_link(
        server,
        client,
        LinkConfig::new(20_000_000, SimDuration::from_millis(20)).buffer_ms(100),
    );
    sim.compute_routes();
    let cap = sim.attach_capture(server);
    sim.set_event_budget(50_000_000);
    sim.run();
    sim.take_capture(cap)
}

fn training_set(n: usize) -> Dataset {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut d = Dataset::new();
    for _ in 0..n {
        d.push(
            vec![0.6 + rng.gen::<f64>() * 0.4, 0.1 + rng.gen::<f64>() * 0.3],
            0,
        );
        d.push(vec![rng.gen::<f64>() * 0.4, rng.gen::<f64>() * 0.1], 1);
    }
    d
}

fn bench_pipeline(c: &mut Criterion) {
    let cap = sample_capture();
    let flows = split_flows(&cap);
    let trace = flows.values().next().expect("one flow").clone();
    let samples = extract_rtt_samples(&trace);
    let ss = detect_slow_start(&trace);

    let mut g = c.benchmark_group("pipeline");
    g.bench_function("split_flows_6k_pkts", |b| {
        b.iter(|| black_box(split_flows(black_box(&cap))))
    });
    g.bench_function("extract_rtt_samples", |b| {
        b.iter(|| black_box(extract_rtt_samples(black_box(&trace))))
    });
    g.bench_function("detect_slow_start", |b| {
        b.iter(|| black_box(detect_slow_start(black_box(&trace))))
    });
    g.bench_function("features_from_samples", |b| {
        b.iter(|| black_box(features_from_samples(black_box(&samples), black_box(&ss))))
    });
    g.finish();

    let mut g = c.benchmark_group("dtree");
    let data = training_set(500);
    g.bench_function("fit_1000x2", |b| {
        b.iter(|| black_box(DecisionTree::fit(black_box(&data), TreeParams::default())))
    });
    let tree = DecisionTree::fit(&data, TreeParams::default());
    g.bench_function("predict", |b| {
        b.iter(|| black_box(tree.predict(black_box(&[0.5, 0.2]))))
    });
    g.finish();

    let mut g = c.benchmark_group("pcap");
    g.bench_function("write_6k_pkts", |b| {
        b.iter_batched(
            Vec::new,
            |mut buf| {
                write_pcap(black_box(&cap), &mut buf).expect("write");
                black_box(buf)
            },
            BatchSize::SmallInput,
        )
    });
    let mut encoded = Vec::new();
    write_pcap(&cap, &mut encoded).expect("write");
    g.bench_function("read_6k_pkts", |b| {
        b.iter(|| black_box(read_pcap(black_box(&encoded[..]), cap.node).expect("read")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline
}
criterion_main!(benches);
