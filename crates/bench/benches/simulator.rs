//! Simulator throughput benchmarks: raw event-processing rate and
//! end-to-end TCP transfer cost — the budget every experiment draws on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csig_netsim::{LinkConfig, SimDuration, Simulator, SinkAgent};
use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};
use csig_testbed::{run_test, AccessParams, TestbedConfig};
use std::hint::black_box;

/// Events processed simulating a 1 MB transfer over a simple duplex.
fn tcp_transfer(seed: u64) -> u64 {
    let mut sim = Simulator::new(seed);
    let server = sim.add_host(Box::new(TcpServerAgent::new(
        TcpConfig {
            record_samples: false,
            ..TcpConfig::default()
        },
        ServerSendPolicy::Fixed(1_000_000),
    )));
    let client = sim.add_host(Box::new(TcpClientAgent::new(
        server,
        TcpConfig {
            record_samples: false,
            ..TcpConfig::default()
        },
        ClientBehavior::Once,
        1,
    )));
    sim.add_duplex_link(
        server,
        client,
        LinkConfig::new(50_000_000, SimDuration::from_millis(10)).buffer_ms(50),
    );
    sim.compute_routes();
    sim.set_event_budget(50_000_000);
    sim.run();
    sim.events_processed()
}

/// Pure link/event machinery: a CBR-ish blast through a router.
fn packet_blast(seed: u64) -> u64 {
    use csig_testbed::CbrAgent;
    let mut sim = Simulator::new(seed);
    let sink = sim.add_host(Box::new(SinkAgent::default()));
    let src = sim.add_host(Box::new(CbrAgent::new(
        sink,
        csig_netsim::FlowId(1),
        100_000_000,
        csig_netsim::SimTime::ZERO,
        csig_netsim::SimTime::from_millis(500),
    )));
    let r = sim.add_router();
    sim.add_duplex_link(
        src,
        r,
        LinkConfig::new(1_000_000_000, SimDuration::from_millis(1)),
    );
    sim.add_duplex_link(
        r,
        sink,
        LinkConfig::new(1_000_000_000, SimDuration::from_millis(1)),
    );
    sim.compute_routes();
    sim.run();
    sim.events_processed()
}

fn bench_simulator(c: &mut Criterion) {
    // Calibrate throughput units once.
    let blast_events = packet_blast(1);
    let transfer_events = tcp_transfer(1);

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(blast_events));
    g.bench_function("packet_blast_events", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(packet_blast(seed))
        })
    });
    g.throughput(Throughput::Elements(transfer_events));
    g.bench_function("tcp_transfer_1mb", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(tcp_transfer(seed))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("testbed");
    g.sample_size(10);
    g.bench_function("scaled_self_induced_test", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_test(&TestbedConfig::scaled(
                AccessParams::figure1(),
                seed,
            )))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator
}
criterion_main!(benches);
