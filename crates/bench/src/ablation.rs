//! Ablations over the design choices DESIGN.md calls out:
//!
//! * both features vs NormDiff-only vs CoV-only (§3.3 "Why do we need
//!   both metrics?"),
//! * tree depth 3/4/5 (§3.2),
//! * slow-start-window RTTs vs whole-flow RTTs.

use csig_dtree::{cross_val_accuracy, Dataset, TreeParams};
use csig_features::features_from_rtts_ms;
use csig_testbed::{build_dataset, TestResult};
use csig_trace::{extract_rtt_samples, FlowTrace};
use serde::{Deserialize, Serialize};

/// Which feature subset to train on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSet {
    /// NormDiff and CoV (the paper's choice).
    Both,
    /// NormDiff only.
    NormDiffOnly,
    /// CoV only.
    CovOnly,
}

impl FeatureSet {
    /// All variants.
    pub const ALL: [FeatureSet; 3] = [
        FeatureSet::Both,
        FeatureSet::NormDiffOnly,
        FeatureSet::CovOnly,
    ];

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FeatureSet::Both => "NormDiff+CoV",
            FeatureSet::NormDiffOnly => "NormDiff only",
            FeatureSet::CovOnly => "CoV only",
        }
    }

    /// Project a 2-d `[NormDiff, CoV]` dataset onto this subset.
    pub fn project(self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new();
        for (row, &label) in data.features.iter().zip(&data.labels) {
            let projected = match self {
                FeatureSet::Both => row.clone(),
                FeatureSet::NormDiffOnly => vec![row[0]],
                FeatureSet::CovOnly => vec![row[1]],
            };
            out.push(projected, label);
        }
        out
    }
}

/// One ablation row: cross-validated accuracy for a feature set and
/// tree depth.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AblationRow {
    /// Feature subset.
    pub features: FeatureSet,
    /// Tree depth.
    pub depth: usize,
    /// 5-fold cross-validated accuracy.
    pub cv_accuracy: f64,
}

/// Cross-validate every (feature set × depth) combination on labeled
/// sweep results.
pub fn feature_depth_ablation(
    results: &[TestResult],
    threshold: f64,
    seed: u64,
) -> Vec<AblationRow> {
    let (data, _) = build_dataset(results, threshold);
    let mut rows = Vec::new();
    for features in FeatureSet::ALL {
        let projected = features.project(&data);
        for depth in [3usize, 4, 5] {
            rows.push(AblationRow {
                features,
                depth,
                cv_accuracy: cross_val_accuracy(&projected, TreeParams::with_depth(depth), 5, seed),
            });
        }
    }
    rows
}

/// Print the ablation table.
pub fn print(rows: &[AblationRow]) {
    println!("Ablation — 5-fold CV accuracy by feature set and tree depth");
    println!("  {:>14} {:>6} {:>9}", "features", "depth", "accuracy");
    for r in rows {
        println!(
            "  {:>14} {:>6} {:>8.1}%",
            r.features.label(),
            r.depth,
            r.cv_accuracy * 100.0
        );
    }
}

/// Whole-flow (not slow-start-windowed) features for the window
/// ablation: computed over *all* RTT samples of a trace.
pub fn whole_flow_features(trace: &FlowTrace) -> Option<[f64; 2]> {
    let samples = extract_rtt_samples(trace);
    let rtts: Vec<f64> = samples.iter().map(|s| s.rtt.as_millis_f64()).collect();
    features_from_rtts_ms(&rtts)
        .ok()
        .map(|f| [f.norm_diff, f.cov])
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_testbed::{small_grid, Profile, Sweep};

    #[test]
    fn both_features_never_lose_badly_to_either_alone() {
        let results = Sweep {
            grid: small_grid(),
            reps: 3,
            profile: Profile::Scaled,
            seed: 61,
        }
        .run(|_, _| {});
        let rows = feature_depth_ablation(&results, 0.7, 1);
        assert_eq!(rows.len(), 9);
        let acc = |f: FeatureSet, d: usize| {
            rows.iter()
                .find(|r| r.features == f && r.depth == d)
                .unwrap()
                .cv_accuracy
        };
        for d in [3, 4, 5] {
            let both = acc(FeatureSet::Both, d);
            assert!(both > 0.7, "depth {d}: both-features accuracy {both}");
            assert!(both + 0.1 >= acc(FeatureSet::NormDiffOnly, d));
            assert!(both + 0.1 >= acc(FeatureSet::CovOnly, d));
        }
    }

    #[test]
    fn projection_shapes() {
        let mut d = Dataset::new();
        d.push(vec![0.5, 0.2], 0);
        d.push(vec![0.1, 0.05], 1);
        assert_eq!(FeatureSet::Both.project(&d).dim(), 2);
        assert_eq!(FeatureSet::NormDiffOnly.project(&d).dim(), 1);
        let cov = FeatureSet::CovOnly.project(&d);
        assert_eq!(cov.features[0], vec![0.2]);
    }
}
