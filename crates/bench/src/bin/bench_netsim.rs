//! Event-loop throughput tracker: times the simulator hot path on two
//! canonical scenarios and writes a machine-readable `BENCH_netsim.json`
//! so the performance trajectory is recorded PR over PR.
//!
//! Scenarios:
//! * `single_flow` — one 4 MB TCP transfer over a 50 Mbps / 10 ms duplex.
//! * `contended_32` — 32 TCP clients behind one shared 100 Mbps
//!   bottleneck, all ramping together (the paper's self-induced
//!   congestion shape, scaled up).
//!
//! Each scenario runs `--reps` times (default 5) and reports the
//! *fastest* repetition (wall-clock noise only ever slows a run down).
//! If `results/bench_baseline.json` exists, the report includes the
//! baseline events/sec and the speedup factor.
//!
//! Usage: `bench_netsim [--reps N] [--out PATH] [--baseline PATH]`

use csig_netsim::{LinkConfig, SimDuration, Simulator};
use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};
use std::time::Instant;

/// One timed scenario outcome.
struct Measurement {
    name: &'static str,
    events: u64,
    wall_s: f64,
    peak_pending: usize,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
    fn ns_per_event(&self) -> f64 {
        self.wall_s * 1e9 / self.events as f64
    }
}

fn lean_tcp() -> TcpConfig {
    TcpConfig {
        record_samples: false,
        ..TcpConfig::default()
    }
}

/// One 4 MB transfer over a simple duplex path.
fn single_flow(seed: u64) -> Simulator {
    let mut sim = Simulator::new(seed);
    let server = sim.add_host(Box::new(TcpServerAgent::new(
        lean_tcp(),
        ServerSendPolicy::Fixed(4_000_000),
    )));
    let client = sim.add_host(Box::new(TcpClientAgent::new(
        server,
        lean_tcp(),
        ClientBehavior::Once,
        1,
    )));
    sim.add_duplex_link(
        server,
        client,
        LinkConfig::new(50_000_000, SimDuration::from_millis(10)).buffer_ms(50),
    );
    sim.compute_routes();
    sim
}

/// 32 clients, each on its own access link, all fetching 1 MB through a
/// shared 100 Mbps bottleneck at once.
fn contended_32(seed: u64) -> Simulator {
    let mut sim = Simulator::new(seed);
    let mut server_agent = TcpServerAgent::new(lean_tcp(), ServerSendPolicy::Fixed(1_000_000));
    server_agent.keep_completed = false;
    let server = sim.add_host(Box::new(server_agent));
    let r1 = sim.add_router();
    let r2 = sim.add_router();
    sim.add_duplex_link(
        server,
        r1,
        LinkConfig::new(1_000_000_000, SimDuration::from_millis(1)),
    );
    // The contended bottleneck: 100 Mbps, 10 ms, 50 ms of buffer.
    sim.add_duplex_link(
        r1,
        r2,
        LinkConfig::new(100_000_000, SimDuration::from_millis(10)).buffer_ms(50),
    );
    for i in 0..32u32 {
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            lean_tcp(),
            ClientBehavior::Once,
            i + 1,
        )));
        sim.add_duplex_link(
            r2,
            client,
            LinkConfig::new(1_000_000_000, SimDuration::from_millis(1)),
        );
    }
    sim.compute_routes();
    sim
}

fn run_scenario(name: &'static str, reps: u32, build: fn(u64) -> Simulator) -> Measurement {
    let mut best: Option<Measurement> = None;
    for rep in 0..reps {
        let mut sim = build(1 + rep as u64);
        sim.set_event_budget(200_000_000);
        let start = Instant::now();
        sim.run();
        let wall_s = start.elapsed().as_secs_f64();
        let m = Measurement {
            name,
            events: sim.events_processed(),
            wall_s,
            peak_pending: peak_pending(&sim),
        };
        best = match best {
            Some(b) if b.wall_s <= m.wall_s => Some(b),
            _ => Some(m),
        };
    }
    match best {
        Some(b) => b,
        None => unreachable!("reps >= 1"),
    }
}

/// High-water mark of the scheduler's pending-event count.
fn peak_pending(sim: &Simulator) -> usize {
    sim.peak_pending_events()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut reps: u32 = 5;
    let mut out = String::from("BENCH_netsim.json");
    let mut baseline_path = String::from("results/bench_baseline.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                reps = args[i].parse().unwrap_or(5).max(1);
            }
            "--out" => {
                i += 1;
                out.clone_from(&args[i]);
            }
            "--baseline" => {
                i += 1;
                baseline_path.clone_from(&args[i]);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    type Scenario = (&'static str, fn(u64) -> Simulator);
    let scenarios: Vec<Scenario> =
        vec![("single_flow", single_flow), ("contended_32", contended_32)];

    // Baseline (if recorded): {"contended_32": {"events_per_sec": ...}, ...}
    let baseline = std::fs::read_to_string(&baseline_path).ok();
    let baseline_eps = |name: &str| -> Option<f64> {
        let text = baseline.as_deref()?;
        let key = format!("\"{name}\"");
        let tail = &text[text.find(&key)? + key.len()..];
        let tail = &tail[tail.find("\"events_per_sec\"")? + "\"events_per_sec\"".len()..];
        let tail = tail.trim_start_matches([':', ' ']);
        let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
        tail[..end].trim().parse().ok()
    };

    let mut entries = Vec::new();
    for (name, build) in scenarios {
        let m = run_scenario(name, reps, build);
        let mut fields = format!(
            "      \"events\": {},\n      \"wall_s\": {:.6},\n      \"events_per_sec\": {:.0},\n      \"ns_per_event\": {:.1},\n      \"peak_pending_events\": {}",
            m.events,
            m.wall_s,
            m.events_per_sec(),
            m.ns_per_event(),
            m.peak_pending,
        );
        if let Some(base) = baseline_eps(name) {
            fields.push_str(&format!(
                ",\n      \"baseline_events_per_sec\": {:.0},\n      \"speedup\": {:.2}",
                base,
                m.events_per_sec() / base
            ));
        }
        eprintln!(
            "{:>14}: {:>9} events in {:.3}s = {:>10.0} events/sec ({:.0} ns/event, peak pending {})",
            m.name,
            m.events,
            m.wall_s,
            m.events_per_sec(),
            m.ns_per_event(),
            m.peak_pending,
        );
        entries.push(format!(
            "    \"{}\": {{\n{}\n    }}",
            json_escape(name),
            fields
        ));
    }

    let doc = format!(
        "{{\n  \"reps\": {reps},\n  \"scenarios\": {{\n{}\n  }}\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
