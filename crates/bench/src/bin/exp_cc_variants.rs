//! §6 robustness: congestion-control variants, RED, buffer depths.
//!
//! `cargo run --release -p csig-bench --bin exp_cc_variants [reps]`

use csig_bench::{cc_variants, dispute};

fn main() {
    let reps: u32 = std::env::args().find_map(|a| a.parse().ok()).unwrap_or(6);
    eprintln!("cc_variants: training reference model…");
    let clf = dispute::testbed_model(5, 0xCC01);
    let rows = cc_variants::run(&clf, reps, 0xCC02);
    cc_variants::print(&rows);
}
