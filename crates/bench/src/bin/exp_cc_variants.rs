//! §6 robustness: congestion-control variants, RED, buffer depths.
//!
//! `cargo run --release -p csig-bench --bin exp_cc_variants [reps]
//!  [--jobs N] [--seed S]`

use csig_bench::{cc_variants, dispute};
use csig_exec::cli::CommonArgs;

fn main() {
    let args = CommonArgs::parse();
    let reps: u32 = args.positional_parsed(6);
    eprintln!("cc_variants: training reference model…");
    let clf = dispute::testbed_model_with(5, 0xCC01, &args.executor());
    let rows = cc_variants::run(&clf, reps, args.seed_or(0xCC02));
    cc_variants::print(&rows);
}
