//! Ablations: feature subsets × tree depth (5-fold CV accuracy).
//!
//! `cargo run --release -p csig-bench --bin exp_feature_ablation [reps]
//!  [--paper] [--jobs N] [--seed S] [--progress]`

use csig_bench::ablation;
use csig_exec::cli::CommonArgs;
use csig_testbed::{paper_grid, Profile, Sweep};

fn main() {
    let args = CommonArgs::parse();
    let reps: u32 = args.positional_parsed(3);
    eprintln!(
        "ablation: sweeping full grid reps={reps} ({} workers)…",
        args.executor().jobs()
    );
    let results = Sweep {
        grid: paper_grid(),
        reps,
        profile: if args.paper {
            Profile::Paper
        } else {
            Profile::Scaled
        },
        seed: args.seed_or(0xAB1A),
    }
    .run_with(&args.executor(), args.progress_printer(24));
    let rows = ablation::feature_depth_ablation(&results, 0.7, 5);
    ablation::print(&rows);
}
