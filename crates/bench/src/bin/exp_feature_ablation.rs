//! Ablations: feature subsets × tree depth (5-fold CV accuracy).
//!
//! `cargo run --release -p csig-bench --bin exp_feature_ablation [reps]`

use csig_bench::ablation;
use csig_testbed::{paper_grid, Profile, Sweep};

fn main() {
    let reps: u32 = std::env::args().find_map(|a| a.parse().ok()).unwrap_or(3);
    eprintln!("ablation: sweeping full grid reps={reps}…");
    let results = Sweep {
        grid: paper_grid(),
        reps,
        profile: Profile::Scaled,
        seed: 0xAB1A,
    }
    .run(|done, total| {
        if done % 24 == 0 {
            eprintln!("  {done}/{total}");
        }
    });
    let rows = ablation::feature_depth_ablation(&results, 0.7, 5);
    ablation::print(&rows);
}
