//! Regenerate the §3.3 multiplexing table: classification accuracy as
//! interconnect multiplexing drops and access cross traffic rises.
//!
//! `cargo run --release -p csig-bench --bin exp_multiplexing [reps]`

use csig_bench::multiplexing;
use csig_testbed::Profile;

fn main() {
    let reps: u32 = std::env::args().find_map(|a| a.parse().ok()).unwrap_or(8);
    eprintln!("multiplexing: {reps} tests per point (training model first)");
    let clf = multiplexing::reference_model(Profile::Scaled, 5, 0xE331);
    let data = multiplexing::run(&clf, reps, Profile::Scaled, 0xE332);
    multiplexing::print(&data);
}
