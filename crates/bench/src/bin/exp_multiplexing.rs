//! Regenerate the §3.3 multiplexing table: classification accuracy as
//! interconnect multiplexing drops and access cross traffic rises.
//!
//! `cargo run --release -p csig-bench --bin exp_multiplexing [reps]
//!  [--paper] [--seed S]`

use csig_bench::multiplexing;
use csig_exec::cli::CommonArgs;
use csig_testbed::Profile;

fn main() {
    let args = CommonArgs::parse();
    let reps: u32 = args.positional_parsed(8);
    let profile = if args.paper {
        Profile::Paper
    } else {
        Profile::Scaled
    };
    eprintln!("multiplexing: {reps} tests per point (training model first)");
    let clf = multiplexing::reference_model(profile, 5, 0xE331);
    let data = multiplexing::run(&clf, reps, profile, args.seed_or(0xE332));
    multiplexing::print(&data);
}
