//! SACK ablation: the paper's 2014-era stacks all negotiated SACK; this
//! measures whether the signature technique depends on it. Runs the
//! Figure-1 setting with SACK on and off, for both scenarios, and
//! reports features + classification accuracy under a SACK-on model.
//!
//! `cargo run --release -p csig-bench --bin exp_sack_ablation [reps]
//!  [--jobs N] [--seed S]`

use csig_bench::dispute::testbed_model_with;
use csig_exec::cli::CommonArgs;
use csig_netsim::rng::derive_seed;
use csig_testbed::{run_test, AccessParams, TestbedConfig};

fn main() {
    let args = CommonArgs::parse();
    let reps: u32 = args.positional_parsed(8);
    eprintln!("exp_sack_ablation: training reference model…");
    let clf = testbed_model_with(5, 0x5AC0, &args.executor());
    let base_seed = args.seed_or(0x5AC1);

    println!("SACK ablation — {reps} tests/cell at the Figure-1 setting");
    println!(
        "  {:>5} {:>9} {:>9} {:>9} {:>10} {:>5}",
        "sack", "scenario", "NormDiff", "CoV", "accuracy", "n"
    );
    for sack in [true, false] {
        for external in [false, true] {
            let mut nds = Vec::new();
            let mut covs = Vec::new();
            let mut right = 0usize;
            for rep in 0..reps {
                let seed = derive_seed(
                    base_seed,
                    ((sack as u64) << 32) | ((external as u64) << 16) | rep as u64,
                );
                let mut cfg = TestbedConfig::scaled(AccessParams::figure1(), seed);
                cfg.tcp.sack = sack;
                // Vary only the measured flow's stack.
                cfg.cross_tcp = Some(csig_tcp::TcpConfig {
                    record_samples: false,
                    ..csig_tcp::TcpConfig::default()
                });
                if external {
                    cfg = cfg.externally_congested();
                }
                let expect = cfg.intended_class();
                let r = run_test(&cfg);
                if let Ok(f) = &r.features {
                    nds.push(f.norm_diff);
                    covs.push(f.cov);
                    if clf.classify(f) == expect {
                        right += 1;
                    }
                }
            }
            let med = |v: &[f64]| csig_features::median(v).unwrap_or(f64::NAN);
            println!(
                "  {:>5} {:>9} {:>9.3} {:>9.3} {:>9.0}% {:>5}",
                sack,
                if external { "external" } else { "self" },
                med(&nds),
                med(&covs),
                100.0 * right as f64 / nds.len().max(1) as f64,
                nds.len(),
            );
        }
    }
    println!(
        "\nexpected: the signature is a property of the buffer, not of the\n\
         recovery mechanism — NewReno-without-SACK flows carry the same\n\
         slow-start features (SACK only changes post-loss behavior)."
    );
}
