//! Regenerate the §5.4 result: classifier accuracy on the TSLP2017
//! campaign, with both a testbed-trained and a Dispute2014-trained
//! model.
//!
//! `cargo run --release -p csig-bench --bin exp_tslp2017 [days]
//!  [--jobs N] [--seed S] [--progress]`

use csig_bench::{dispute, tslp_exp};
use csig_core::{ModelMeta, SignatureClassifier};
use csig_dtree::{Dataset, TreeParams};
use csig_exec::cli::CommonArgs;
use csig_mlab::{
    generate_with, label_dispute2014, run_campaign_with, Dispute2014Config, Tslp2017Config,
};
use csig_netsim::SimDuration;

fn main() {
    let args = CommonArgs::parse();
    let days: u32 = args.positional_parsed(14);
    let cfg = Tslp2017Config {
        days,
        episode_days: (0..days).filter(|d| d % 3 == 2).collect(),
        seed: args.seed_or(Tslp2017Config::default().seed),
        ..Tslp2017Config::default()
    };
    eprintln!(
        "exp_tslp2017: running {days}-day campaign ({} workers)…",
        args.executor().jobs()
    );
    let out = run_campaign_with(&cfg, &args.executor(), args.progress_printer(100));

    eprintln!("training testbed model…");
    let testbed_clf = dispute::testbed_model_with(5, 0x7517, &args.executor());
    tslp_exp::print_accuracy(
        "testbed-trained model",
        &tslp_exp::evaluate(&testbed_clf, &out, 25),
    );

    eprintln!("training Dispute2014 model…");
    let d2014 = generate_with(
        &Dispute2014Config {
            tests_per_cell: 10,
            test_duration: SimDuration::from_secs(4),
            seed: 0x7518,
        },
        &args.executor(),
        args.progress_printer(0),
    );
    let mut data = Dataset::new();
    for t in &d2014 {
        if let (Some(label), Ok(f)) = (label_dispute2014(t), &t.measurement.features) {
            data.push(f.as_vector().to_vec(), label.index());
        }
    }
    if data.class_counts().iter().filter(|&&c| c > 0).count() == 2 {
        let clf = SignatureClassifier::train(
            &data,
            TreeParams::default(),
            ModelMeta {
                congestion_threshold: f64::NAN,
                trained_on: "Dispute2014 labels".into(),
                n_train: data.len(),
                n_filtered: 0,
            },
        );
        tslp_exp::print_accuracy(
            "Dispute2014-trained model",
            &tslp_exp::evaluate(&clf, &out, 25),
        );
    } else {
        eprintln!("Dispute2014 labels produced a single class; skipping");
    }
}
