//! Compare Web100-mode (kernel-sample) classification against
//! capture-mode over a testbed sweep, at several sampling strides.
//!
//! `cargo run --release -p csig-bench --bin exp_web100_mode [reps]`

use csig_bench::{dispute, web100_exp};
use csig_testbed::{paper_grid, Profile, Sweep};

fn main() {
    let reps: u32 = std::env::args().find_map(|a| a.parse().ok()).unwrap_or(3);
    eprintln!("exp_web100_mode: sweeping full grid reps={reps}…");
    let results = Sweep {
        grid: paper_grid(),
        reps,
        profile: Profile::Scaled,
        seed: 0xEB10,
    }
    .run(|done, total| {
        if done % 24 == 0 {
            eprintln!("  {done}/{total}");
        }
    });
    eprintln!("training model…");
    let clf = dispute::testbed_model(5, 0xEB11);
    let points = web100_exp::run(&clf, &results, &[1, 2, 4, 8, 16]);
    web100_exp::print(&points);
}
