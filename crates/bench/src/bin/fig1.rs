//! Regenerate Figure 1: RTT signature CDFs for self-induced vs
//! external congestion (20 Mbps access, 100 ms buffer, 20 ms latency).
//!
//! `cargo run --release -p csig-bench --bin fig1 [reps] [--paper]`

use csig_bench::fig1;
use csig_testbed::Profile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reps: u32 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(25);
    let profile = if args.iter().any(|a| a == "--paper") {
        Profile::Paper
    } else {
        Profile::Scaled
    };
    eprintln!("fig1: {reps} tests/scenario, {profile:?} profile");
    let data = fig1::run(reps, profile, 0xF161);
    fig1::print(&data);
}
