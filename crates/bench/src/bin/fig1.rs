//! Regenerate Figure 1: RTT signature CDFs for self-induced vs
//! external congestion (20 Mbps access, 100 ms buffer, 20 ms latency).
//!
//! `cargo run --release -p csig-bench --bin fig1 [reps] [--paper]
//!  [--jobs N] [--seed S] [--progress]`

use csig_bench::fig1;
use csig_exec::cli::CommonArgs;
use csig_testbed::Profile;

fn main() {
    let args = CommonArgs::parse();
    let reps: u32 = args.positional_parsed(25);
    let profile = if args.paper {
        Profile::Paper
    } else {
        Profile::Scaled
    };
    let seed = args.seed_or(0xF161);
    eprintln!(
        "fig1: {reps} tests/scenario, {profile:?} profile, {} workers",
        args.executor().jobs()
    );
    let data = fig1::run_with(
        reps,
        profile,
        seed,
        &args.executor(),
        args.progress_printer(10),
    );
    fig1::print(&data);
}
