//! Regenerate Figure 1: RTT signature CDFs for self-induced vs
//! external congestion (20 Mbps access, 100 ms buffer, 20 ms latency).
//!
//! `cargo run --release -p csig-bench --bin fig1 [reps] [--paper]
//!  [--jobs N] [--seed S] [--progress] [--metrics-out FILE]
//!  [--trace-out FILE]`
//!
//! With `--metrics-out`/`--trace-out` the campaign runs instrumented:
//! the deterministic metrics snapshot and the JSONL trace are written
//! at the end, and a wall-time split (event loop vs feature extraction
//! vs tree inference) is reported on stderr.

use csig_bench::fig1;
use csig_exec::cli::CommonArgs;
use csig_obs::Snapshot;
use csig_testbed::Profile;

/// Report where the campaign's time went, from the wall-clock timer
/// histograms: total and mean per timed section.
fn print_time_split(metrics: &Snapshot) {
    eprintln!("fig1: time split (wall-clock, from timer histograms)");
    for (name, label) in [
        ("time.sim_event_loop_us", "simulator event loop"),
        ("time.feature_extract_us", "feature extraction"),
        ("time.inference_us", "tree inference"),
        ("time.scenario_wall_us", "whole scenarios"),
    ] {
        match metrics.histogram(name) {
            Some(h) if h.count > 0 => {
                let per_call = if h.sum == 0 {
                    "<1 us/call".to_string()
                } else {
                    format!("{:.1} us/call", h.sum as f64 / h.count as f64)
                };
                eprintln!(
                    "  {label:<22} {:>10.1} ms total, {per_call:>14} over {} calls",
                    h.sum as f64 / 1e3,
                    h.count
                );
            }
            _ => eprintln!("  {label:<22} (not timed)"),
        }
    }
}

fn main() {
    let args = CommonArgs::parse();
    let reps: u32 = args.positional_parsed(25);
    let profile = if args.paper {
        Profile::Paper
    } else {
        Profile::Scaled
    };
    let seed = args.seed_or(0xF161);
    eprintln!(
        "fig1: {reps} tests/scenario, {profile:?} profile, {} workers",
        args.executor().jobs()
    );
    let data = if args.wants_observability() {
        let observed = fig1::run_observed_with(
            reps,
            profile,
            seed,
            &args.executor(),
            args.progress_printer(10),
        );
        print_time_split(&observed.metrics);
        if let Err(e) = args.write_metrics(&observed.metrics) {
            eprintln!("error writing --metrics-out: {e}");
            std::process::exit(1);
        }
        if let Err(e) = args.write_trace(&observed.trace) {
            eprintln!("error writing --trace-out: {e}");
            std::process::exit(1);
        }
        observed.data
    } else {
        fig1::run_with(
            reps,
            profile,
            seed,
            &args.executor(),
            args.progress_printer(10),
        )
    };
    fig1::print(&data);
}
