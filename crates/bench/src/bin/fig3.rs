//! Regenerate Figure 3 (precision/recall vs congestion threshold) and
//! Figure 4 (NormDiff vs CoV scatter) over the §3.1 grid.
//!
//! `cargo run --release -p csig-bench --bin fig3 [reps] [--full-grid] [--raw]`

use csig_bench::fig3;
use csig_testbed::Profile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reps: u32 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(5);
    let full = args.iter().any(|a| a == "--full-grid");
    eprintln!(
        "fig3/fig4: sweep reps={reps}, grid={}",
        if full { "paper(36)" } else { "small(9)" }
    );
    let results = fig3::run_sweep(reps, full, Profile::Scaled, 0xF163);
    let points = fig3::threshold_points(&results, 1);
    fig3::print_fig3(&points);
    println!();
    let scatter = fig3::fig4_points(&results);
    fig3::print_fig4(&scatter, args.iter().any(|a| a == "--raw"));
}
