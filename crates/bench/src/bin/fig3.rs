//! Regenerate Figure 3 (precision/recall vs congestion threshold) and
//! Figure 4 (NormDiff vs CoV scatter) over the §3.1 grid.
//!
//! `cargo run --release -p csig-bench --bin fig3 [reps] [--full-grid]
//!  [--raw] [--paper] [--jobs N] [--seed S] [--progress]`

use csig_bench::fig3;
use csig_exec::cli::CommonArgs;
use csig_testbed::Profile;

fn main() {
    let args = CommonArgs::parse();
    let reps: u32 = args.positional_parsed(5);
    let full = args.has_flag("--full-grid");
    let profile = if args.paper {
        Profile::Paper
    } else {
        Profile::Scaled
    };
    let seed = args.seed_or(0xF163);
    eprintln!(
        "fig3/fig4: sweep reps={reps}, grid={}, {} workers",
        if full { "paper(36)" } else { "small(9)" },
        args.executor().jobs()
    );
    let results = fig3::run_sweep_with(
        reps,
        full,
        profile,
        seed,
        &args.executor(),
        args.progress_printer(24),
    );
    let points = fig3::threshold_points(&results, 1);
    fig3::print_fig3(&points);
    println!();
    let scatter = fig3::fig4_points(&results);
    fig3::print_fig4(&scatter, args.has_flag("--raw"));
}
