//! Regenerate Figure 4 only (NormDiff vs CoV raw scatter, CSV form).
//!
//! `cargo run --release -p csig-bench --bin fig4 [reps] [--full-grid]
//!  [--paper] [--jobs N] [--seed S] [--progress]`

use csig_bench::fig3;
use csig_exec::cli::CommonArgs;
use csig_testbed::Profile;

fn main() {
    let args = CommonArgs::parse();
    let reps: u32 = args.positional_parsed(5);
    let full = args.has_flag("--full-grid");
    let profile = if args.paper {
        Profile::Paper
    } else {
        Profile::Scaled
    };
    let seed = args.seed_or(0xF164);
    let results = fig3::run_sweep_with(
        reps,
        full,
        profile,
        seed,
        &args.executor(),
        args.progress_printer(0),
    );
    let scatter = fig3::fig4_points(&results);
    fig3::print_fig4(&scatter, true);
}
