//! Regenerate Figure 4 only (NormDiff vs CoV raw scatter, CSV form).
//!
//! `cargo run --release -p csig-bench --bin fig4 [reps] [--full-grid]`

use csig_bench::fig3;
use csig_testbed::Profile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reps: u32 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(5);
    let full = args.iter().any(|a| a == "--full-grid");
    let results = fig3::run_sweep(reps, full, Profile::Scaled, 0xF164);
    let scatter = fig3::fig4_points(&results);
    fig3::print_fig4(&scatter, true);
}
