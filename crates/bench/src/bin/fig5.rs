//! Regenerate Figure 5: diurnal NDT throughput around the dispute
//! (Cogent LAX in Jan–Feb and Mar–Apr; Level3 ATL control).
//!
//! `cargo run --release -p csig-bench --bin fig5 [tests_per_cell]`

use csig_mlab::{generate_with_progress, to_csv, Dispute2014Config, Month, TransitSite};
use csig_netsim::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tests_per_cell: u32 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(25);
    let cfg = Dispute2014Config {
        tests_per_cell,
        test_duration: SimDuration::from_secs(4),
        seed: 0xF165,
    };
    eprintln!("fig5: generating campaign ({} tests)…", tests_per_cell * 48);
    let tests = generate_with_progress(&cfg, |done, total| {
        if done % 200 == 0 {
            eprintln!("  {done}/{total}");
        }
    });
    csig_bench::dispute::print_fig5(
        &tests,
        TransitSite::CogentLax,
        &[Month::Jan, Month::Feb],
        "5a: dispute active",
    );
    println!();
    csig_bench::dispute::print_fig5(
        &tests,
        TransitSite::Level3Atl,
        &[Month::Jan, Month::Feb],
        "5b: control transit",
    );
    println!();
    csig_bench::dispute::print_fig5(
        &tests,
        TransitSite::CogentLax,
        &[Month::Mar, Month::Apr],
        "5c: after resolution",
    );
    // Optional raw dump for external plotting.
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        if let Some(path) = args.get(i + 1) {
            std::fs::write(path, to_csv(&tests)).expect("write csv");
            eprintln!("wrote campaign CSV to {path}");
        }
    }
}
