//! Regenerate Figure 5: diurnal NDT throughput around the dispute
//! (Cogent LAX in Jan–Feb and Mar–Apr; Level3 ATL control).
//!
//! `cargo run --release -p csig-bench --bin fig5 [tests_per_cell]
//!  [--csv PATH] [--jobs N] [--seed S] [--progress]`

use csig_exec::cli::CommonArgs;
use csig_mlab::{generate_with, to_csv, Dispute2014Config, Month, TransitSite};
use csig_netsim::SimDuration;

fn main() {
    let args = CommonArgs::parse();
    let tests_per_cell: u32 = args.positional_parsed(25);
    let cfg = Dispute2014Config {
        tests_per_cell,
        test_duration: SimDuration::from_secs(4),
        seed: args.seed_or(0xF165),
    };
    eprintln!(
        "fig5: generating campaign ({} tests, {} workers)…",
        tests_per_cell * 48,
        args.executor().jobs()
    );
    let tests = generate_with(&cfg, &args.executor(), args.progress_printer(200));
    csig_bench::dispute::print_fig5(
        &tests,
        TransitSite::CogentLax,
        &[Month::Jan, Month::Feb],
        "5a: dispute active",
    );
    println!();
    csig_bench::dispute::print_fig5(
        &tests,
        TransitSite::Level3Atl,
        &[Month::Jan, Month::Feb],
        "5b: control transit",
    );
    println!();
    csig_bench::dispute::print_fig5(
        &tests,
        TransitSite::CogentLax,
        &[Month::Mar, Month::Apr],
        "5c: after resolution",
    );
    // Optional raw dump for external plotting.
    if let Some(path) = args.flag_value("--csv") {
        std::fs::write(path, to_csv(&tests)).expect("write csv");
        eprintln!("wrote campaign CSV to {path}");
    }
}
