//! Regenerate Figure 6: TSLP latency and NDT throughput around a
//! congestion episode of the TSLP2017 campaign.
//!
//! `cargo run --release -p csig-bench --bin fig6 [days] [--jobs N]
//!  [--seed S] [--progress]`

use csig_bench::tslp_exp;
use csig_exec::cli::CommonArgs;
use csig_mlab::{run_campaign_with, Tslp2017Config};

fn main() {
    let args = CommonArgs::parse();
    let days: u32 = args.positional_parsed(7);
    let cfg = Tslp2017Config {
        days,
        episode_days: (0..days).filter(|d| d % 3 == 2).collect(),
        seed: args.seed_or(Tslp2017Config::default().seed),
        ..Tslp2017Config::default()
    };
    eprintln!(
        "fig6: running {days}-day campaign ({} NDT workers)…",
        args.executor().jobs()
    );
    let out = run_campaign_with(&cfg, &args.executor(), args.progress_printer(100));
    tslp_exp::print_fig6(&out);
}
