//! Regenerate Figure 6: TSLP latency and NDT throughput around a
//! congestion episode of the TSLP2017 campaign.
//!
//! `cargo run --release -p csig-bench --bin fig6 [days]`

use csig_bench::tslp_exp;
use csig_mlab::{run_campaign_with_progress, Tslp2017Config};

fn main() {
    let days: u32 = std::env::args().find_map(|a| a.parse().ok()).unwrap_or(7);
    let cfg = Tslp2017Config {
        days,
        episode_days: (0..days).filter(|d| d % 3 == 2).collect(),
        ..Tslp2017Config::default()
    };
    eprintln!("fig6: running {days}-day campaign…");
    let out = run_campaign_with_progress(&cfg, |done, total| {
        if done % 100 == 0 {
            eprintln!("  NDT {done}/{total}");
        }
    });
    tslp_exp::print_fig6(&out);
}
