//! Regenerate Figure 7: % flows classified self-induced per
//! (site, ISP, timeframe), for labeling thresholds 0.7/0.8/0.9, and
//! Figure 8 (median throughput by classified class).
//!
//! `cargo run --release -p csig-bench --bin fig7 [tests_per_cell]`

use csig_bench::dispute;
use csig_core::train_from_results;
use csig_dtree::TreeParams;
use csig_mlab::{generate_with_progress, Dispute2014Config, TransitSite};
use csig_netsim::SimDuration;
use csig_testbed::{paper_grid, Profile, Sweep};

fn main() {
    let tests_per_cell: u32 = std::env::args().find_map(|a| a.parse().ok()).unwrap_or(20);
    eprintln!("fig7: generating Dispute2014 campaign…");
    let cfg = Dispute2014Config {
        tests_per_cell,
        test_duration: SimDuration::from_secs(4),
        seed: 0xF167,
    };
    let tests = generate_with_progress(&cfg, |done, total| {
        if done % 200 == 0 {
            eprintln!("  {done}/{total}");
        }
    });

    eprintln!("fig7: training testbed models (full grid)…");
    let results = Sweep {
        grid: paper_grid(),
        reps: 2,
        profile: Profile::Scaled,
        seed: 0xF168,
    }
    .run(|done, total| {
        if done % 24 == 0 {
            eprintln!("  sweep {done}/{total}");
        }
    });
    for threshold in [0.6, 0.7, 0.8] {
        if let Some(clf) = train_from_results(&results, threshold, TreeParams::default()) {
            let bars = dispute::fig7(&clf, &tests);
            dispute::print_fig7(&bars, &format!("threshold {threshold}"));
            println!();
            if (threshold - 0.7).abs() < 1e-9 {
                dispute::print_fig8(
                    &clf,
                    &tests,
                    &[TransitSite::CogentLax, TransitSite::CogentLga],
                    "8a: Cogent LAX+LGA",
                );
                println!();
                dispute::print_fig8(&clf, &tests, &[TransitSite::Level3Atl], "8b: Level3 ATL");
                println!();
            }
        }
    }
}
