//! Regenerate Figure 7: % flows classified self-induced per
//! (site, ISP, timeframe), for labeling thresholds 0.7/0.8/0.9, and
//! Figure 8 (median throughput by classified class).
//!
//! `cargo run --release -p csig-bench --bin fig7 [tests_per_cell]
//!  [--jobs N] [--seed S] [--progress]`

use csig_bench::dispute;
use csig_core::train_from_results;
use csig_dtree::TreeParams;
use csig_exec::cli::CommonArgs;
use csig_mlab::{generate_with, Dispute2014Config, TransitSite};
use csig_netsim::SimDuration;
use csig_testbed::{paper_grid, Profile, Sweep};

fn main() {
    let args = CommonArgs::parse();
    let tests_per_cell: u32 = args.positional_parsed(20);
    eprintln!(
        "fig7: generating Dispute2014 campaign ({} workers)…",
        args.executor().jobs()
    );
    let cfg = Dispute2014Config {
        tests_per_cell,
        test_duration: SimDuration::from_secs(4),
        seed: args.seed_or(0xF167),
    };
    let tests = generate_with(&cfg, &args.executor(), args.progress_printer(200));

    eprintln!("fig7: training testbed models (full grid)…");
    let results = Sweep {
        grid: paper_grid(),
        reps: 2,
        profile: Profile::Scaled,
        seed: 0xF168,
    }
    .run_with(&args.executor(), args.progress_printer(24));
    for threshold in [0.6, 0.7, 0.8] {
        if let Some(clf) = train_from_results(&results, threshold, TreeParams::default()) {
            let bars = dispute::fig7(&clf, &tests);
            dispute::print_fig7(&bars, &format!("threshold {threshold}"));
            println!();
            if (threshold - 0.7).abs() < 1e-9 {
                dispute::print_fig8(
                    &clf,
                    &tests,
                    &[TransitSite::CogentLax, TransitSite::CogentLga],
                    "8a: Cogent LAX+LGA",
                );
                println!();
                dispute::print_fig8(&clf, &tests, &[TransitSite::Level3Atl], "8b: Level3 ATL");
                println!();
            }
        }
    }
}
