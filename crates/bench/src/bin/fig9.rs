//! Regenerate Figure 9: Figure-7-style classification with the model
//! retrained on 20 % of the Dispute2014 labels (leave-target-out).
//!
//! `cargo run --release -p csig-bench --bin fig9 [tests_per_cell]
//!  [--jobs N] [--seed S] [--progress]`

use csig_bench::dispute;
use csig_exec::cli::CommonArgs;
use csig_mlab::{generate_with, Dispute2014Config};
use csig_netsim::SimDuration;

fn main() {
    let args = CommonArgs::parse();
    let tests_per_cell: u32 = args.positional_parsed(20);
    let cfg = Dispute2014Config {
        tests_per_cell,
        test_duration: SimDuration::from_secs(4),
        seed: args.seed_or(0xF169),
    };
    eprintln!(
        "fig9: generating campaign ({} workers)…",
        args.executor().jobs()
    );
    let tests = generate_with(&cfg, &args.executor(), args.progress_printer(200));
    let bars = dispute::fig9(&tests, 1);
    dispute::print_fig7(&bars, "model trained on Dispute2014 labels");
}
