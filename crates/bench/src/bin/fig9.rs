//! Regenerate Figure 9: Figure-7-style classification with the model
//! retrained on 20 % of the Dispute2014 labels (leave-target-out).
//!
//! `cargo run --release -p csig-bench --bin fig9 [tests_per_cell]`

use csig_bench::dispute;
use csig_mlab::{generate_with_progress, Dispute2014Config};
use csig_netsim::SimDuration;

fn main() {
    let tests_per_cell: u32 = std::env::args().find_map(|a| a.parse().ok()).unwrap_or(20);
    let cfg = Dispute2014Config {
        tests_per_cell,
        test_duration: SimDuration::from_secs(4),
        seed: 0xF169,
    };
    eprintln!("fig9: generating campaign…");
    let tests = generate_with_progress(&cfg, |done, total| {
        if done % 200 == 0 {
            eprintln!("  {done}/{total}");
        }
    });
    let bars = dispute::fig9(&tests, 1);
    dispute::print_fig7(&bars, "model trained on Dispute2014 labels");
}
