//! Impairment robustness: precision/recall under bursty loss and
//! reordering on the access link.
//!
//! `cargo run --release -p csig-bench --bin fig_impair [reps]
//!  [--jobs N] [--seed S] [--deadline SECS]`

use csig_bench::{dispute, impair};
use csig_exec::cli::CommonArgs;

fn main() {
    let args = CommonArgs::parse();
    let reps: u32 = args.positional_parsed(4);
    eprintln!("fig_impair: training reference model…");
    let clf = dispute::testbed_model_with(5, 0xFA01, &args.executor());
    eprintln!(
        "fig_impair: sweeping {} levels × {reps} reps…",
        impair::levels().len()
    );
    let rows = impair::run(&clf, reps, args.seed_or(0xFA02), &args.executor());
    impair::print(&rows);
}
