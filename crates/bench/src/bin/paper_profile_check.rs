//! Spot-check that the full-fidelity paper profile runs: one
//! self-induced and one external test at the paper's exact settings
//! (950 Mbps interconnect, 100 TGcong flows, 10 s test, 2 s warm-up).
//!
//! `cargo run --release -p csig-bench --bin paper_profile_check`

use csig_testbed::{run_test, AccessParams, TestbedConfig};
use std::time::Instant;

fn main() {
    for external in [false, true] {
        let mut cfg = TestbedConfig::paper(AccessParams::figure1(), 0xFACE + external as u64);
        if external {
            cfg = cfg.externally_congested();
        }
        let t0 = Instant::now();
        let r = run_test(&cfg);
        println!(
            "paper profile, external={external}: {:.1} Mbps, features={:?}, \
             {} events in {:.1}s wall",
            r.throughput.mean_bps / 1e6,
            r.features.as_ref().map(|f| (f.norm_diff, f.cov)),
            r.events,
            t0.elapsed().as_secs_f64()
        );
    }
}
