//! §6 robustness study: congestion-control variants, queue disciplines
//! and buffer depths.
//!
//! The paper's limitations section argues the technique survives any
//! queueing mechanism that lets RTT grow (e.g. RED) and works with
//! loss-based TCPs, while latency-controlling TCPs like BBR "might
//! confound" it. This module measures all three claims.

use csig_core::SignatureClassifier;
use csig_features::CongestionClass;
use csig_netsim::rng::derive_seed;
use csig_netsim::QueueKind;
use csig_tcp::CcKind;
use csig_testbed::{run_test, AccessParams, TestbedConfig};
use serde::{Deserialize, Serialize};

/// One robustness row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantRow {
    /// What was varied.
    pub variant: String,
    /// Self-induced-scenario accuracy.
    pub self_accuracy: f64,
    /// External-scenario accuracy.
    pub external_accuracy: f64,
    /// Classifiable flows per scenario.
    pub n: usize,
}

fn accuracy(
    clf: &SignatureClassifier,
    mut mk: impl FnMut(u64, bool) -> TestbedConfig,
    reps: u32,
    seed: u64,
) -> (f64, f64, usize) {
    let mut counts = [[0usize; 2]; 2];
    for rep in 0..reps {
        for external in [false, true] {
            let cfg = mk(
                derive_seed(seed, (rep as u64) << 1 | external as u64),
                external,
            );
            let r = run_test(&cfg);
            if let Ok(f) = &r.features {
                let pred = clf.classify(f);
                counts[external as usize][(pred == CongestionClass::External) as usize] += 1;
            }
        }
    }
    let self_n = counts[0][0] + counts[0][1];
    let ext_n = counts[1][0] + counts[1][1];
    (
        counts[0][0] as f64 / self_n.max(1) as f64,
        counts[1][1] as f64 / ext_n.max(1) as f64,
        self_n.min(ext_n),
    )
}

/// Run the §6 robustness sweep: CC variant × queue discipline, plus a
/// buffer-depth sweep (1–5 × BDP-ish via the paper's buffer grid).
pub fn run(clf: &SignatureClassifier, reps: u32, seed: u64) -> Vec<VariantRow> {
    let mut rows = Vec::new();
    let base = AccessParams::figure1();

    for cc in [CcKind::NewReno, CcKind::Cubic, CcKind::BbrLite] {
        for (qname, queue) in [
            ("drop-tail", QueueKind::DropTail),
            ("RED", QueueKind::Red(Default::default())),
        ] {
            let (self_acc, ext_acc, n) = accuracy(
                clf,
                |s, external| {
                    let mut cfg = TestbedConfig::scaled(base, s);
                    cfg.tcp.cc = cc;
                    // Only the measured flow's stack varies; the
                    // background stays on the default (the Internet does
                    // not switch algorithms with you).
                    cfg.cross_tcp = Some(csig_tcp::TcpConfig {
                        record_samples: false,
                        ..csig_tcp::TcpConfig::default()
                    });
                    cfg.queue = queue;
                    if external {
                        cfg = cfg.externally_congested();
                    }
                    cfg
                },
                reps,
                derive_seed(seed, cc as u64 * 31 + queue_tag(queue)),
            );
            rows.push(VariantRow {
                variant: format!("{} / {}", cc.name(), qname),
                self_accuracy: self_acc,
                external_accuracy: ext_acc,
                n,
            });
        }
    }

    // Buffer-depth sweep with the default stack (the §6 "1–5× BDP"
    // claim): BDP at 20 Mbps / ~46 ms RTT ≈ 115 kB ≈ 46 ms of buffer.
    for buffer_ms in [20u64, 50, 100, 150, 200] {
        let access = AccessParams { buffer_ms, ..base };
        let (self_acc, ext_acc, n) = accuracy(
            clf,
            |s, external| {
                let mut cfg = TestbedConfig::scaled(access, s);
                if external {
                    cfg = cfg.externally_congested();
                }
                cfg
            },
            reps,
            derive_seed(seed, 0xB0F + buffer_ms),
        );
        rows.push(VariantRow {
            variant: format!("buffer {buffer_ms} ms"),
            self_accuracy: self_acc,
            external_accuracy: ext_acc,
            n,
        });
    }
    rows
}

fn queue_tag(q: QueueKind) -> u64 {
    match q {
        QueueKind::DropTail => 0,
        QueueKind::Red(_) => 1,
    }
}

/// Print the robustness table.
pub fn print(rows: &[VariantRow]) {
    println!("§6 robustness — per-scenario accuracy under variants");
    println!(
        "  {:>22} {:>10} {:>10} {:>4}",
        "variant", "self", "external", "n"
    );
    for r in rows {
        println!(
            "  {:>22} {:>9.0}% {:>9.0}% {:>4}",
            r.variant,
            r.self_accuracy * 100.0,
            r.external_accuracy * 100.0,
            r.n
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispute::testbed_model;

    #[test]
    fn loss_based_stacks_stay_accurate_bbr_may_not() {
        let clf = testbed_model(4, 71);
        let rows = run(&clf, 3, 72);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.variant.starts_with(name))
                .expect("row")
        };
        // NewReno and CUBIC on drop-tail keep strong self-accuracy.
        assert!(get("newreno / drop-tail").self_accuracy >= 0.6);
        assert!(get("cubic / drop-tail").self_accuracy >= 0.6);
        // RED still produces RTT growth → self flows stay identifiable.
        assert!(get("newreno / RED").self_accuracy >= 0.5);
        // The buffer-depth sweep includes deep buffers where the
        // signature is strongest.
        assert!(get("buffer 100 ms").self_accuracy >= 0.6);
        assert!(get("buffer 200 ms").self_accuracy >= 0.6);
    }
}
