//! Figures 5, 7, 8 and 9: the Dispute2014 analyses.

use csig_core::{train_sweep_with, ModelMeta, SignatureClassifier};
use csig_dtree::{Dataset, TreeParams};
use csig_exec::Executor;
use csig_features::CongestionClass;
use csig_mlab::{
    diurnal_throughput, is_off_peak_hour, is_peak_hour, label_dispute2014, AccessIsp, Month,
    NdtTest, TransitSite,
};
use csig_testbed::{small_grid, Profile, Sweep};
use serde::{Deserialize, Serialize};

/// The two timeframes of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Timeframe {
    /// January–February, peak hours (dispute active).
    JanFebPeak,
    /// March–April, off-peak hours (dispute resolved).
    MarAprOffPeak,
}

impl Timeframe {
    /// Both timeframes.
    pub const ALL: [Timeframe; 2] = [Timeframe::JanFebPeak, Timeframe::MarAprOffPeak];

    /// Does a test fall into this frame?
    pub fn contains(&self, t: &NdtTest) -> bool {
        match self {
            Timeframe::JanFebPeak => t.month.dispute_active() && is_peak_hour(t.hour),
            Timeframe::MarAprOffPeak => !t.month.dispute_active() && is_off_peak_hour(t.hour),
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Timeframe::JanFebPeak => "Jan-Feb",
            Timeframe::MarAprOffPeak => "Mar-Apr",
        }
    }
}

/// Print Figure 5: diurnal mean throughput per ISP for one site/months.
pub fn print_fig5(tests: &[NdtTest], site: TransitSite, months: &[Month], title: &str) {
    println!(
        "Figure 5 ({title}) — mean NDT throughput (Mbps) by local hour, {}",
        site.name()
    );
    print!("  hour ");
    for isp in AccessIsp::ALL {
        print!("{:>11}", isp.name());
    }
    println!();
    for h in 0..24u8 {
        let mut row = format!("  {h:>4} ");
        let mut any = false;
        for isp in AccessIsp::ALL {
            let series = diurnal_throughput(tests, site, isp, months);
            match series.iter().find(|(hh, _, _)| *hh == h) {
                Some((_, mean, _)) => {
                    row += &format!("{mean:>11.1}");
                    any = true;
                }
                None => row += &format!("{:>11}", "-"),
            }
        }
        if any {
            println!("{row}");
        }
    }
}

/// Train the testbed reference model used by Figures 7 and 8.
pub fn testbed_model(reps: u32, seed: u64) -> SignatureClassifier {
    testbed_model_jobs(reps, seed, 1)
}

/// [`testbed_model`] with the sweep spread over `jobs` workers.
pub fn testbed_model_jobs(reps: u32, seed: u64, jobs: usize) -> SignatureClassifier {
    testbed_model_with(reps, seed, &Executor::new(jobs))
}

/// [`testbed_model`] on a caller-configured executor (worker count,
/// per-scenario deadline, …).
pub fn testbed_model_with(reps: u32, seed: u64, exec: &Executor) -> SignatureClassifier {
    let sweep = Sweep {
        grid: small_grid(),
        reps,
        profile: Profile::Scaled,
        seed,
    };
    let (_, model) = train_sweep_with(&sweep, 0.7, TreeParams::default(), exec, |_| {});
    match model {
        Some(m) => m,
        None => panic!("reference sweep produced no trainable dataset (reps {reps}, seed {seed})"),
    }
}

/// One Figure-7 bar: fraction classified self-induced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Bar {
    /// Transit site.
    pub site: TransitSite,
    /// Access ISP.
    pub isp: AccessIsp,
    /// Timeframe.
    pub frame: Timeframe,
    /// Fraction of classifiable flows classified self-induced.
    pub frac_self: f64,
    /// Number of classifiable flows.
    pub n: usize,
}

/// Compute Figure 7 for a classifier.
pub fn fig7(clf: &SignatureClassifier, tests: &[NdtTest]) -> Vec<Fig7Bar> {
    let mut bars = Vec::new();
    for site in TransitSite::ALL {
        for isp in AccessIsp::ALL {
            for frame in Timeframe::ALL {
                let flows: Vec<_> = tests
                    .iter()
                    .filter(|t| t.site == site && t.isp == isp && frame.contains(t))
                    .filter_map(|t| t.measurement.features.as_ref().ok())
                    .collect();
                let self_count = flows
                    .iter()
                    .filter(|f| clf.classify(f) == CongestionClass::SelfInduced)
                    .count();
                bars.push(Fig7Bar {
                    site,
                    isp,
                    frame,
                    frac_self: if flows.is_empty() {
                        f64::NAN
                    } else {
                        self_count as f64 / flows.len() as f64
                    },
                    n: flows.len(),
                });
            }
        }
    }
    bars
}

/// Print Figure 7.
pub fn print_fig7(bars: &[Fig7Bar], threshold_label: &str) {
    println!("Figure 7 ({threshold_label}) — % flows classified self-induced");
    println!(
        "  {:>13} {:>11} {:>14} {:>16}",
        "site", "ISP", "Jan-Feb(peak)", "Mar-Apr(off-pk)"
    );
    for site in TransitSite::ALL {
        for isp in AccessIsp::ALL {
            let get = |frame: Timeframe| {
                bars.iter()
                    .find(|b| b.site == site && b.isp == isp && b.frame == frame)
                    .map(|b| (b.frac_self, b.n))
                    .unwrap_or((f64::NAN, 0))
            };
            let (a, an) = get(Timeframe::JanFebPeak);
            let (b, bn) = get(Timeframe::MarAprOffPeak);
            println!(
                "  {:>13} {:>11} {:>9.0}% ({an:>3}) {:>11.0}% ({bn:>3})",
                site.name(),
                isp.name(),
                a * 100.0,
                b * 100.0
            );
        }
    }
}

/// Figure 8: median throughput of flows by classified class, per ISP ×
/// timeframe for one transit selection.
pub fn print_fig8(
    clf: &SignatureClassifier,
    tests: &[NdtTest],
    sites: &[TransitSite],
    title: &str,
) {
    println!("Figure 8 ({title}) — median throughput (Mbps) by classified class");
    println!(
        "  {:>11} {:>14} {:>14} {:>14} {:>14}",
        "ISP", "JanFeb self", "JanFeb ext", "MarApr self", "MarApr ext"
    );
    for isp in AccessIsp::ALL {
        let median_of = |frame: Timeframe, class: CongestionClass| {
            let v: Vec<f64> = tests
                .iter()
                .filter(|t| sites.contains(&t.site) && t.isp == isp && frame.contains(t))
                .filter_map(|t| {
                    t.measurement
                        .features
                        .as_ref()
                        .ok()
                        .filter(|f| clf.classify(f) == class)
                        .map(|_| t.measurement.throughput_mbps)
                })
                .collect();
            csig_features::median(&v).unwrap_or(f64::NAN)
        };
        println!(
            "  {:>11} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            isp.name(),
            median_of(Timeframe::JanFebPeak, CongestionClass::SelfInduced),
            median_of(Timeframe::JanFebPeak, CongestionClass::External),
            median_of(Timeframe::MarAprOffPeak, CongestionClass::SelfInduced),
            median_of(Timeframe::MarAprOffPeak, CongestionClass::External),
        );
    }
}

/// Figure 9: retrain the model on 20 % of the Dispute2014 labels,
/// excluding the (site, ISP) combination under test, then classify.
pub fn fig9(tests: &[NdtTest], seed: u64) -> Vec<Fig7Bar> {
    let mut bars = Vec::new();
    for site in TransitSite::ALL {
        for isp in AccessIsp::ALL {
            // Build the training set from *labeled* tests of all other
            // combinations, subsampled to 20 %.
            let mut data = Dataset::new();
            for (i, t) in tests.iter().enumerate() {
                if t.site == site && t.isp == isp {
                    continue;
                }
                if i % 5 != (seed % 5) as usize {
                    continue; // deterministic 20% subsample
                }
                if let (Some(label), Ok(f)) = (label_dispute2014(t), &t.measurement.features) {
                    data.push(f.as_vector().to_vec(), label.index());
                }
            }
            if data.is_empty() || data.class_counts().iter().filter(|&&c| c > 0).count() < 2 {
                continue;
            }
            let clf = SignatureClassifier::train(
                &data,
                TreeParams::default(),
                ModelMeta {
                    congestion_threshold: f64::NAN,
                    trained_on: "Dispute2014 labels (leave-target-out)".into(),
                    n_train: data.len(),
                    n_filtered: 0,
                },
            );
            for frame in Timeframe::ALL {
                let flows: Vec<_> = tests
                    .iter()
                    .filter(|t| t.site == site && t.isp == isp && frame.contains(t))
                    .filter_map(|t| t.measurement.features.as_ref().ok())
                    .collect();
                let self_count = flows
                    .iter()
                    .filter(|f| clf.classify(f) == CongestionClass::SelfInduced)
                    .count();
                bars.push(Fig7Bar {
                    site,
                    isp,
                    frame,
                    frac_self: if flows.is_empty() {
                        f64::NAN
                    } else {
                        self_count as f64 / flows.len() as f64
                    },
                    n: flows.len(),
                });
            }
        }
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_mlab::{generate, Dispute2014Config};
    use csig_netsim::SimDuration;

    fn campaign() -> Vec<NdtTest> {
        generate(&Dispute2014Config {
            tests_per_cell: 8,
            test_duration: SimDuration::from_secs(3),
            seed: 41,
        })
    }

    #[test]
    fn fig7_shows_the_dispute_and_recovery() {
        let tests = campaign();
        let clf = testbed_model(4, 42);
        let bars = fig7(&clf, &tests);
        let get = |site, isp, frame| {
            bars.iter()
                .find(|b| b.site == site && b.isp == isp && b.frame == frame)
                .map(|b| b.frac_self)
                .unwrap()
        };
        // Affected pair: big Jan-Feb → Mar-Apr jump in %-self.
        let jf = get(
            TransitSite::CogentLax,
            AccessIsp::Comcast,
            Timeframe::JanFebPeak,
        );
        let ma = get(
            TransitSite::CogentLax,
            AccessIsp::Comcast,
            Timeframe::MarAprOffPeak,
        );
        if !jf.is_nan() && !ma.is_nan() {
            assert!(
                ma - jf > 0.25,
                "Comcast/Cogent should jump: JanFeb {jf} MarApr {ma}"
            );
        }
        // Control site: Level3 stays uniformly high-ish in both frames.
        for isp in AccessIsp::ALL {
            let jf = get(TransitSite::Level3Atl, isp, Timeframe::JanFebPeak);
            if !jf.is_nan() {
                assert!(jf > 0.4, "{} Level3 JanFeb only {jf}", isp.name());
            }
        }
    }

    #[test]
    fn fig9_dispute_trained_model_agrees_qualitatively() {
        let tests = campaign();
        let bars = fig9(&tests, 1);
        assert!(!bars.is_empty());
        // At least one affected pair shows the jump.
        let mut jumps: Vec<f64> = Vec::new();
        for site in TransitSite::ALL.into_iter().filter(|s| s.is_cogent()) {
            for isp in [
                AccessIsp::Comcast,
                AccessIsp::TimeWarner,
                AccessIsp::Verizon,
            ] {
                let get = |frame| {
                    bars.iter()
                        .find(|b| b.site == site && b.isp == isp && b.frame == frame)
                        .map(|b| b.frac_self)
                };
                if let (Some(a), Some(b)) =
                    (get(Timeframe::JanFebPeak), get(Timeframe::MarAprOffPeak))
                {
                    if !a.is_nan() && !b.is_nan() {
                        jumps.push(b - a);
                    }
                }
            }
        }
        assert!(!jumps.is_empty());
        let mean_jump: f64 = jumps.iter().sum::<f64>() / jumps.len() as f64;
        assert!(mean_jump > 0.1, "mean jump {mean_jump} over {jumps:?}");
    }
}
