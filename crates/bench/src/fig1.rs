//! Figure 1: CDFs of (max − min) slow-start RTT and slow-start RTT CoV
//! for self-induced vs external congestion.
//!
//! Paper setting: a 20 Mbps emulated access link with a 100 ms buffer
//! and 20 ms added latency (zero loss), served by the interconnect; 50
//! tests per scenario. Self-induced flows should show a max−min close
//! to the 100 ms buffer depth and clearly higher CoV.

use csig_exec::{Campaign, Executor, ProgressEvent};
use csig_netsim::rng::derive_seed;
use csig_obs::{MetricsRegistry, Snapshot, TraceEvent};
use csig_testbed::{AccessParams, ObservedSweepScenario, Profile, SweepScenario, TestResult};
use serde::{Deserialize, Serialize};

/// One flow's Figure-1 metrics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig1Point {
    /// max − min slow-start RTT, ms.
    pub max_minus_min_ms: f64,
    /// Slow-start RTT coefficient of variation.
    pub cov: f64,
}

/// Both scenarios' point clouds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fig1Data {
    /// Self-induced-scenario flows.
    pub self_induced: Vec<Fig1Point>,
    /// External-scenario flows.
    pub external: Vec<Fig1Point>,
}

/// The Figure-1 campaign: `reps` tests per scenario on the figure-1
/// access point, interleaved self/external. Each test keeps its bespoke
/// seed `derive_seed(seed, rep << 1 | external)` from the original
/// loop, so measurements are unchanged.
pub fn campaign(reps: u32, profile: Profile, seed: u64) -> Campaign<SweepScenario> {
    let mut campaign = Campaign::new(seed);
    for rep in 0..reps {
        for external in [false, true] {
            campaign.push_seeded(
                derive_seed(seed, (rep as u64) << 1 | external as u64),
                SweepScenario {
                    access: AccessParams::figure1(),
                    external,
                    profile,
                },
            );
        }
    }
    campaign
}

/// Fold executor artifacts into the two Figure-1 point clouds.
pub fn collect(results: &[TestResult]) -> Fig1Data {
    let mut data = Fig1Data::default();
    for r in results {
        if let Ok(f) = &r.features {
            let point = Fig1Point {
                max_minus_min_ms: f.max_rtt_ms - f.min_rtt_ms,
                cov: f.cov,
            };
            if r.intended == csig_features::CongestionClass::External {
                data.external.push(point);
            } else {
                data.self_induced.push(point);
            }
        }
    }
    data
}

/// Run the Figure-1 experiment with `reps` tests per scenario.
pub fn run(reps: u32, profile: Profile, seed: u64) -> Fig1Data {
    run_jobs(reps, profile, seed, 1, |_| {})
}

/// [`run`] on `jobs` workers (`0` = one per core); output is identical
/// for every worker count.
pub fn run_jobs<F: FnMut(ProgressEvent)>(
    reps: u32,
    profile: Profile,
    seed: u64,
    jobs: usize,
    progress: F,
) -> Fig1Data {
    run_with(reps, profile, seed, &Executor::new(jobs), progress)
}

/// [`run`] on a caller-configured executor (worker count, per-scenario
/// deadline, …).
pub fn run_with<F: FnMut(ProgressEvent)>(
    reps: u32,
    profile: Profile,
    seed: u64,
    exec: &Executor,
    progress: F,
) -> Fig1Data {
    collect(&exec.run_with_progress(&campaign(reps, profile, seed), progress))
}

/// Figure-1 results together with the campaign's observability.
#[derive(Debug, Clone)]
pub struct Fig1Observed {
    /// The figure data, identical to what [`run_with`] produces.
    pub data: Fig1Data,
    /// Merged campaign metrics: executor counters plus every
    /// scenario's snapshot absorbed in submission order.
    pub metrics: Snapshot,
    /// Trace events from all scenarios, each tagged with its campaign
    /// index, concatenated in submission order.
    pub trace: Vec<TraceEvent>,
}

/// [`campaign`] with per-scenario observability attached to each cell.
pub fn observed_campaign(
    reps: u32,
    profile: Profile,
    seed: u64,
) -> Campaign<ObservedSweepScenario> {
    let mut observed = Campaign::new(seed);
    for (scenario_seed, sc) in campaign(reps, profile, seed).iter() {
        observed.push_seeded(*scenario_seed, ObservedSweepScenario(*sc));
    }
    observed
}

/// [`run_with`], instrumented: per-scenario metrics snapshots are
/// merged into one campaign registry (with the executor's own
/// counters), trace events are collected, and tree inference over the
/// resulting flows is timed under `time.inference_us` — using a model
/// trained on the campaign's own labeled results, threshold 0.7.
///
/// The figure data is byte-identical to the unobserved path, and the
/// deterministic subset of `metrics` is byte-identical across same-seed
/// runs at any worker count.
pub fn run_observed_with<F: FnMut(ProgressEvent)>(
    reps: u32,
    profile: Profile,
    seed: u64,
    exec: &Executor,
    progress: F,
) -> Fig1Observed {
    let reg = MetricsRegistry::new();
    let artifacts = exec
        .run_observed_with_progress(&observed_campaign(reps, profile, seed), &reg, progress)
        .expect_artifacts();
    let mut results = Vec::with_capacity(artifacts.len());
    let mut trace = Vec::new();
    for (i, (result, snapshot, events)) in artifacts.into_iter().enumerate() {
        reg.absorb(&snapshot);
        trace.extend(
            events
                .into_iter()
                .map(|e| e.field("campaign_index", i as u64)),
        );
        results.push(result);
    }
    time_inference(&reg, &results);
    Fig1Observed {
        data: collect(&results),
        metrics: reg.snapshot(),
        trace,
    }
}

/// Train a quick tree on the campaign's own labeled results and
/// classify every flow under the `time.inference_us` timer, so `fig1
/// --metrics-out` reports real inference cost next to the event-loop
/// and feature-extraction timers.
fn time_inference(reg: &MetricsRegistry, results: &[TestResult]) {
    let Some(model) =
        csig_core::train_from_results(results, 0.7, csig_dtree::TreeParams::default())
    else {
        return;
    };
    let timer = reg.timer("time.inference_us");
    let inferences = reg.counter("flows.inferences");
    for r in results {
        if let Ok(f) = &r.features {
            let _t = timer.start_timer();
            let _ = model.classify_with_confidence(f);
            inferences.add(1);
        }
    }
}

/// Print the two CDFs as aligned percentile tables.
pub fn print(data: &Fig1Data) {
    let pct = |v: &[f64], p: f64| csig_features::percentile(v, p).unwrap_or(f64::NAN);
    let series = |pts: &[Fig1Point]| {
        let mm: Vec<f64> = pts.iter().map(|p| p.max_minus_min_ms).collect();
        let cov: Vec<f64> = pts.iter().map(|p| p.cov).collect();
        (mm, cov)
    };
    let (smm, scov) = series(&data.self_induced);
    let (emm, ecov) = series(&data.external);
    println!("Figure 1a — max−min slow-start RTT (ms), CDF percentiles");
    println!("  {:>6} {:>10} {:>10}", "pct", "self", "external");
    for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
        println!(
            "  {:>5.0}% {:>10.1} {:>10.1}",
            p,
            pct(&smm, p),
            pct(&emm, p)
        );
    }
    println!("Figure 1b — slow-start RTT CoV, CDF percentiles");
    println!("  {:>6} {:>10} {:>10}", "pct", "self", "external");
    for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
        println!(
            "  {:>5.0}% {:>10.3} {:>10.3}",
            p,
            pct(&scov, p),
            pct(&ecov, p)
        );
    }
    println!(
        "  n_self={} n_external={}",
        data.self_induced.len(),
        data.external.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_run_matches_plain_and_is_jobs_invariant() {
        let plain = run(2, Profile::Scaled, 21);
        let seq = run_observed_with(2, Profile::Scaled, 21, &Executor::sequential(), |_| {});
        let par = run_observed_with(2, Profile::Scaled, 21, &Executor::new(4), |_| {});
        // Figure data unchanged by instrumentation.
        assert_eq!(format!("{plain:?}"), format!("{:?}", seq.data));
        // Deterministic metrics identical across worker counts.
        let a = seq.metrics.deterministic().to_json();
        let b = par.metrics.deterministic().to_json();
        assert_eq!(a, b);
        assert!(seq.metrics.counter("sim.events").unwrap_or(0) > 0);
        assert!(seq.metrics.counter("rtt.samples").unwrap_or(0) > 0);
        assert!(seq.metrics.counter("flows.verdicts").unwrap_or(0) > 0);
        assert_eq!(seq.metrics.counter("exec.scenarios_ok"), Some(4));
        // Traces are identical too (sim-time only, no wall clock).
        assert_eq!(
            seq.trace
                .iter()
                .map(|e| e.to_json_line())
                .collect::<Vec<_>>(),
            par.trace
                .iter()
                .map(|e| e.to_json_line())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn figure1_shape_holds() {
        let data = run(3, Profile::Scaled, 11);
        assert!(data.self_induced.len() >= 2);
        assert!(data.external.len() >= 2);
        let med = |v: Vec<f64>| csig_features::median(&v).unwrap();
        let self_mm = med(data
            .self_induced
            .iter()
            .map(|p| p.max_minus_min_ms)
            .collect());
        let ext_mm = med(data.external.iter().map(|p| p.max_minus_min_ms).collect());
        // Self-induced flows fill the ~100 ms buffer; external flows
        // see a much smaller swing.
        assert!(self_mm > 80.0, "self max-min {self_mm}");
        assert!(ext_mm < self_mm, "external {ext_mm} vs self {self_mm}");
        let self_cov = med(data.self_induced.iter().map(|p| p.cov).collect());
        let ext_cov = med(data.external.iter().map(|p| p.cov).collect());
        assert!(self_cov > ext_cov);
    }
}
