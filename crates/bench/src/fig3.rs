//! Figures 3 & 4: classifier precision/recall vs the congestion
//! threshold, and the raw NormDiff/CoV scatter over the full grid.

use csig_core::{threshold_sweep, ThresholdPoint};
use csig_dtree::TreeParams;
use csig_exec::{Executor, ProgressEvent};
use csig_features::CongestionClass;
use csig_testbed::{paper_grid, small_grid, Profile, Sweep, TestResult};
use serde::{Deserialize, Serialize};

/// The sweep specification backing Figures 3 and 4.
pub fn sweep(reps: u32, full_grid: bool, profile: Profile, seed: u64) -> Sweep {
    Sweep {
        grid: if full_grid {
            paper_grid()
        } else {
            small_grid()
        },
        reps,
        profile,
        seed,
    }
}

/// Run the grid sweep backing Figures 3 and 4 sequentially.
pub fn run_sweep(reps: u32, full_grid: bool, profile: Profile, seed: u64) -> Vec<TestResult> {
    sweep(reps, full_grid, profile, seed).run(|_, _| {})
}

/// [`run_sweep`] on `jobs` workers with a progress callback; results
/// are byte-identical to the sequential run.
pub fn run_sweep_jobs<F: FnMut(ProgressEvent)>(
    reps: u32,
    full_grid: bool,
    profile: Profile,
    seed: u64,
    jobs: usize,
    progress: F,
) -> Vec<TestResult> {
    sweep(reps, full_grid, profile, seed).run_jobs(jobs, progress)
}

/// [`run_sweep`] on a caller-configured executor (worker count,
/// per-scenario deadline, …).
pub fn run_sweep_with<F: FnMut(ProgressEvent)>(
    reps: u32,
    full_grid: bool,
    profile: Profile,
    seed: u64,
    exec: &Executor,
    progress: F,
) -> Vec<TestResult> {
    sweep(reps, full_grid, profile, seed).run_with(exec, progress)
}

/// The Figure-3 threshold sweep over pre-computed results.
pub fn threshold_points(results: &[TestResult], seed: u64) -> Vec<ThresholdPoint> {
    let thresholds: Vec<f64> = (1..20).map(|i| i as f64 * 0.05).collect();
    threshold_sweep(results, &thresholds, TreeParams::default(), seed)
}

/// Print Figure 3 as a table.
pub fn print_fig3(points: &[ThresholdPoint]) {
    println!("Figure 3 — precision/recall vs congestion threshold");
    println!(
        "  {:>9} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "threshold", "P(self)", "R(self)", "P(ext)", "R(ext)", "n"
    );
    for p in points {
        println!(
            "  {:>9.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>6}",
            p.threshold,
            p.precision_self,
            p.recall_self,
            p.precision_external,
            p.recall_external,
            p.n
        );
    }
}

/// One Figure-4 scatter point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig4Point {
    /// NormDiff.
    pub norm_diff: f64,
    /// CoV.
    pub cov: f64,
    /// Scenario ground truth.
    pub class: CongestionClass,
}

/// Figure-4 scatter from sweep results.
pub fn fig4_points(results: &[TestResult]) -> Vec<Fig4Point> {
    results
        .iter()
        .filter_map(|r| {
            r.features.as_ref().ok().map(|f| Fig4Point {
                norm_diff: f.norm_diff,
                cov: f.cov,
                class: r.intended,
            })
        })
        .collect()
}

/// Print Figure 4 as summary statistics plus raw points.
pub fn print_fig4(points: &[Fig4Point], raw: bool) {
    println!("Figure 4 — NormDiff vs CoV by scenario");
    for class in [CongestionClass::SelfInduced, CongestionClass::External] {
        let nd: Vec<f64> = points
            .iter()
            .filter(|p| p.class == class)
            .map(|p| p.norm_diff)
            .collect();
        let cov: Vec<f64> = points
            .iter()
            .filter(|p| p.class == class)
            .map(|p| p.cov)
            .collect();
        let med = |v: &[f64]| csig_features::median(v).unwrap_or(f64::NAN);
        let p10 = |v: &[f64]| csig_features::percentile(v, 10.0).unwrap_or(f64::NAN);
        let p90 = |v: &[f64]| csig_features::percentile(v, 90.0).unwrap_or(f64::NAN);
        println!(
            "  {:>8}: n={:<4} NormDiff p10/med/p90 = {:.2}/{:.2}/{:.2}  CoV = {:.3}/{:.3}/{:.3}",
            class.label(),
            nd.len(),
            p10(&nd),
            med(&nd),
            p90(&nd),
            p10(&cov),
            med(&cov),
            p90(&cov),
        );
    }
    if raw {
        println!("  norm_diff,cov,class");
        for p in points {
            println!("  {:.4},{:.4},{}", p.norm_diff, p.cov, p.class.label());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_sweep_is_stable_in_the_paper_band() {
        let results = run_sweep(5, false, Profile::Scaled, 21);
        let pts = threshold_points(&results, 1);
        assert!(!pts.is_empty());
        // Within the paper's reliable band (0.6–0.9 in the paper; a
        // scaled testbed keeps good behavior in 0.5–0.8), the *band
        // average* of recall stays high for both classes (individual
        // points are noisy at unit-test sample sizes).
        let band: Vec<_> = pts
            .iter()
            .filter(|p| (0.5..=0.8).contains(&p.threshold))
            .collect();
        assert!(band.len() >= 3);
        let mean = |f: fn(&ThresholdPoint) -> f64| {
            band.iter().map(|p| f(p)).sum::<f64>() / band.len() as f64
        };
        assert!(mean(|p| p.recall_self) > 0.75, "{band:?}");
        assert!(mean(|p| p.recall_external) > 0.75, "{band:?}");
        assert!(mean(|p| p.precision_self) > 0.75, "{band:?}");
    }

    #[test]
    fn fig4_separates_classes() {
        let results = run_sweep(2, false, Profile::Scaled, 22);
        let pts = fig4_points(&results);
        let med = |class: CongestionClass, f: fn(&Fig4Point) -> f64| {
            csig_features::median(
                &pts.iter()
                    .filter(|p| p.class == class)
                    .map(f)
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        assert!(
            med(CongestionClass::SelfInduced, |p| p.norm_diff)
                > med(CongestionClass::External, |p| p.norm_diff)
        );
        assert!(
            med(CongestionClass::SelfInduced, |p| p.cov)
                > med(CongestionClass::External, |p| p.cov)
        );
    }
}
