//! Impairment robustness sweep: classifier precision/recall under
//! bursty access-link loss and packet reordering.
//!
//! The paper's testbed injects only i.i.d. random loss; real access
//! links fail in bursts (Gilbert–Elliott) and occasionally reorder.
//! Both contaminate the slow-start RTT window the classifier reads, so
//! this sweep measures how quickly the self-induced/external decision
//! degrades as burst-loss rate and reorder probability grow. Each cell
//! runs the scaled Figure-1 testbed with a [`FaultPlan`] attached to
//! the downstream access link; the fault stream is drawn from the
//! scenario seed, so rows are byte-identical across `--jobs`.

use csig_core::SignatureClassifier;
use csig_exec::{Campaign, Executor, Scenario};
use csig_features::CongestionClass;
use csig_netsim::{FaultPlan, GilbertElliott, SimDuration};
use csig_testbed::{run_test, AccessParams, TestResult, TestbedConfig};
use serde::{Deserialize, Serialize};

/// Mean burst length of the Gilbert–Elliott loss chain, packets.
pub const BURST_LEN: f64 = 8.0;
/// Extra delay a reordered packet is held back, ms.
pub const REORDER_HOLD_MS: u64 = 3;

/// One impairment level of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ImpairKind {
    /// No impairment (baseline row).
    Clean,
    /// Gilbert–Elliott bursty loss at this stationary loss rate.
    BurstLoss {
        /// Stationary (mean) loss probability.
        mean_loss: f64,
    },
    /// Random reordering: each packet is held back an extra
    /// [`REORDER_HOLD_MS`] with this probability.
    Reorder {
        /// Per-packet reorder probability.
        probability: f64,
    },
}

impl ImpairKind {
    /// The fault plan for this level (empty for [`ImpairKind::Clean`]).
    pub fn plan(&self) -> FaultPlan {
        match *self {
            ImpairKind::Clean => FaultPlan::new(),
            ImpairKind::BurstLoss { mean_loss } => {
                FaultPlan::new().gilbert_elliott(GilbertElliott::bursty(BURST_LEN, mean_loss))
            }
            ImpairKind::Reorder { probability } => {
                FaultPlan::new().reorder(probability, SimDuration::from_millis(REORDER_HOLD_MS))
            }
        }
    }

    /// Human-readable row label.
    pub fn label(&self) -> String {
        match *self {
            ImpairKind::Clean => "clean".into(),
            ImpairKind::BurstLoss { mean_loss } => {
                format!("burst loss {:.2}%", mean_loss * 100.0)
            }
            ImpairKind::Reorder { probability } => {
                format!("reorder {:.1}%", probability * 100.0)
            }
        }
    }
}

/// The default sweep levels: a clean baseline, then rising burst-loss
/// and reorder intensities.
pub fn levels() -> Vec<ImpairKind> {
    let mut l = vec![ImpairKind::Clean];
    for mean_loss in [0.0025, 0.005, 0.01, 0.02] {
        l.push(ImpairKind::BurstLoss { mean_loss });
    }
    for probability in [0.005, 0.01, 0.02, 0.05] {
        l.push(ImpairKind::Reorder { probability });
    }
    l
}

/// One cell of the sweep as a self-contained [`Scenario`].
#[derive(Debug, Clone, Copy)]
pub struct ImpairScenario {
    /// The impairment applied to the access link.
    pub kind: ImpairKind,
    /// Run with an externally congested interconnect?
    pub external: bool,
}

impl Scenario for ImpairScenario {
    type Artifact = (ImpairKind, bool, TestResult);

    fn run(&self, seed: u64) -> Self::Artifact {
        let mut cfg = TestbedConfig::scaled(AccessParams::figure1(), seed)
            .with_access_fault(self.kind.plan());
        if self.external {
            cfg = cfg.externally_congested();
        }
        (self.kind, self.external, run_test(&cfg))
    }
}

/// Precision/recall of the self-induced decision at one impairment
/// level (self-induced is the positive class).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImpairRow {
    /// Impairment label.
    pub impairment: String,
    /// Of flows classified self-induced, fraction truly self-induced.
    pub precision: f64,
    /// Of truly self-induced flows, fraction classified self-induced.
    pub recall: f64,
    /// Classifiable self-induced runs.
    pub n_self: usize,
    /// Classifiable external runs.
    pub n_external: usize,
    /// Runs whose features could not be computed (too few RTT samples
    /// survived the impairment).
    pub n_skipped: usize,
}

/// Run the sweep: `reps` repetitions per level per scenario, executed
/// as one campaign (parallelism and failure isolation come from the
/// executor).
pub fn run(clf: &SignatureClassifier, reps: u32, seed: u64, exec: &Executor) -> Vec<ImpairRow> {
    let levels = levels();
    let mut campaign = Campaign::new(seed);
    for &kind in &levels {
        for _rep in 0..reps {
            for external in [false, true] {
                campaign.push(ImpairScenario { kind, external });
            }
        }
    }
    let artifacts = exec.run(&campaign);

    levels
        .iter()
        .map(|&kind| {
            // counts[truth][prediction]: 1 = self-induced.
            let mut counts = [[0usize; 2]; 2];
            let mut skipped = 0usize;
            for (k, external, result) in artifacts.iter().filter(|(k, _, _)| *k == kind) {
                debug_assert_eq!(*k, kind);
                match &result.features {
                    Ok(f) => {
                        let pred = clf.classify(f) == CongestionClass::SelfInduced;
                        counts[usize::from(!*external)][usize::from(pred)] += 1;
                    }
                    Err(_) => skipped += 1,
                }
            }
            let tp = counts[1][1] as f64;
            let fp = counts[0][1] as f64;
            let fnn = counts[1][0] as f64;
            ImpairRow {
                impairment: kind.label(),
                precision: tp / (tp + fp).max(1.0),
                recall: tp / (tp + fnn).max(1.0),
                n_self: counts[1][0] + counts[1][1],
                n_external: counts[0][0] + counts[0][1],
                n_skipped: skipped,
            }
        })
        .collect()
}

/// Print the sweep table.
pub fn print(rows: &[ImpairRow]) {
    println!("impairment sweep — self-induced precision/recall");
    println!(
        "  {:>18} {:>10} {:>8} {:>7} {:>7} {:>8}",
        "impairment", "precision", "recall", "n_self", "n_ext", "skipped"
    );
    for r in rows {
        println!(
            "  {:>18} {:>9.0}% {:>7.0}% {:>7} {:>7} {:>8}",
            r.impairment,
            r.precision * 100.0,
            r.recall * 100.0,
            r.n_self,
            r.n_external,
            r.n_skipped
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispute::testbed_model;

    #[test]
    fn clean_baseline_beats_heavy_impairment_structurally() {
        let clf = testbed_model(3, 91);
        let exec = Executor::new(0);
        // Tiny sweep: baseline plus one heavy level of each axis.
        let kinds = [
            ImpairKind::Clean,
            ImpairKind::BurstLoss { mean_loss: 0.02 },
            ImpairKind::Reorder { probability: 0.05 },
        ];
        let mut campaign = Campaign::new(92);
        for &kind in &kinds {
            for _ in 0..2 {
                for external in [false, true] {
                    campaign.push(ImpairScenario { kind, external });
                }
            }
        }
        let artifacts = exec.run(&campaign);
        assert_eq!(artifacts.len(), 12);
        // Every cell produced a result for its own level, and the clean
        // baseline stays classifiable with the expected signature.
        let clean_self: Vec<_> = artifacts
            .iter()
            .filter(|(k, e, _)| *k == ImpairKind::Clean && !*e)
            .collect();
        assert_eq!(clean_self.len(), 2);
        for (_, _, r) in clean_self {
            let f = r.features.as_ref().expect("clean run classifiable");
            assert_eq!(clf.classify(f), CongestionClass::SelfInduced);
        }
        // Heavy burst loss actually lost packets (the plan attached).
        let lossy = artifacts
            .iter()
            .filter(|(k, _, _)| matches!(k, ImpairKind::BurstLoss { .. }))
            .count();
        assert_eq!(lossy, 4);
    }

    #[test]
    fn levels_and_labels_are_wellformed() {
        let l = levels();
        assert_eq!(l[0], ImpairKind::Clean);
        assert!(l.len() >= 7);
        assert!(ImpairKind::Clean.plan().is_empty());
        assert!(!ImpairKind::BurstLoss { mean_loss: 0.01 }.plan().is_empty());
        assert_eq!(
            ImpairKind::BurstLoss { mean_loss: 0.01 }.label(),
            "burst loss 1.00%"
        );
        assert_eq!(
            ImpairKind::Reorder { probability: 0.02 }.label(),
            "reorder 2.0%"
        );
    }
}
