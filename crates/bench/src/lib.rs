//! # csig-bench — experiment and benchmark harness
//!
//! One module per table/figure of the paper's evaluation, reused by the
//! `fig*`/`exp_*` binaries (full output) and the Criterion benches
//! (timing of scaled-down runs). See EXPERIMENTS.md for the measured
//! results and the paper-vs-measured comparison.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig1`] | Fig. 1a/1b — RTT signature CDFs |
//! | [`fig3`] | Fig. 3 (threshold sweep) and Fig. 4 (feature scatter) |
//! | [`multiplexing`] | §3.3 multiplexing accuracy table |
//! | [`dispute`] | Figs. 5, 7, 8, 9 — Dispute2014 analyses |
//! | [`tslp_exp`] | Fig. 6 and §5.4 — TSLP2017 |
//! | [`ablation`] | feature-set / tree-depth ablations |
//! | [`cc_variants`] | §6 robustness: CC algorithm, queue, buffer |
//! | [`impair`] | robustness extension: precision/recall under bursty loss and reordering |
//! | [`web100_exp`] | §6 extension: kernel-sample (Web100) classification |

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ablation;
pub mod cc_variants;
pub mod dispute;
pub mod fig1;
pub mod fig3;
pub mod impair;
pub mod multiplexing;
pub mod tslp_exp;
pub mod web100_exp;
