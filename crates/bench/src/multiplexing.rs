//! §3.3 multiplexing experiment: classifier robustness as the
//! assumption of many-flow interconnect congestion (or an exclusive
//! access link) is relaxed.
//!
//! Paper results (50 Mbps access): external-congestion accuracy falls
//! 93 % → 84 % → 74 % → 50 % as `TGcong` drops 100 → 50 → 20 → 10
//! flows; self-induced accuracy falls 86 % → 70 % as access cross
//! traffic rises from 1 to 5 flows.

use csig_core::{train_from_results, SignatureClassifier};
use csig_dtree::TreeParams;
use csig_features::CongestionClass;
use csig_netsim::rng::derive_seed;
use csig_testbed::{
    run_test, small_grid, AccessParams, CongestionMode, Profile, Sweep, TestbedConfig,
};
use serde::{Deserialize, Serialize};

/// One row of the multiplexing result.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MultiplexPoint {
    /// `TGcong` flows (external rows) or access cross flows (self rows).
    pub flows: u32,
    /// Fraction classified according to the scenario's ground truth.
    pub accuracy: f64,
    /// Tests with valid features.
    pub n: usize,
}

/// Full §3.3 output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiplexData {
    /// External accuracy vs `TGcong` flow count (descending).
    pub external_vs_flows: Vec<MultiplexPoint>,
    /// Self accuracy vs access-link cross flows.
    pub self_vs_cross: Vec<MultiplexPoint>,
}

/// Train the reference model used for the experiment.
pub fn reference_model(profile: Profile, reps: u32, seed: u64) -> SignatureClassifier {
    let results = Sweep {
        grid: small_grid(),
        reps,
        profile,
        seed,
    }
    .run(|_, _| {});
    match train_from_results(&results, 0.7, TreeParams::default()) {
        Some(m) => m,
        None => panic!("reference sweep produced no trainable dataset (reps {reps}, seed {seed})"),
    }
}

fn access50() -> AccessParams {
    AccessParams {
        rate_mbps: 50,
        loss_pct: 0.02,
        latency_ms: 20,
        buffer_ms: 50,
    }
}

fn accuracy_over(
    clf: &SignatureClassifier,
    configs: impl Iterator<Item = TestbedConfig>,
    expect: CongestionClass,
) -> MultiplexPoint {
    let mut right = 0usize;
    let mut n = 0usize;
    let mut flows = 0;
    for cfg in configs {
        flows = match cfg.congestion {
            CongestionMode::TgCong { flows } => flows,
            _ => cfg.access_cross_flows,
        };
        let r = run_test(&cfg);
        if let Ok(f) = &r.features {
            n += 1;
            if clf.classify(f) == expect {
                right += 1;
            }
        }
    }
    MultiplexPoint {
        flows,
        accuracy: if n == 0 { 0.0 } else { right as f64 / n as f64 },
        n,
    }
}

/// Run the experiment: `reps` tests per point. Flow counts are the
/// paper's, scaled ×0.4 under the scaled profile (whose baseline
/// external scenario uses 40 flows instead of 100).
pub fn run(clf: &SignatureClassifier, reps: u32, profile: Profile, seed: u64) -> MultiplexData {
    let flow_counts: Vec<u32> = match profile {
        Profile::Paper => vec![100, 50, 20, 10],
        Profile::Scaled => vec![40, 20, 8, 4],
    };
    let mk = |s: u64| match profile {
        Profile::Paper => TestbedConfig::paper(access50(), s),
        Profile::Scaled => TestbedConfig::scaled(access50(), s),
    };
    let external_vs_flows = flow_counts
        .iter()
        .map(|&flows| {
            accuracy_over(
                clf,
                (0..reps).map(|rep| {
                    mk(derive_seed(seed, ((flows as u64) << 20) | rep as u64))
                        .with_congestion(CongestionMode::TgCong { flows })
                }),
                CongestionClass::External,
            )
        })
        .collect();

    let self_vs_cross = [1u32, 2, 5]
        .iter()
        .map(|&cross| {
            accuracy_over(
                clf,
                (0..reps).map(|rep| {
                    let mut cfg = mk(derive_seed(
                        seed,
                        0xAC0000 | ((cross as u64) << 8) | rep as u64,
                    ));
                    cfg.access_cross_flows = cross;
                    cfg
                }),
                CongestionClass::SelfInduced,
            )
        })
        .collect();

    MultiplexData {
        external_vs_flows,
        self_vs_cross,
    }
}

/// Print the §3.3 table.
pub fn print(data: &MultiplexData) {
    println!("§3.3 — external accuracy vs TGcong multiplexing (50 Mbps access)");
    println!("  {:>6} {:>9} {:>4}", "flows", "accuracy", "n");
    for p in &data.external_vs_flows {
        println!("  {:>6} {:>8.0}% {:>4}", p.flows, p.accuracy * 100.0, p.n);
    }
    println!("§3.3 — self accuracy vs access-link cross flows");
    println!("  {:>6} {:>9} {:>4}", "cross", "accuracy", "n");
    for p in &data.self_vs_cross {
        println!("  {:>6} {:>8.0}% {:>4}", p.flows, p.accuracy * 100.0, p.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_accuracy_decays_with_fewer_flows() {
        let clf = reference_model(Profile::Scaled, 3, 31);
        let data = run(&clf, 3, Profile::Scaled, 32);
        assert_eq!(data.external_vs_flows.len(), 4);
        let first = data.external_vs_flows.first().unwrap();
        let last = data.external_vs_flows.last().unwrap();
        // Monotone-ish decay: full multiplexing beats minimal.
        assert!(
            first.accuracy >= last.accuracy,
            "{} (at {}) vs {} (at {})",
            first.accuracy,
            first.flows,
            last.accuracy,
            last.flows
        );
        assert!(first.accuracy > 0.5, "baseline accuracy {}", first.accuracy);
    }
}
