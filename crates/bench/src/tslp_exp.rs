//! Figure 6 and §5.4: the TSLP2017 targeted experiment.

use csig_core::SignatureClassifier;
use csig_features::CongestionClass;
use csig_mlab::{label_tslp2017, Tslp2017Output};
use csig_netsim::SimTime;
use serde::{Deserialize, Serialize};

/// Print Figure 6: TSLP far-router latency and NDT throughput around
/// one episode window.
pub fn print_fig6(out: &Tslp2017Output) {
    let Some(ep) = out.episodes.first() else {
        println!("Figure 6 — no episodes scheduled");
        return;
    };
    let margin = csig_netsim::SimDuration::from_secs(6 * 3600);
    let from = ep.start - margin;
    let to = ep.end + margin;
    println!(
        "Figure 6 — window around the first episode (day {:.2}–{:.2})",
        ep.start.as_secs_f64() / 86_400.0,
        ep.end.as_secs_f64() / 86_400.0
    );
    println!("  (a) TSLP far-router RTT (hourly mean, ms)");
    let mut t = from;
    while t < to {
        let next = t + csig_netsim::SimDuration::from_secs(3600);
        let w = out.far.window(t, next);
        if !w.is_empty() {
            let mean: f64 = w.rtts_ms().iter().sum::<f64>() / w.len() as f64;
            println!(
                "    day {:>5.2} {:>6.1} {}",
                t.as_secs_f64() / 86_400.0,
                mean,
                bar(mean, 40.0)
            );
        }
        t = next;
    }
    println!("  (b) NDT throughput (Mbps)");
    for test in out.tests.iter().filter(|t| t.at >= from && t.at < to) {
        println!(
            "    day {:>5.2} {:>6.1} {}{}",
            test.at.as_secs_f64() / 86_400.0,
            test.measurement.throughput_mbps,
            bar(test.measurement.throughput_mbps, 25.0),
            if test.during_episode {
                "  *episode*"
            } else {
                ""
            }
        );
    }
}

fn bar(v: f64, scale: f64) -> String {
    let n = ((v / scale) * 30.0).clamp(0.0, 40.0) as usize;
    "#".repeat(n)
}

/// §5.4 accuracy result.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Tslp2017Accuracy {
    /// Correctly classified self-induced-labeled tests.
    pub self_correct: usize,
    /// Total self-induced-labeled tests.
    pub self_total: usize,
    /// Correctly classified external-labeled tests.
    pub external_correct: usize,
    /// Total external-labeled tests.
    pub external_total: usize,
}

impl Tslp2017Accuracy {
    /// Self-induced accuracy in [0, 1].
    pub fn self_accuracy(&self) -> f64 {
        self.self_correct as f64 / self.self_total.max(1) as f64
    }

    /// External accuracy in [0, 1].
    pub fn external_accuracy(&self) -> f64 {
        self.external_correct as f64 / self.external_total.max(1) as f64
    }
}

/// Classify every labeled test of the campaign with `clf`.
pub fn evaluate(
    clf: &SignatureClassifier,
    out: &Tslp2017Output,
    plan_mbps: u64,
) -> Tslp2017Accuracy {
    let mut acc = Tslp2017Accuracy {
        self_correct: 0,
        self_total: 0,
        external_correct: 0,
        external_total: 0,
    };
    for t in &out.tests {
        let (Some(label), Ok(f)) = (label_tslp2017(t, plan_mbps), &t.measurement.features) else {
            continue;
        };
        let pred = clf.classify(f);
        match label {
            CongestionClass::SelfInduced => {
                acc.self_total += 1;
                if pred == label {
                    acc.self_correct += 1;
                }
            }
            CongestionClass::External => {
                acc.external_total += 1;
                if pred == label {
                    acc.external_correct += 1;
                }
            }
        }
    }
    acc
}

/// Print the §5.4 result table.
pub fn print_accuracy(label: &str, acc: &Tslp2017Accuracy) {
    println!(
        "§5.4 ({label}): self {}/{} = {:.0}%, external {}/{} = {:.0}%",
        acc.self_correct,
        acc.self_total,
        acc.self_accuracy() * 100.0,
        acc.external_correct,
        acc.external_total,
        acc.external_accuracy() * 100.0,
    );
}

/// Timestamp of the first probe, for tests.
pub fn first_probe_at(out: &Tslp2017Output) -> Option<SimTime> {
    out.far.points.first().map(|&(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispute::testbed_model;
    use csig_mlab::{run_campaign, Tslp2017Config};
    use csig_netsim::SimDuration;

    #[test]
    fn section_5_4_accuracies_hold() {
        let out = run_campaign(&Tslp2017Config {
            days: 4,
            episode_days: vec![1, 3],
            peak_test_minutes: 60,
            offpeak_test_minutes: 180,
            test_duration: SimDuration::from_secs(3),
            ..Tslp2017Config::default()
        });
        let clf = testbed_model(5, 77);
        let acc = evaluate(&clf, &out, 25);
        assert!(acc.self_total >= 20, "self_total {}", acc.self_total);
        assert!(
            acc.external_total >= 2,
            "external_total {}",
            acc.external_total
        );
        // Paper: self ≥ 99 %, external 75–85 %. Require the same order
        // of performance.
        assert!(
            acc.self_accuracy() >= 0.9,
            "self accuracy {}",
            acc.self_accuracy()
        );
        assert!(
            acc.external_accuracy() >= 0.7,
            "external accuracy {}",
            acc.external_accuracy()
        );
    }
}
