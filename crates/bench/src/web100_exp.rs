//! Web100-mode vs capture-mode classification — quantifying the §6
//! future-work extension implemented in `csig_core::web100_mode`.
//!
//! The paper notes packet captures are "storage and computationally
//! expensive" and suggests sampling RTTs from Web100 instead. This
//! experiment classifies every sweep flow twice — once from its trace
//! features and once from the server's kernel RTT samples at several
//! decimation strides — and reports agreement plus per-mode ground
//! truth accuracy.

use csig_core::{classify_conn_stats, SignatureClassifier};
use csig_testbed::TestResult;
use serde::{Deserialize, Serialize};

/// Agreement/accuracy of one sampling stride.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Web100Point {
    /// Keep every `stride`-th kernel RTT sample (1 = all, 8 ≈ 5 ms
    /// polling at typical rates).
    pub stride: usize,
    /// Flows classifiable in both modes.
    pub n: usize,
    /// Fraction where both modes give the same verdict.
    pub agreement: f64,
    /// Ground-truth accuracy of capture-mode verdicts.
    pub trace_accuracy: f64,
    /// Ground-truth accuracy of Web100-mode verdicts.
    pub web100_accuracy: f64,
}

/// Evaluate agreement at the given strides.
pub fn run(
    clf: &SignatureClassifier,
    results: &[TestResult],
    strides: &[usize],
) -> Vec<Web100Point> {
    strides
        .iter()
        .map(|&stride| {
            let mut n = 0usize;
            let mut agree = 0usize;
            let mut trace_right = 0usize;
            let mut web_right = 0usize;
            for r in results {
                let (Ok(f), Some(stats)) = (&r.features, &r.conn_stats) else {
                    continue;
                };
                let Ok((web_class, _)) = classify_conn_stats(clf, stats, stride) else {
                    continue;
                };
                let trace_class = clf.classify(f);
                n += 1;
                agree += usize::from(trace_class == web_class);
                trace_right += usize::from(trace_class == r.intended);
                web_right += usize::from(web_class == r.intended);
            }
            Web100Point {
                stride,
                n,
                agreement: agree as f64 / n.max(1) as f64,
                trace_accuracy: trace_right as f64 / n.max(1) as f64,
                web100_accuracy: web_right as f64 / n.max(1) as f64,
            }
        })
        .collect()
}

/// Print the comparison table.
pub fn print(points: &[Web100Point]) {
    println!("Web100-mode classification vs packet captures (§6 extension)");
    println!(
        "  {:>7} {:>5} {:>10} {:>12} {:>13}",
        "stride", "n", "agreement", "trace acc.", "web100 acc."
    );
    for p in points {
        println!(
            "  {:>7} {:>5} {:>9.0}% {:>11.0}% {:>12.0}%",
            p.stride,
            p.n,
            p.agreement * 100.0,
            p.trace_accuracy * 100.0,
            p.web100_accuracy * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispute::testbed_model;
    use csig_testbed::{small_grid, Profile, Sweep};

    #[test]
    fn web100_mode_matches_trace_mode_on_the_sweep() {
        let results = Sweep {
            grid: small_grid(),
            reps: 2,
            profile: Profile::Scaled,
            seed: 91,
        }
        .run(|_, _| {});
        let clf = testbed_model(3, 92);
        let points = run(&clf, &results, &[1, 4, 8]);
        for p in &points {
            assert!(p.n >= 20, "only {} comparable flows", p.n);
            assert!(
                p.agreement >= 0.9,
                "stride {}: agreement {}",
                p.stride,
                p.agreement
            );
            // Web100 mode must not trail trace mode by more than a few
            // points.
            assert!(p.web100_accuracy + 0.1 >= p.trace_accuracy, "{p:?}");
        }
    }
}
