//! End-to-end capture analysis: classify every eligible flow a server
//! saw.

use crate::classifier::{SignatureClassifier, Verdict};
use crate::live::LiveAnalyzer;
use csig_features::FeatureError;
use csig_netsim::{Capture, FlowId};

/// Data-quality flags attached to a [`FlowReport`]: the flow was still
/// classified (when possible), but the conditions below degrade how
/// much the verdict should be trusted. A report with no flag set came
/// from a cleanly closed, in-order flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowQuality {
    /// The record stream ended while the flow was still open — the
    /// report covers a truncated prefix of the flow.
    pub truncated: bool,
    /// The flow's FIN exchange never completed before the report was
    /// emitted (truncated and idle-evicted flows always set this).
    pub never_closed: bool,
    /// The flow was dropped by the analyzer's idle timeout
    /// ([`crate::LiveAnalyzer::with_idle_timeout`]) after producing no
    /// records for at least the timeout.
    pub idle_evicted: bool,
    /// The probe saw inbound packets out of order (packet-id or
    /// cumulative-ACK regression): RTT samples may be contaminated.
    pub reorder_suspect: bool,
    /// The flow's slow-start RTT samples were too few or degenerate
    /// (fewer than [`csig_features::MIN_SAMPLES`], or `max`/`mean` RTT
    /// of zero) to compute features: the report carries a skip, never a
    /// verdict. Set exactly when `verdict` is `Err`.
    pub insufficient_samples: bool,
}

impl FlowQuality {
    /// `true` when no degradation flag is set.
    pub fn is_clean(&self) -> bool {
        !(self.truncated
            || self.never_closed
            || self.idle_evicted
            || self.reorder_suspect
            || self.insufficient_samples)
    }
}

impl std::fmt::Display for FlowQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        let mut flags = vec![];
        if self.truncated {
            flags.push("truncated");
        }
        if self.never_closed {
            flags.push("never-closed");
        }
        if self.idle_evicted {
            flags.push("idle-evicted");
        }
        if self.reorder_suspect {
            flags.push("reorder-suspect");
        }
        if self.insufficient_samples {
            flags.push("insufficient-samples");
        }
        write!(f, "{}", flags.join("+"))
    }
}

/// Per-flow outcome of analyzing a capture.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// The flow analyzed.
    pub flow: FlowId,
    /// The verdict, or why the flow was skipped.
    pub verdict: Result<Verdict, FeatureError>,
    /// Degradation flags (see [`FlowQuality`]).
    pub quality: FlowQuality,
}

/// Classify every TCP flow in a server-side capture.
///
/// Replays the buffered capture through [`LiveAnalyzer`], so the batch
/// and streaming paths share one classification code path; reports come
/// back ordered by flow id.
pub fn analyze_capture(clf: &SignatureClassifier, cap: &Capture) -> Vec<FlowReport> {
    let mut live = LiveAnalyzer::new(clf.clone());
    for rec in &cap.records {
        live.push(rec);
    }
    live.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{ModelMeta, SignatureClassifier};
    use csig_dtree::TreeParams;
    use csig_features::CongestionClass;
    use csig_netsim::{LinkConfig, SimDuration, Simulator};
    use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};

    fn tiny_model() -> SignatureClassifier {
        // Hand-built training set with the paper's geometry.
        let mut d = csig_dtree::Dataset::new();
        for i in 0..20 {
            let x = i as f64 / 20.0;
            d.push(vec![0.6 + 0.4 * x, 0.15 + 0.2 * x], 0);
            d.push(vec![0.3 * x, 0.05 * x], 1);
        }
        SignatureClassifier::train(
            &d,
            TreeParams::default(),
            ModelMeta {
                congestion_threshold: 0.8,
                trained_on: "unit".into(),
                n_train: 40,
                n_filtered: 0,
            },
        )
    }

    #[test]
    fn analyze_simulated_capture_end_to_end() {
        // A download that fills an idle 100 ms buffer: the verdict must
        // be self-induced.
        let mut sim = Simulator::new(21);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig::default(),
            ServerSendPolicy::Fixed(4_000_000),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Once,
            77,
        )));
        sim.add_duplex_link(
            server,
            client,
            LinkConfig::new(20_000_000, SimDuration::from_millis(20)).buffer_ms(100),
        );
        sim.compute_routes();
        let cap = sim.attach_capture(server);
        sim.set_event_budget(50_000_000);
        sim.run();
        let capture = sim.take_capture(cap);

        let clf = tiny_model();
        let reports = analyze_capture(&clf, &capture);
        assert_eq!(reports.len(), 1);
        let verdict = reports[0].verdict.as_ref().expect("classifiable");
        assert_eq!(verdict.class, CongestionClass::SelfInduced);
        assert!(verdict.features.norm_diff > 0.5);
        assert!(verdict.confidence > 0.5);
    }

    #[test]
    fn empty_capture_yields_no_reports() {
        let clf = tiny_model();
        let cap = Capture::new(csig_netsim::NodeId(0));
        assert!(analyze_capture(&clf, &cap).is_empty());
    }
}
