//! The congestion-signature classifier: the paper's primary
//! contribution packaged as a library type.

use csig_dtree::{ConfusionMatrix, Dataset, DecisionTree, TreeParams};
use csig_features::{features_from_samples, CongestionClass, FeatureError, FlowFeatures};
use csig_trace::{detect_slow_start, extract_rtt_samples, FlowTrace, SlowStart};
use serde::{Deserialize, Serialize};

/// Metadata describing how a model was trained.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelMeta {
    /// Congestion threshold used to label the training data.
    pub congestion_threshold: f64,
    /// Free-form provenance ("testbed scaled sweep", "Dispute2014", …).
    pub trained_on: String,
    /// Number of labeled training samples.
    pub n_train: usize,
    /// Training samples filtered out by labeling.
    pub n_filtered: usize,
}

/// A trained classifier that maps slow-start RTT features to a
/// [`CongestionClass`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignatureClassifier {
    tree: DecisionTree,
    /// Provenance and labeling parameters.
    pub meta: ModelMeta,
}

/// A complete per-flow diagnosis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Verdict {
    /// The predicted congestion class.
    pub class: CongestionClass,
    /// Leaf purity for the predicted class (a confidence proxy).
    pub confidence: f64,
    /// The features the verdict was based on.
    pub features: FlowFeatures,
    /// The slow-start window the features were computed over.
    pub slow_start: SlowStart,
}

impl SignatureClassifier {
    /// Train on an already-labeled dataset (class indices per
    /// [`CongestionClass::index`]).
    ///
    /// # Panics
    /// Panics if the dataset is empty or not two-dimensional.
    pub fn train(data: &Dataset, params: TreeParams, meta: ModelMeta) -> Self {
        assert!(!data.is_empty(), "empty training set");
        assert_eq!(data.dim(), 2, "expected [NormDiff, CoV] features");
        SignatureClassifier {
            tree: DecisionTree::fit(data, params),
            meta,
        }
    }

    /// Classify a feature vector.
    pub fn classify(&self, features: &FlowFeatures) -> CongestionClass {
        CongestionClass::from_index(self.tree.predict(&features.as_vector()))
    }

    /// Classify with a confidence proxy (training purity of the
    /// reached leaf for the predicted class).
    pub fn classify_with_confidence(&self, features: &FlowFeatures) -> (CongestionClass, f64) {
        let proba = self.tree.predict_proba(&features.as_vector());
        let class = self.classify(features);
        (class, proba[class.index()])
    }

    /// Full pipeline on a server-side flow trace: RTT extraction,
    /// slow-start windowing, feature computation, classification.
    pub fn classify_trace(&self, trace: &FlowTrace) -> Result<Verdict, FeatureError> {
        let samples = extract_rtt_samples(trace);
        let slow_start = detect_slow_start(trace);
        let features = features_from_samples(&samples, &slow_start)?;
        let (class, confidence) = self.classify_with_confidence(&features);
        Ok(Verdict {
            class,
            confidence,
            features,
            slow_start,
        })
    }

    /// Evaluate on a labeled dataset.
    pub fn evaluate(&self, test: &Dataset) -> ConfusionMatrix {
        csig_dtree::evaluate(&self.tree, test)
    }

    /// The underlying decision tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Human-readable rendering of the learned rules.
    pub fn render(&self) -> String {
        self.tree.render(&["NormDiff", "CoV"])
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        match serde_json::to_string_pretty(self) {
            Ok(s) => s,
            Err(e) => unreachable!("model serialization cannot fail: {e}"),
        }
    }

    /// Load from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A synthetic dataset with the paper's geometry: self-induced
    /// flows have high NormDiff/CoV, external flows low.
    pub(crate) fn synthetic_dataset(n: usize, seed: u64) -> Dataset {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let nd: f64 = 0.6 + rng.gen::<f64>() * 0.35;
            let cov: f64 = 0.15 + rng.gen::<f64>() * 0.3;
            d.push(vec![nd, cov], CongestionClass::SelfInduced.index());
            let nd: f64 = rng.gen::<f64>() * 0.3;
            let cov: f64 = rng.gen::<f64>() * 0.08;
            d.push(vec![nd, cov], CongestionClass::External.index());
        }
        d
    }

    fn meta() -> ModelMeta {
        ModelMeta {
            congestion_threshold: 0.8,
            trained_on: "synthetic".into(),
            n_train: 0,
            n_filtered: 0,
        }
    }

    #[test]
    fn classifies_synthetic_geometry() {
        let data = synthetic_dataset(200, 5);
        let clf = SignatureClassifier::train(&data, TreeParams::default(), meta());
        let hi = FlowFeatures {
            norm_diff: 0.8,
            cov: 0.3,
            samples: 20,
            min_rtt_ms: 20.0,
            max_rtt_ms: 120.0,
        };
        assert_eq!(clf.classify(&hi), CongestionClass::SelfInduced);
        let lo = FlowFeatures {
            norm_diff: 0.05,
            cov: 0.02,
            samples: 20,
            min_rtt_ms: 80.0,
            max_rtt_ms: 85.0,
        };
        assert_eq!(clf.classify(&lo), CongestionClass::External);
        let (_, conf) = clf.classify_with_confidence(&hi);
        assert!(conf > 0.9, "confidence {conf}");
    }

    #[test]
    fn evaluation_on_heldout_is_accurate() {
        let data = synthetic_dataset(300, 7);
        let (train, test) = data.train_test_split(0.7, 1);
        let clf = SignatureClassifier::train(&train, TreeParams::default(), meta());
        let cm = clf.evaluate(&test);
        assert!(cm.accuracy() > 0.95, "accuracy {}", cm.accuracy());
    }

    #[test]
    fn json_roundtrip() {
        let data = synthetic_dataset(50, 9);
        let clf = SignatureClassifier::train(&data, TreeParams::default(), meta());
        let json = clf.to_json();
        let back = SignatureClassifier::from_json(&json).unwrap();
        let f = FlowFeatures {
            norm_diff: 0.7,
            cov: 0.25,
            samples: 15,
            min_rtt_ms: 20.0,
            max_rtt_ms: 70.0,
        };
        assert_eq!(clf.classify(&f), back.classify(&f));
        assert_eq!(back.meta.trained_on, "synthetic");
    }

    #[test]
    fn render_mentions_feature_names() {
        let data = synthetic_dataset(50, 11);
        let clf = SignatureClassifier::train(&data, TreeParams::default(), meta());
        let s = clf.render();
        assert!(s.contains("NormDiff") || s.contains("CoV"), "{s}");
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_rejected() {
        let mut d = Dataset::new();
        d.push(vec![1.0], 0);
        let _ = SignatureClassifier::train(&d, TreeParams::default(), meta());
    }
}
