//! # csig-core — TCP congestion signatures
//!
//! The primary contribution of *"TCP Congestion Signatures"* (IMC
//! 2017): a server-side, per-flow classifier that distinguishes
//! **self-induced** congestion (the flow filled an idle bottleneck —
//! typically the subscriber's access link) from **external** congestion
//! (the flow started behind an already congested link — typically an
//! interconnect), using only two statistics of the flow's RTT during
//! TCP slow start:
//!
//! * `NormDiff = (max RTT − min RTT) / max RTT`
//! * `CoV = stddev(RTT) / mean(RTT)`
//!
//! ## Pipeline
//!
//! ```text
//! capture (csig-netsim) → RTT samples + slow-start window (csig-trace)
//!   → NormDiff/CoV (csig-features) → decision tree (csig-dtree)
//!   → CongestionClass
//! ```
//!
//! [`SignatureClassifier`] wraps the whole pipeline; [`training`]
//! builds models from testbed sweeps with the paper's
//! congestion-threshold labeling; [`analysis`] applies a model to every
//! flow of a capture. The same pipeline runs online: [`LiveAnalyzer`]
//! is a packet sink that classifies each flow the moment it closes,
//! retaining only bounded per-flow state, and [`analyze_capture`]
//! replays buffered captures through it so both paths share one code
//! path and produce identical reports.
//!
//! ## Example
//!
//! ```
//! use csig_core::{SignatureClassifier, ModelMeta};
//! use csig_dtree::{Dataset, TreeParams};
//! use csig_features::CongestionClass;
//!
//! // Train on labeled [NormDiff, CoV] vectors…
//! let mut data = Dataset::new();
//! for i in 0..20 {
//!     let x = i as f64 / 20.0;
//!     data.push(vec![0.7 + 0.3 * x, 0.2 + 0.1 * x], CongestionClass::SelfInduced.index());
//!     data.push(vec![0.2 * x, 0.05 * x], CongestionClass::External.index());
//! }
//! let meta = ModelMeta {
//!     congestion_threshold: 0.8,
//!     trained_on: "docs".into(),
//!     n_train: data.len(),
//!     n_filtered: 0,
//! };
//! let clf = SignatureClassifier::train(&data, TreeParams::default(), meta);
//! // …then classify any flow's features.
//! let features = csig_features::features_from_rtts_ms(
//!     &[40.0, 48.0, 55.0, 64.0, 75.0, 88.0, 99.0, 112.0, 124.0, 135.0],
//! ).unwrap();
//! assert_eq!(clf.classify(&features), CongestionClass::SelfInduced);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod classifier;
pub mod live;
pub mod training;
pub mod web100_mode;

pub use analysis::{analyze_capture, FlowQuality, FlowReport};
pub use classifier::{ModelMeta, SignatureClassifier, Verdict};
pub use live::{cross_check_reports, CrossCheckError, LiveAnalyzer};
pub use training::{
    dataset_at_threshold, ground_truth_accuracy, threshold_point, threshold_sweep,
    train_from_results, train_sweep, train_sweep_with, GroundTruthAccuracy, ThresholdPoint,
};
pub use web100_mode::{classify_conn_stats, features_from_stats, slow_start_rtts_ms};

#[cfg(test)]
mod integration_tests {
    //! The headline result, end to end: train on a small testbed sweep
    //! and classify held-out testbed runs with high accuracy.

    use super::*;
    use csig_dtree::TreeParams;
    use csig_testbed::{AccessParams, Profile, Sweep};

    fn small_sweep(seed: u64, reps: u32) -> Vec<csig_testbed::TestResult> {
        let grid = vec![
            AccessParams {
                rate_mbps: 10,
                loss_pct: 0.02,
                latency_ms: 20,
                buffer_ms: 50,
            },
            AccessParams {
                rate_mbps: 20,
                loss_pct: 0.0,
                latency_ms: 20,
                buffer_ms: 100,
            },
            AccessParams {
                rate_mbps: 50,
                loss_pct: 0.02,
                latency_ms: 40,
                buffer_ms: 50,
            },
        ];
        Sweep {
            grid,
            reps,
            profile: Profile::Scaled,
            seed,
        }
        .run(|_, _| {})
    }

    #[test]
    fn testbed_trained_model_classifies_heldout_runs() {
        let train_results = small_sweep(1000, 5);
        let clf = train_from_results(&train_results, 0.7, TreeParams::default())
            .expect("trainable sweep");
        // Fresh runs with different seeds.
        let test_results = small_sweep(2000, 3);
        let acc = ground_truth_accuracy(&clf, &test_results);
        // Some external runs legitimately fail the 10-sample minimum
        // (first window lost into a pegged buffer) — the paper filters
        // those too — so require most, not all, to be classifiable.
        assert!(acc.n_self >= 7, "n_self {}", acc.n_self);
        assert!(acc.n_external >= 5, "n_external {}", acc.n_external);
        // The paper's held-out accuracy band is ~90 % (testbed) and
        // 75–85 % (external, real world); at unit-test sample sizes one
        // borderline flow moves the rate by >10 points, so the bounds
        // are set one miss looser.
        assert!(
            acc.self_accuracy >= 0.75,
            "self accuracy {} (n={})",
            acc.self_accuracy,
            acc.n_self
        );
        assert!(
            acc.external_accuracy >= 0.6,
            "external accuracy {} (n={})",
            acc.external_accuracy,
            acc.n_external
        );
    }
}
