//! Streaming capture analysis: classify flows the moment they close.
//!
//! [`LiveAnalyzer`] is the online equivalent of
//! [`analyze_capture`](crate::analysis::analyze_capture): attached as a
//! [`PacketSink`] (or fed records by hand) it demultiplexes the packet
//! stream to one [`FlowProbe`] per flow, watches each flow's FIN
//! exchange, and emits a [`FlowReport`] as soon as the flow completes —
//! no capture buffer, no post-processing pass. State is bounded: one
//! probe per *open* flow plus a tombstone per closed flow id (flow ids
//! are never reused by the simulator, so a tombstone is one integer in
//! a set, not retained packet data).
//!
//! The batch path replays a buffered capture through this same type,
//! so both paths produce identical reports by construction.

use crate::analysis::{FlowQuality, FlowReport};
use crate::classifier::{SignatureClassifier, Verdict};
use csig_features::FlowProbe;
use csig_netsim::{Direction, FlowId, PacketRecord, PacketSink, SimDuration, SimTime};
use csig_obs::{Counter, Histogram, MetricsRegistry, TraceBuffer, TraceEvent};
use csig_trace::OffsetTracker;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Metric handles the analyzer updates as flows complete.
#[derive(Debug, Clone)]
struct LiveObs {
    /// `flows.verdicts` — flows that produced a classification.
    verdicts: Counter,
    /// `flows.skips_insufficient` — flows skipped for too-few or
    /// degenerate RTT samples.
    skips: Counter,
    /// `flows.evicted` — flows dropped by the idle timeout.
    evicted: Counter,
    /// `flows.truncated` — flows still open when the stream ended.
    truncated: Counter,
    /// `rtt.samples` — RTT samples accumulated across reported flows.
    rtt_samples: Counter,
    /// `time.inference_us` — wall-clock tree-inference time.
    inference: Histogram,
}

impl LiveObs {
    fn register(reg: &MetricsRegistry) -> Self {
        LiveObs {
            verdicts: reg.counter("flows.verdicts"),
            skips: reg.counter("flows.skips_insufficient"),
            evicted: reg.counter("flows.evicted"),
            truncated: reg.counter("flows.truncated"),
            rtt_samples: reg.counter("rtt.samples"),
            inference: reg.timer("time.inference_us"),
        }
    }
}

/// Watches one flow's FIN exchange from the server-side tap.
///
/// A download flow is complete when the tap node's FIN has been
/// cumulatively acknowledged *and* the remote side has sent its own
/// FIN. Records after that point cannot change the flow's verdict (all
/// data is acked, the ack accountant is capped at the FIN, and pure
/// ACKs/RSTs carry no payload), so the analyzer stops tracking the
/// flow.
#[derive(Debug, Clone, Default)]
struct FinWatcher {
    tracker: Option<OffsetTracker>,
    fin_end: Option<u64>,
    in_fin: bool,
    fin_acked: bool,
}

impl FinWatcher {
    fn push(&mut self, rec: &PacketRecord) {
        let Some(h) = rec.pkt.tcp() else { return };
        match rec.dir {
            Direction::Out => {
                if h.flags.syn() {
                    if self.tracker.is_none() {
                        self.tracker = Some(OffsetTracker::new(h.seq));
                    }
                    return;
                }
                if h.payload_len == 0 && !h.flags.fin() {
                    return;
                }
                let tr = self
                    .tracker
                    .get_or_insert_with(|| OffsetTracker::new(h.seq.wrapping_sub(1)));
                let start = tr.offset(h.seq);
                if h.flags.fin() {
                    // The FIN occupies one sequence slot after the payload.
                    self.fin_end = Some(start + h.payload_len as u64 + 1);
                }
            }
            Direction::In => {
                if h.flags.fin() {
                    self.in_fin = true;
                }
                if !h.flags.ack() {
                    return;
                }
                let (Some(tr), Some(fin_end)) = (self.tracker.as_ref(), self.fin_end) else {
                    return;
                };
                let ack_off = csig_tcp::seq::offset_of(tr.base().wrapping_add(1), h.ack, fin_end);
                if ack_off >= fin_end {
                    self.fin_acked = true;
                }
            }
        }
    }

    fn closed(&self) -> bool {
        self.in_fin && self.fin_acked
    }
}

#[derive(Debug, Clone)]
struct LiveFlow {
    probe: FlowProbe,
    fin: FinWatcher,
    /// Timestamp of the flow's most recent record (for idle eviction).
    last_seen: SimTime,
}

/// Streaming equivalent of [`analyze_capture`](crate::analyze_capture):
/// classifies every flow of a packet stream, emitting each verdict the
/// moment the flow's FIN exchange completes.
///
/// ```
/// # use csig_core::{LiveAnalyzer, SignatureClassifier, ModelMeta};
/// # use csig_dtree::{Dataset, TreeParams};
/// # use csig_features::CongestionClass;
/// # let mut data = Dataset::new();
/// # for i in 0..20 {
/// #     let x = i as f64 / 20.0;
/// #     data.push(vec![0.7 + 0.3 * x, 0.2 + 0.1 * x], CongestionClass::SelfInduced.index());
/// #     data.push(vec![0.2 * x, 0.05 * x], CongestionClass::External.index());
/// # }
/// # let meta = ModelMeta {
/// #     congestion_threshold: 0.8,
/// #     trained_on: "docs".into(),
/// #     n_train: data.len(),
/// #     n_filtered: 0,
/// # };
/// # let clf = SignatureClassifier::train(&data, TreeParams::default(), meta);
/// let mut live = LiveAnalyzer::new(clf);
/// // … feed records as they are captured: live.push(&record) …
/// let reports = live.finish(); // flows still open are classified too
/// assert!(reports.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LiveAnalyzer {
    clf: SignatureClassifier,
    flows: BTreeMap<FlowId, LiveFlow>,
    closed: BTreeSet<FlowId>,
    done: Vec<FlowReport>,
    idle_timeout: Option<SimDuration>,
    last_sweep: SimTime,
    obs: Option<LiveObs>,
    trace: Option<TraceBuffer>,
    /// Stream time of the most recent record, stamped onto reports of
    /// flows closed at [`LiveAnalyzer::finish`] time.
    last_record_at: SimTime,
}

impl LiveAnalyzer {
    /// An analyzer classifying with `clf`; flows are tracked until they
    /// close or the stream ends (no idle eviction).
    pub fn new(clf: SignatureClassifier) -> Self {
        LiveAnalyzer {
            clf,
            flows: BTreeMap::new(),
            closed: BTreeSet::new(),
            done: Vec::new(),
            idle_timeout: None,
            last_sweep: SimTime::ZERO,
            obs: None,
            trace: None,
            last_record_at: SimTime::ZERO,
        }
    }

    /// Builder: register the analyzer's counters (`flows.verdicts`,
    /// `flows.skips_insufficient`, `flows.evicted`, `flows.truncated`,
    /// `rtt.samples`) and the `time.inference_us` profiling timer into
    /// `reg`, updating them as flows complete.
    #[must_use]
    pub fn with_metrics(mut self, reg: &MetricsRegistry) -> Self {
        self.obs = Some(LiveObs::register(reg));
        self
    }

    /// Builder: emit structured trace events (scope `"live"`) — one per
    /// verdict, skip, or eviction — into `buf`.
    #[must_use]
    pub fn with_trace(mut self, buf: TraceBuffer) -> Self {
        self.trace = Some(buf);
        self
    }

    /// Builder: evict flows that produce no records for at least
    /// `timeout` of *record* time (never wall clock, so eviction is
    /// deterministic). An evicted flow is reported immediately with
    /// [`FlowQuality::idle_evicted`] (and `never_closed`) set rather
    /// than holding state until [`LiveAnalyzer::finish`] — the fate of
    /// flows whose FIN is lost or that simply die. The sweep runs once
    /// per `timeout` of stream time, so eviction happens between one
    /// and two timeouts after a flow's last record.
    ///
    /// # Panics
    /// Panics if `timeout` is zero.
    pub fn with_idle_timeout(mut self, timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero(), "idle timeout must be positive");
        self.idle_timeout = Some(timeout);
        self
    }

    /// Consume one record, routing it to its flow's probe. If this
    /// record completes the flow's FIN exchange, the flow's report is
    /// queued (see [`LiveAnalyzer::drain_completed`]) and its state
    /// dropped. With an idle timeout configured, flows that have been
    /// silent too long are evicted and reported as degraded.
    pub fn push(&mut self, rec: &PacketRecord) {
        let flow = rec.pkt.flow;
        self.last_record_at = rec.time;
        if !self.closed.contains(&flow) {
            let lf = self.flows.entry(flow).or_insert_with(|| LiveFlow {
                probe: FlowProbe::new(flow),
                fin: FinWatcher::default(),
                last_seen: rec.time,
            });
            lf.last_seen = rec.time;
            lf.probe.push(rec);
            lf.fin.push(rec);
            if lf.fin.closed() {
                if let Some(lf) = self.flows.remove(&flow) {
                    self.closed.insert(flow);
                    let quality = FlowQuality {
                        reorder_suspect: lf.probe.reorder_suspect(),
                        ..FlowQuality::default()
                    };
                    self.emit(&lf.probe, quality, rec.time);
                }
            }
        }
        if let Some(timeout) = self.idle_timeout {
            if rec.time.saturating_since(self.last_sweep) >= timeout {
                self.last_sweep = rec.time;
                self.evict_idle(rec.time, timeout);
            }
        }
    }

    /// Evict (and report) every open flow idle for at least `timeout`
    /// as of `now`.
    fn evict_idle(&mut self, now: SimTime, timeout: SimDuration) {
        let expired: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, lf)| now.saturating_since(lf.last_seen) >= timeout)
            .map(|(flow, _)| *flow)
            .collect();
        for flow in expired {
            if let Some(lf) = self.flows.remove(&flow) {
                self.closed.insert(flow);
                let quality = FlowQuality {
                    idle_evicted: true,
                    never_closed: true,
                    reorder_suspect: lf.probe.reorder_suspect(),
                    ..FlowQuality::default()
                };
                self.emit(&lf.probe, quality, now);
            }
        }
    }

    /// Build one flow's report (see [`report_for`]), update the metric
    /// counters and trace ring if attached, and queue it for draining.
    fn emit(&mut self, probe: &FlowProbe, quality: FlowQuality, at: SimTime) {
        let report = {
            // Time the whole classify path (features + tree walk);
            // recorded only when a registry is attached.
            let _timer = self.obs.as_ref().map(|o| o.inference.start_timer());
            report_for(&self.clf, probe, quality)
        };
        if let Some(obs) = &self.obs {
            obs.rtt_samples.add(probe.samples_total() as u64);
            if report.verdict.is_ok() {
                obs.verdicts.inc();
            } else {
                obs.skips.inc();
            }
            if report.quality.idle_evicted {
                obs.evicted.inc();
            }
            if report.quality.truncated {
                obs.truncated.inc();
            }
        }
        if let Some(trace) = &self.trace {
            let event = match &report.verdict {
                Ok(v) => TraceEvent::new(at.as_nanos(), "live", "verdict")
                    .field("flow", u64::from(report.flow.0))
                    .field("class", v.class.label())
                    .field("confidence", v.confidence),
                Err(e) => TraceEvent::new(at.as_nanos(), "live", "skip")
                    .field("flow", u64::from(report.flow.0))
                    .field("quality", report.quality.to_string())
                    .field("reason", e.to_string()),
            };
            trace.push(event);
        }
        self.done.push(report);
    }

    /// Number of flows still being tracked.
    pub fn open_flows(&self) -> usize {
        self.flows.len()
    }

    /// Reports of flows that have closed and not been drained yet.
    pub fn completed(&self) -> &[FlowReport] {
        &self.done
    }

    /// Take the reports of flows that closed since the last drain.
    pub fn drain_completed(&mut self) -> Vec<FlowReport> {
        std::mem::take(&mut self.done)
    }

    /// Classify any still-open flows and return all undrained reports,
    /// ordered by flow id (the order
    /// [`analyze_capture`](crate::analyze_capture) reports in). Flows
    /// still open here never completed their FIN exchange, so their
    /// reports carry [`FlowQuality::truncated`] and `never_closed`.
    pub fn finish(mut self) -> Vec<FlowReport> {
        let at = self.last_record_at;
        for (_, lf) in std::mem::take(&mut self.flows) {
            let quality = FlowQuality {
                truncated: true,
                never_closed: true,
                reorder_suspect: lf.probe.reorder_suspect(),
                ..FlowQuality::default()
            };
            self.emit(&lf.probe, quality, at);
        }
        self.done.sort_by_key(|r| r.flow);
        self.done
    }
}

impl PacketSink for LiveAnalyzer {
    fn on_record(&mut self, rec: &PacketRecord) {
        self.push(rec);
    }
}

/// Classify one probe's accumulated state — the streaming mirror of
/// [`SignatureClassifier::classify_trace`]. Flows whose features cannot
/// be computed get [`FlowQuality::insufficient_samples`] set alongside
/// the `Err` verdict, so quality flags and verdicts never disagree.
fn report_for(
    clf: &SignatureClassifier,
    probe: &FlowProbe,
    mut quality: FlowQuality,
) -> FlowReport {
    let verdict = probe.features().map(|features| {
        let (class, confidence) = clf.classify_with_confidence(&features);
        Verdict {
            class,
            confidence,
            features,
            slow_start: probe.slow_start(),
        }
    });
    quality.insufficient_samples = verdict.is_err();
    FlowReport {
        flow: probe.flow(),
        verdict,
        quality,
    }
}

/// Why two report sets (streaming vs batch) disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossCheckError {
    /// Different number of reports.
    CountMismatch {
        /// Reports on the live side.
        live: usize,
        /// Reports on the batch side.
        batch: usize,
    },
    /// Same position, different flow id.
    FlowMismatch {
        /// Position in the (flow-ordered) report vectors.
        index: usize,
        /// Flow id on the live side.
        live: FlowId,
        /// Flow id on the batch side.
        batch: FlowId,
    },
    /// Same flow, different verdict or quality.
    VerdictMismatch {
        /// The flow whose reports disagree.
        flow: FlowId,
        /// Debug rendering of the live report.
        live: String,
        /// Debug rendering of the batch report.
        batch: String,
    },
}

impl fmt::Display for CrossCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossCheckError::CountMismatch { live, batch } => {
                write!(f, "report count mismatch: live {live} vs batch {batch}")
            }
            CrossCheckError::FlowMismatch { index, live, batch } => {
                write!(f, "flow mismatch at {index}: live {live} vs batch {batch}")
            }
            CrossCheckError::VerdictMismatch { flow, live, batch } => {
                write!(
                    f,
                    "verdict mismatch for {flow}: live {live} vs batch {batch}"
                )
            }
        }
    }
}

impl std::error::Error for CrossCheckError {}

/// Verify that a streaming report set and a batch report set are
/// equivalent: same flows in the same order, bit-identical verdicts
/// (class, confidence, features, slow-start window) and equal quality
/// flags. Returns a typed error describing the first divergence — the
/// streaming==batch invariant check, usable by library consumers and
/// harnesses without aborting the process.
pub fn cross_check_reports(
    live: &[FlowReport],
    batch: &[FlowReport],
) -> Result<(), CrossCheckError> {
    if live.len() != batch.len() {
        return Err(CrossCheckError::CountMismatch {
            live: live.len(),
            batch: batch.len(),
        });
    }
    for (index, (l, b)) in live.iter().zip(batch).enumerate() {
        if l.flow != b.flow {
            return Err(CrossCheckError::FlowMismatch {
                index,
                live: l.flow,
                batch: b.flow,
            });
        }
        let verdicts_match = match (&l.verdict, &b.verdict) {
            (Ok(lv), Ok(bv)) => {
                lv.class == bv.class
                    && lv.confidence == bv.confidence
                    && lv.features == bv.features
                    && lv.slow_start == bv.slow_start
            }
            (Err(le), Err(be)) => le == be,
            _ => false,
        };
        if !verdicts_match || l.quality != b.quality {
            return Err(CrossCheckError::VerdictMismatch {
                flow: l.flow,
                live: format!("{l:?}"),
                batch: format!("{b:?}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_capture;
    use crate::classifier::{ModelMeta, SignatureClassifier};
    use csig_dtree::TreeParams;
    use csig_netsim::{LinkConfig, SimDuration, Simulator};
    use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};

    fn tiny_model() -> SignatureClassifier {
        let mut d = csig_dtree::Dataset::new();
        for i in 0..20 {
            let x = i as f64 / 20.0;
            d.push(vec![0.6 + 0.4 * x, 0.15 + 0.2 * x], 0);
            d.push(vec![0.3 * x, 0.05 * x], 1);
        }
        SignatureClassifier::train(
            &d,
            TreeParams::default(),
            ModelMeta {
                congestion_threshold: 0.8,
                trained_on: "unit".into(),
                n_train: 40,
                n_filtered: 0,
            },
        )
    }

    /// One simulation, two taps on the server: a buffering capture and
    /// a live analyzer. The live verdicts must match the batch pipeline
    /// report for report.
    #[test]
    fn live_matches_batch_on_simulated_run() {
        let clf = tiny_model();
        let mut sim = Simulator::new(21);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig::default(),
            ServerSendPolicy::Fixed(4_000_000),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Once,
            77,
        )));
        sim.add_duplex_link(
            server,
            client,
            LinkConfig::new(20_000_000, SimDuration::from_millis(20)).buffer_ms(100),
        );
        sim.compute_routes();
        let cap = sim.attach_capture(server);
        let live_h = sim.attach_sink(server, Box::new(LiveAnalyzer::new(clf.clone())));
        sim.set_event_budget(50_000_000);
        sim.run();

        let live: &LiveAnalyzer = sim.sink(live_h).expect("live analyzer tap");
        // The download completes inside the run: the verdict streamed
        // out before the simulation even ended.
        assert_eq!(live.completed().len(), 1);
        assert_eq!(live.open_flows(), 0);

        let live_reports = live.clone().finish();
        let capture = sim.take_capture(cap);
        let batch_reports = analyze_capture(&clf, &capture);
        // The typed cross-check surfaces any divergence as an error
        // value instead of a process abort.
        assert_eq!(cross_check_reports(&live_reports, &batch_reports), Ok(()));
        assert!(
            live_reports.iter().all(|r| r.quality.is_clean()),
            "cleanly closed flows carry no degradation flags: {:?}",
            live_reports.iter().map(|r| r.quality).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cross_check_reports_divergence_as_typed_error() {
        use crate::analysis::FlowQuality;
        let clean = FlowReport {
            flow: FlowId(1),
            verdict: Err(csig_features::FeatureError::TooFewSamples { got: 0 }),
            quality: FlowQuality::default(),
        };
        let mut degraded = clean.clone();
        degraded.quality.truncated = true;
        match cross_check_reports(std::slice::from_ref(&clean), &[degraded]) {
            Err(CrossCheckError::VerdictMismatch { flow, .. }) => assert_eq!(flow, FlowId(1)),
            other => panic!("expected a verdict mismatch, got {other:?}"),
        }
        assert_eq!(
            cross_check_reports(&[clean], &[]),
            Err(CrossCheckError::CountMismatch { live: 1, batch: 0 })
        );
    }

    #[test]
    fn empty_stream_yields_no_reports() {
        let live = LiveAnalyzer::new(tiny_model());
        assert_eq!(live.open_flows(), 0);
        assert!(live.finish().is_empty());
    }

    fn bare_record(flow: u32, t: SimTime) -> PacketRecord {
        use csig_netsim::{NodeId, Packet, PacketId, PacketKind, TcpFlags, TcpHeader, NO_SACK};
        PacketRecord {
            time: t,
            dir: Direction::Out,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(flow),
                src: NodeId(0),
                dst: NodeId(1),
                size: 1052,
                sent_at: t,
                kind: PacketKind::Tcp(TcpHeader {
                    seq: 1,
                    ack: 0,
                    flags: TcpFlags::ACK,
                    payload_len: 1000,
                    window: 65535,
                    sack: NO_SACK,
                }),
            },
        }
    }

    #[test]
    fn idle_flows_are_evicted_with_quality_flags() {
        let mut live = LiveAnalyzer::new(tiny_model()).with_idle_timeout(SimDuration::from_secs(5));
        // Flow 1 goes quiet at t=1s; flow 2 keeps talking.
        live.push(&bare_record(1, SimTime::from_secs(1)));
        for s in 1..=20 {
            live.push(&bare_record(2, SimTime::from_secs(s)));
        }
        assert_eq!(live.open_flows(), 1, "idle flow evicted, live flow kept");
        let evicted = live.drain_completed();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].flow, FlowId(1));
        assert!(evicted[0].quality.idle_evicted);
        assert!(evicted[0].quality.never_closed);
        assert!(!evicted[0].quality.truncated);
        // Late records of the evicted flow are ignored, not revived.
        live.push(&bare_record(1, SimTime::from_secs(21)));
        assert_eq!(live.open_flows(), 1);
        // The still-open flow is truncated when the stream ends.
        let rest = live.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].flow, FlowId(2));
        assert!(rest[0].quality.truncated && rest[0].quality.never_closed);
        assert!(!rest[0].quality.idle_evicted);
    }

    #[test]
    fn short_flows_are_skipped_with_insufficient_samples_and_counted() {
        let reg = MetricsRegistry::new();
        let trace = TraceBuffer::with_capacity(16);
        let mut live = LiveAnalyzer::new(tiny_model())
            .with_metrics(&reg)
            .with_trace(trace.clone());
        // One bare data record: far below MIN_SAMPLES, never closes.
        live.push(&bare_record(7, SimTime::from_secs(1)));
        let reports = live.finish();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].verdict.is_err(), "no verdict for a short flow");
        assert!(reports[0].quality.insufficient_samples);
        assert!(!reports[0].quality.is_clean());
        assert!(reports[0].quality.to_string().contains("insufficient"));

        let snap = reg.snapshot();
        assert_eq!(snap.counter("flows.verdicts"), Some(0));
        assert_eq!(snap.counter("flows.skips_insufficient"), Some(1));
        assert_eq!(snap.counter("flows.truncated"), Some(1));
        let events = trace.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].scope, "live");
        assert_eq!(events[0].kind, "skip");
    }

    #[test]
    fn without_timeout_no_eviction_happens() {
        let mut live = LiveAnalyzer::new(tiny_model());
        live.push(&bare_record(1, SimTime::from_secs(1)));
        live.push(&bare_record(2, SimTime::from_secs(500)));
        assert_eq!(live.open_flows(), 2);
        assert!(live.completed().is_empty());
    }
}
