//! Streaming capture analysis: classify flows the moment they close.
//!
//! [`LiveAnalyzer`] is the online equivalent of
//! [`analyze_capture`](crate::analysis::analyze_capture): attached as a
//! [`PacketSink`] (or fed records by hand) it demultiplexes the packet
//! stream to one [`FlowProbe`] per flow, watches each flow's FIN
//! exchange, and emits a [`FlowReport`] as soon as the flow completes —
//! no capture buffer, no post-processing pass. State is bounded: one
//! probe per *open* flow plus a tombstone per closed flow id (flow ids
//! are never reused by the simulator, so a tombstone is one integer in
//! a set, not retained packet data).
//!
//! The batch path replays a buffered capture through this same type,
//! so both paths produce identical reports by construction.

use crate::analysis::FlowReport;
use crate::classifier::{SignatureClassifier, Verdict};
use csig_features::FlowProbe;
use csig_netsim::{Direction, FlowId, PacketRecord, PacketSink};
use csig_trace::OffsetTracker;
use std::collections::{BTreeMap, BTreeSet};

/// Watches one flow's FIN exchange from the server-side tap.
///
/// A download flow is complete when the tap node's FIN has been
/// cumulatively acknowledged *and* the remote side has sent its own
/// FIN. Records after that point cannot change the flow's verdict (all
/// data is acked, the ack accountant is capped at the FIN, and pure
/// ACKs/RSTs carry no payload), so the analyzer stops tracking the
/// flow.
#[derive(Debug, Clone, Default)]
struct FinWatcher {
    tracker: Option<OffsetTracker>,
    fin_end: Option<u64>,
    in_fin: bool,
    fin_acked: bool,
}

impl FinWatcher {
    fn push(&mut self, rec: &PacketRecord) {
        let Some(h) = rec.pkt.tcp() else { return };
        match rec.dir {
            Direction::Out => {
                if h.flags.syn() {
                    if self.tracker.is_none() {
                        self.tracker = Some(OffsetTracker::new(h.seq));
                    }
                    return;
                }
                if h.payload_len == 0 && !h.flags.fin() {
                    return;
                }
                let tr = self
                    .tracker
                    .get_or_insert_with(|| OffsetTracker::new(h.seq.wrapping_sub(1)));
                let start = tr.offset(h.seq);
                if h.flags.fin() {
                    // The FIN occupies one sequence slot after the payload.
                    self.fin_end = Some(start + h.payload_len as u64 + 1);
                }
            }
            Direction::In => {
                if h.flags.fin() {
                    self.in_fin = true;
                }
                if !h.flags.ack() {
                    return;
                }
                let (Some(tr), Some(fin_end)) = (self.tracker.as_ref(), self.fin_end) else {
                    return;
                };
                let ack_off = csig_tcp::seq::offset_of(tr.base().wrapping_add(1), h.ack, fin_end);
                if ack_off >= fin_end {
                    self.fin_acked = true;
                }
            }
        }
    }

    fn closed(&self) -> bool {
        self.in_fin && self.fin_acked
    }
}

#[derive(Debug, Clone)]
struct LiveFlow {
    probe: FlowProbe,
    fin: FinWatcher,
}

/// Streaming equivalent of [`analyze_capture`](crate::analyze_capture):
/// classifies every flow of a packet stream, emitting each verdict the
/// moment the flow's FIN exchange completes.
///
/// ```
/// # use csig_core::{LiveAnalyzer, SignatureClassifier, ModelMeta};
/// # use csig_dtree::{Dataset, TreeParams};
/// # use csig_features::CongestionClass;
/// # let mut data = Dataset::new();
/// # for i in 0..20 {
/// #     let x = i as f64 / 20.0;
/// #     data.push(vec![0.7 + 0.3 * x, 0.2 + 0.1 * x], CongestionClass::SelfInduced.index());
/// #     data.push(vec![0.2 * x, 0.05 * x], CongestionClass::External.index());
/// # }
/// # let meta = ModelMeta {
/// #     congestion_threshold: 0.8,
/// #     trained_on: "docs".into(),
/// #     n_train: data.len(),
/// #     n_filtered: 0,
/// # };
/// # let clf = SignatureClassifier::train(&data, TreeParams::default(), meta);
/// let mut live = LiveAnalyzer::new(clf);
/// // … feed records as they are captured: live.push(&record) …
/// let reports = live.finish(); // flows still open are classified too
/// assert!(reports.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LiveAnalyzer {
    clf: SignatureClassifier,
    flows: BTreeMap<FlowId, LiveFlow>,
    closed: BTreeSet<FlowId>,
    done: Vec<FlowReport>,
}

impl LiveAnalyzer {
    /// An analyzer classifying with `clf`.
    pub fn new(clf: SignatureClassifier) -> Self {
        LiveAnalyzer {
            clf,
            flows: BTreeMap::new(),
            closed: BTreeSet::new(),
            done: Vec::new(),
        }
    }

    /// Consume one record, routing it to its flow's probe. If this
    /// record completes the flow's FIN exchange, the flow's report is
    /// queued (see [`LiveAnalyzer::drain_completed`]) and its state
    /// dropped.
    pub fn push(&mut self, rec: &PacketRecord) {
        let flow = rec.pkt.flow;
        if self.closed.contains(&flow) {
            return;
        }
        let lf = self.flows.entry(flow).or_insert_with(|| LiveFlow {
            probe: FlowProbe::new(flow),
            fin: FinWatcher::default(),
        });
        lf.probe.push(rec);
        lf.fin.push(rec);
        if lf.fin.closed() {
            let lf = self.flows.remove(&flow).expect("just inserted");
            self.closed.insert(flow);
            self.done.push(report_for(&self.clf, &lf.probe));
        }
    }

    /// Number of flows still being tracked.
    pub fn open_flows(&self) -> usize {
        self.flows.len()
    }

    /// Reports of flows that have closed and not been drained yet.
    pub fn completed(&self) -> &[FlowReport] {
        &self.done
    }

    /// Take the reports of flows that closed since the last drain.
    pub fn drain_completed(&mut self) -> Vec<FlowReport> {
        std::mem::take(&mut self.done)
    }

    /// Classify any still-open flows and return all undrained reports,
    /// ordered by flow id (the order
    /// [`analyze_capture`](crate::analyze_capture) reports in).
    pub fn finish(mut self) -> Vec<FlowReport> {
        for (_, lf) in std::mem::take(&mut self.flows) {
            self.done.push(report_for(&self.clf, &lf.probe));
        }
        self.done.sort_by_key(|r| r.flow);
        self.done
    }
}

impl PacketSink for LiveAnalyzer {
    fn on_record(&mut self, rec: &PacketRecord) {
        self.push(rec);
    }
}

/// Classify one probe's accumulated state — the streaming mirror of
/// [`SignatureClassifier::classify_trace`].
fn report_for(clf: &SignatureClassifier, probe: &FlowProbe) -> FlowReport {
    let verdict = probe.features().map(|features| {
        let (class, confidence) = clf.classify_with_confidence(&features);
        Verdict {
            class,
            confidence,
            features,
            slow_start: probe.slow_start(),
        }
    });
    FlowReport {
        flow: probe.flow(),
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_capture;
    use crate::classifier::{ModelMeta, SignatureClassifier};
    use csig_dtree::TreeParams;
    use csig_netsim::{LinkConfig, SimDuration, Simulator};
    use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};

    fn tiny_model() -> SignatureClassifier {
        let mut d = csig_dtree::Dataset::new();
        for i in 0..20 {
            let x = i as f64 / 20.0;
            d.push(vec![0.6 + 0.4 * x, 0.15 + 0.2 * x], 0);
            d.push(vec![0.3 * x, 0.05 * x], 1);
        }
        SignatureClassifier::train(
            &d,
            TreeParams::default(),
            ModelMeta {
                congestion_threshold: 0.8,
                trained_on: "unit".into(),
                n_train: 40,
                n_filtered: 0,
            },
        )
    }

    /// One simulation, two taps on the server: a buffering capture and
    /// a live analyzer. The live verdicts must match the batch pipeline
    /// report for report.
    #[test]
    fn live_matches_batch_on_simulated_run() {
        let clf = tiny_model();
        let mut sim = Simulator::new(21);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig::default(),
            ServerSendPolicy::Fixed(4_000_000),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Once,
            77,
        )));
        sim.add_duplex_link(
            server,
            client,
            LinkConfig::new(20_000_000, SimDuration::from_millis(20)).buffer_ms(100),
        );
        sim.compute_routes();
        let cap = sim.attach_capture(server);
        let live_h = sim.attach_sink(server, Box::new(LiveAnalyzer::new(clf.clone())));
        sim.set_event_budget(50_000_000);
        sim.run();

        let live: &LiveAnalyzer = sim.sink(live_h).expect("live analyzer tap");
        // The download completes inside the run: the verdict streamed
        // out before the simulation even ended.
        assert_eq!(live.completed().len(), 1);
        assert_eq!(live.open_flows(), 0);

        let live_reports = live.clone().finish();
        let capture = sim.take_capture(cap);
        let batch_reports = analyze_capture(&clf, &capture);
        assert_eq!(live_reports.len(), batch_reports.len());
        for (l, b) in live_reports.iter().zip(&batch_reports) {
            assert_eq!(l.flow, b.flow);
            match (&l.verdict, &b.verdict) {
                (Ok(lv), Ok(bv)) => {
                    assert_eq!(lv.class, bv.class);
                    assert_eq!(lv.confidence, bv.confidence);
                    assert_eq!(lv.features, bv.features);
                    assert_eq!(lv.slow_start, bv.slow_start);
                }
                (Err(le), Err(be)) => assert_eq!(le, be),
                (l, b) => panic!("verdict mismatch: {l:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn empty_stream_yields_no_reports() {
        let live = LiveAnalyzer::new(tiny_model());
        assert_eq!(live.open_flows(), 0);
        assert!(live.finish().is_empty());
    }
}
