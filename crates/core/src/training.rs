//! Training and evaluation against testbed sweeps — the §3.2/§3.3
//! methodology.

use crate::classifier::{ModelMeta, SignatureClassifier};
use csig_dtree::{ConfusionMatrix, Dataset, TreeParams};
use csig_exec::{Executor, ProgressEvent};
use csig_features::CongestionClass;
use csig_testbed::{build_dataset, Sweep, TestResult};
use serde::{Deserialize, Serialize};

/// Train a classifier from raw testbed results, applying the paper's
/// congestion-threshold labeling. Returns `None` if labeling leaves an
/// empty or single-class dataset.
pub fn train_from_results(
    results: &[TestResult],
    threshold: f64,
    params: TreeParams,
) -> Option<SignatureClassifier> {
    let (data, filtered) = build_dataset(results, threshold);
    let populated = data.class_counts().iter().filter(|&&c| c > 0).count();
    if data.is_empty() || populated < 2 {
        return None;
    }
    let meta = ModelMeta {
        congestion_threshold: threshold,
        trained_on: "testbed sweep".into(),
        n_train: data.len(),
        n_filtered: filtered,
    };
    Some(SignatureClassifier::train(&data, params, meta))
}

/// Run a sweep's campaign on `jobs` workers and train on the results:
/// the testbed → executor → classifier path in one call. Returns the
/// raw results alongside the model (None under the usual degenerate
/// labelings) so callers can evaluate without re-running the sweep.
pub fn train_sweep<F: FnMut(ProgressEvent)>(
    sweep: &Sweep,
    threshold: f64,
    params: TreeParams,
    jobs: usize,
    progress: F,
) -> (Vec<TestResult>, Option<SignatureClassifier>) {
    train_sweep_with(sweep, threshold, params, &Executor::new(jobs), progress)
}

/// [`train_sweep`] on a caller-configured executor (worker count,
/// per-scenario deadline, …).
pub fn train_sweep_with<F: FnMut(ProgressEvent)>(
    sweep: &Sweep,
    threshold: f64,
    params: TreeParams,
    exec: &Executor,
    progress: F,
) -> (Vec<TestResult>, Option<SignatureClassifier>) {
    let results = sweep.run_with(exec, progress);
    let model = train_from_results(&results, threshold, params);
    (results, model)
}

/// Per-class precision/recall at one labeling threshold — one point of
/// the paper's Figure 3.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// The labeling threshold.
    pub threshold: f64,
    /// Precision for the self-induced class.
    pub precision_self: f64,
    /// Recall for the self-induced class.
    pub recall_self: f64,
    /// Precision for the external class.
    pub precision_external: f64,
    /// Recall for the external class.
    pub recall_external: f64,
    /// Labeled samples surviving the filter.
    pub n: usize,
}

/// Train/test at one threshold (70/30 split) and measure per-class
/// precision and recall. Returns `None` when the threshold leaves too
/// little data of either class.
pub fn threshold_point(
    results: &[TestResult],
    threshold: f64,
    params: TreeParams,
    seed: u64,
) -> Option<ThresholdPoint> {
    let (data, _) = build_dataset(results, threshold);
    if data.len() < 10 || data.class_counts().iter().any(|&c| c < 3) {
        return None;
    }
    let (train, test) = data.train_test_split(0.7, seed);
    if train.n_classes() < 2 || test.is_empty() {
        return None;
    }
    let tree = csig_dtree::DecisionTree::fit(&train, params);
    let cm: ConfusionMatrix = csig_dtree::evaluate(&tree, &test);
    let s = CongestionClass::SelfInduced.index();
    let e = CongestionClass::External.index();
    Some(ThresholdPoint {
        threshold,
        precision_self: cm.precision(s).unwrap_or(0.0),
        recall_self: cm.recall(s).unwrap_or(0.0),
        precision_external: cm.precision(e).unwrap_or(0.0),
        recall_external: cm.recall(e).unwrap_or(0.0),
        n: data.len(),
    })
}

/// Sweep labeling thresholds (the paper's Figure 3 x-axis).
pub fn threshold_sweep(
    results: &[TestResult],
    thresholds: &[f64],
    params: TreeParams,
    seed: u64,
) -> Vec<ThresholdPoint> {
    thresholds
        .iter()
        .filter_map(|&t| threshold_point(results, t, params, seed))
        .collect()
}

/// Accuracy of a classifier against results with *known ground truth*
/// (the scenario that produced them), per class. This is how §3.3 and
/// §5.4 report numbers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GroundTruthAccuracy {
    /// Fraction of self-induced-scenario flows classified self-induced.
    pub self_accuracy: f64,
    /// Fraction of external-scenario flows classified external.
    pub external_accuracy: f64,
    /// Number of self-induced-scenario flows with valid features.
    pub n_self: usize,
    /// Number of external-scenario flows with valid features.
    pub n_external: usize,
}

/// Measure per-scenario accuracy of `clf` on raw results.
pub fn ground_truth_accuracy(
    clf: &SignatureClassifier,
    results: &[TestResult],
) -> GroundTruthAccuracy {
    let mut counts = [[0usize; 2]; 2]; // [intended][predicted]
    for r in results {
        if let Ok(f) = &r.features {
            let pred = clf.classify(f);
            counts[r.intended.index()][pred.index()] += 1;
        }
    }
    let s = CongestionClass::SelfInduced.index();
    let e = CongestionClass::External.index();
    let n_self = counts[s][0] + counts[s][1];
    let n_external = counts[e][0] + counts[e][1];
    GroundTruthAccuracy {
        self_accuracy: if n_self == 0 {
            0.0
        } else {
            counts[s][s] as f64 / n_self as f64
        },
        external_accuracy: if n_external == 0 {
            0.0
        } else {
            counts[e][e] as f64 / n_external as f64
        },
        n_self,
        n_external,
    }
}

/// Re-labelable view of a dataset built from results (used by ablation
/// benches that retrain with a subset of features).
pub fn dataset_at_threshold(results: &[TestResult], threshold: f64) -> Dataset {
    build_dataset(results, threshold).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_features::FlowFeatures;
    use csig_netsim::SimDuration;
    use csig_trace::{SlowStart, ThroughputSummary};

    /// Build a synthetic result with given features/utilization.
    fn result(intended: CongestionClass, nd: f64, cov: f64, util: f64) -> TestResult {
        TestResult {
            features: Ok(FlowFeatures {
                norm_diff: nd,
                cov,
                samples: 20,
                min_rtt_ms: 20.0,
                max_rtt_ms: 60.0,
            }),
            slow_start: SlowStart {
                first_data_at: None,
                end: None,
                bytes_acked: 0,
            },
            throughput: ThroughputSummary {
                bytes_acked: 0,
                active: SimDuration::ZERO,
                mean_bps: util * 20e6,
            },
            ss_throughput_bps: util * 20e6,
            intended,
            access_rate_bps: 20_000_000,
            interconnect_max_occupancy: 0.0,
            events: 0,
            seed: 0,
            conn_stats: None,
        }
    }

    fn synthetic_results(n: usize) -> Vec<TestResult> {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut v = Vec::new();
        for _ in 0..n {
            v.push(result(
                CongestionClass::SelfInduced,
                0.6 + rng.gen::<f64>() * 0.3,
                0.15 + rng.gen::<f64>() * 0.25,
                0.9 + rng.gen::<f64>() * 0.1,
            ));
            v.push(result(
                CongestionClass::External,
                rng.gen::<f64>() * 0.3,
                rng.gen::<f64>() * 0.08,
                0.2 + rng.gen::<f64>() * 0.3,
            ));
        }
        v
    }

    #[test]
    fn training_from_results_works() {
        let results = synthetic_results(100);
        let clf = train_from_results(&results, 0.8, TreeParams::default()).expect("model");
        assert_eq!(clf.meta.n_train, 200);
        let acc = ground_truth_accuracy(&clf, &results);
        assert!(acc.self_accuracy > 0.95);
        assert!(acc.external_accuracy > 0.95);
        assert_eq!(acc.n_self, 100);
    }

    #[test]
    fn threshold_sweep_produces_points() {
        let results = synthetic_results(60);
        let pts = threshold_sweep(&results, &[0.5, 0.6, 0.7, 0.8], TreeParams::default(), 1);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.precision_self > 0.9, "{p:?}");
            assert!(p.recall_external > 0.9, "{p:?}");
        }
    }

    #[test]
    fn extreme_threshold_filters_everything() {
        let results = synthetic_results(30);
        // Threshold 1.0: no self-induced flow can exceed it → single
        // class → None.
        assert!(train_from_results(&results, 1.0, TreeParams::default()).is_none());
    }

    #[test]
    fn empty_results_yield_no_model() {
        assert!(train_from_results(&[], 0.8, TreeParams::default()).is_none());
        assert!(threshold_point(&[], 0.8, TreeParams::default(), 1).is_none());
    }
}
