//! Classification from in-stack (Web100-style) RTT samples — the
//! extension §6 of the paper leaves to future work:
//!
//! > "Packet captures are storage and computationally expensive. …
//! > Web100 makes current RTT values available \[in a\] light-weight
//! > manner. We leave it to future work to study how we can sample RTT
//! > values from Web100 to compute our metrics."
//!
//! A server that already keeps kernel TCP statistics (as every M-Lab
//! NDT server does) can classify flows without capturing a single
//! packet: the connection's own Karn-filtered RTT samples, windowed to
//! the first retransmission, feed the same feature extractor. The
//! `stride` parameter emulates coarser polling (Web100 snapshots every
//! 5 ms rather than every ACK).

use crate::classifier::SignatureClassifier;
use csig_features::{features_from_rtts_ms, CongestionClass, FeatureError, FlowFeatures};
use csig_tcp::ConnStats;

/// Slow-start RTT samples (ms) from a connection's kernel statistics,
/// windowed at the first retransmission and decimated by `stride`
/// (1 = every sample).
pub fn slow_start_rtts_ms(stats: &ConnStats, stride: usize) -> Vec<f64> {
    assert!(stride >= 1, "stride must be at least 1");
    let boundary = stats
        .first_retransmit_at
        .unwrap_or(csig_netsim::SimTime::MAX);
    stats
        .rtt_samples
        .iter()
        .filter(|(t, _)| *t <= boundary)
        .step_by(stride)
        .map(|(_, rtt)| rtt.as_millis_f64())
        .collect()
}

/// Compute the classifier features from kernel statistics alone.
pub fn features_from_stats(stats: &ConnStats, stride: usize) -> Result<FlowFeatures, FeatureError> {
    features_from_rtts_ms(&slow_start_rtts_ms(stats, stride))
}

/// Classify a connection from its kernel statistics (no capture).
pub fn classify_conn_stats(
    clf: &SignatureClassifier,
    stats: &ConnStats,
    stride: usize,
) -> Result<(CongestionClass, FlowFeatures), FeatureError> {
    let features = features_from_stats(stats, stride)?;
    Ok((clf.classify(&features), features))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{ModelMeta, SignatureClassifier};
    use crate::training::train_from_results;
    use csig_dtree::TreeParams;
    use csig_netsim::{LinkConfig, SimDuration, Simulator};
    use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};
    use csig_testbed::{AccessParams, Profile, Sweep};
    use csig_trace::split_flows;

    /// Run a download and return both the server's kernel stats and its
    /// packet capture.
    fn instrumented_download(seed: u64) -> (ConnStats, csig_netsim::Capture) {
        let mut sim = Simulator::new(seed);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig::default(),
            ServerSendPolicy::Fixed(4_000_000),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Once,
            600,
        )));
        sim.add_duplex_link(
            server,
            client,
            LinkConfig::new(20_000_000, SimDuration::from_millis(20)).buffer_ms(100),
        );
        sim.compute_routes();
        let cap = sim.attach_capture(server);
        sim.set_event_budget(50_000_000);
        sim.run();
        let s: &TcpServerAgent = sim.agent(server).unwrap();
        (s.completed[0].1.clone(), sim.take_capture(cap))
    }

    fn model() -> SignatureClassifier {
        let results = Sweep {
            grid: vec![AccessParams::figure1()],
            reps: 3,
            profile: Profile::Scaled,
            seed: 404,
        }
        .run(|_, _| {});
        train_from_results(&results, 0.7, TreeParams::default()).expect("model")
    }

    #[test]
    fn web100_mode_agrees_with_trace_mode() {
        let (stats, cap) = instrumented_download(61);
        let clf = model();

        // Trace pipeline.
        let flows = split_flows(&cap);
        let trace_verdict = clf
            .classify_trace(flows.values().next().expect("flow"))
            .expect("classifiable");

        // Web100 pipeline, full-rate sampling.
        let (class, features) = classify_conn_stats(&clf, &stats, 1).expect("classifiable");
        assert_eq!(class, trace_verdict.class);
        // The two measurement paths see (nearly) the same samples.
        assert!(
            (features.norm_diff - trace_verdict.features.norm_diff).abs() < 0.05,
            "web100 {} vs trace {}",
            features.norm_diff,
            trace_verdict.features.norm_diff
        );
        assert!((features.cov - trace_verdict.features.cov).abs() < 0.05);
    }

    #[test]
    fn decimated_sampling_preserves_the_verdict() {
        let (stats, _) = instrumented_download(62);
        let clf = model();
        let (full, _) = classify_conn_stats(&clf, &stats, 1).expect("full");
        // Even 1-in-8 sampling (coarser than 5 ms Web100 polling at
        // these rates) keeps the verdict.
        let (decimated, f) = classify_conn_stats(&clf, &stats, 8).expect("decimated");
        assert_eq!(full, decimated);
        assert!(f.samples >= 10);
    }

    #[test]
    fn too_coarse_sampling_is_rejected_not_wrong() {
        let (stats, _) = instrumented_download(63);
        let clf = model();
        // Absurd decimation leaves < 10 samples: explicit error.
        let res = classify_conn_stats(&clf, &stats, 10_000);
        assert!(matches!(res, Err(FeatureError::TooFewSamples { .. })));
    }

    #[test]
    fn empty_stats_rejected() {
        let clf = SignatureClassifier::train(
            &crate::classifier::tests::synthetic_dataset(20, 1),
            TreeParams::default(),
            ModelMeta {
                congestion_threshold: 0.8,
                trained_on: "unit".into(),
                n_train: 0,
                n_filtered: 0,
            },
        );
        let res = classify_conn_stats(&clf, &ConnStats::default(), 1);
        assert!(res.is_err());
    }
}
