//! Dataset containers for the classifier.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labeled dataset: row-major feature matrix plus class indices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows; every row has the same length.
    pub features: Vec<Vec<f64>>,
    /// Class index per row.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Append one labeled sample.
    ///
    /// # Panics
    /// Panics if the feature dimension differs from existing rows.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), features.len(), "feature dimension mismatch");
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Number of distinct classes (= max label + 1).
    pub fn n_classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.n_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Merge another dataset into this one.
    pub fn extend(&mut self, other: &Dataset) {
        for (f, &l) in other.features.iter().zip(&other.labels) {
            self.push(f.clone(), l);
        }
    }

    /// Deterministically shuffle and split into `(train, test)` with
    /// `train_frac` of samples in the training set.
    pub fn train_test_split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac), "bad fraction");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let cut = (self.len() as f64 * train_frac).round() as usize;
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for (i, &j) in idx.iter().enumerate() {
            let target = if i < cut { &mut train } else { &mut test };
            target.push(self.features[j].clone(), self.labels[j]);
        }
        (train, test)
    }

    /// Split into `k` deterministic folds for cross-validation; returns
    /// `(train, validation)` pairs.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "need at least 2 folds");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        (0..k)
            .map(|fold| {
                let mut train = Dataset::new();
                let mut val = Dataset::new();
                for (i, &j) in idx.iter().enumerate() {
                    let target = if i % k == fold { &mut val } else { &mut train };
                    target.push(self.features[j].clone(), self.labels[j]);
                }
                (train, val)
            })
            .collect()
    }
}

impl Dataset {
    /// Serialize as CSV: `f0,f1,…,label` per row with a header.
    pub fn to_csv(&self) -> String {
        let dim = self.dim();
        let mut out: String = (0..dim)
            .map(|i| format!("f{i},"))
            .chain(std::iter::once("label\n".to_string()))
            .collect();
        for (row, label) in self.features.iter().zip(&self.labels) {
            for v in row {
                out.push_str(&format!("{v},"));
            }
            out.push_str(&format!("{label}\n"));
        }
        out
    }

    /// Parse the CSV format produced by [`Dataset::to_csv`].
    pub fn from_csv(csv: &str) -> Result<Dataset, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("empty csv")?;
        let dim = header.split(',').count().saturating_sub(1);
        let mut data = Dataset::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != dim + 1 {
                return Err(format!("row {i}: expected {} fields", dim + 1));
            }
            let feats: Result<Vec<f64>, _> =
                fields[..dim].iter().map(|f| f.parse::<f64>()).collect();
            let label: usize = fields[dim]
                .trim()
                .parse()
                .map_err(|e| format!("row {i}: bad label: {e}"))?;
            data.push(
                feats.map_err(|e| format!("row {i}: bad feature: {e}"))?,
                label,
            );
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            d.push(vec![i as f64, (i * 2) as f64], i % 2);
        }
        d
    }

    #[test]
    fn push_and_shape() {
        let d = toy(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_counts(), vec![5, 5]);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_rejected() {
        let mut d = toy(2);
        d.push(vec![1.0], 0);
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy(100);
        let (tr, te) = d.train_test_split(0.8, 7);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        // Deterministic for a fixed seed.
        let (tr2, _) = d.train_test_split(0.8, 7);
        assert_eq!(tr.features, tr2.features);
        // Different seed shuffles differently.
        let (tr3, _) = d.train_test_split(0.8, 8);
        assert_ne!(tr.features, tr3.features);
    }

    #[test]
    fn k_folds_cover_all_samples_once() {
        let d = toy(30);
        let folds = d.k_folds(3, 1);
        assert_eq!(folds.len(), 3);
        let total_val: usize = folds.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total_val, 30);
        for (tr, v) in &folds {
            assert_eq!(tr.len() + v.len(), 30);
        }
    }

    #[test]
    fn csv_roundtrip() {
        let d = toy(7);
        let csv = d.to_csv();
        let back = Dataset::from_csv(&csv).unwrap();
        assert_eq!(back.labels, d.labels);
        assert_eq!(back.features, d.features);
        assert_eq!(back.dim(), d.dim());
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        assert!(Dataset::from_csv("").is_err());
        assert!(Dataset::from_csv("f0,label\n1.0").is_err());
        assert!(Dataset::from_csv("f0,label\nx,0").is_err());
        assert!(Dataset::from_csv("f0,label\n1.0,notalabel").is_err());
        // Blank trailing lines are fine.
        let d = Dataset::from_csv("f0,label\n1.5,1\n\n").unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn extend_merges() {
        let mut a = toy(3);
        let b = toy(2);
        a.extend(&b);
        assert_eq!(a.len(), 5);
    }
}
