//! # csig-dtree — decision-tree classifier
//!
//! A from-scratch CART implementation (Gini impurity, axis-aligned
//! splits) replacing the paper's `sklearn.tree.DecisionTreeClassifier`,
//! together with dataset plumbing and evaluation metrics:
//!
//! * [`data`] — labeled datasets, train/test splits, k-folds.
//! * [`tree`] — fitting, prediction, probabilities, serialization,
//!   human-readable rendering.
//! * [`metrics`] — confusion matrices, precision/recall/F1/accuracy and
//!   cross-validation (the vocabulary of the paper's Figure 3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod data;
pub mod metrics;
pub mod tree;

pub use data::Dataset;
pub use metrics::{cross_val_accuracy, evaluate, ConfusionMatrix};
pub use tree::{DecisionTree, Node, TreeParams};
