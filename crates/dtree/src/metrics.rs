//! Classification metrics: confusion matrix, precision/recall/F1,
//! accuracy, and cross-validation — the evaluation vocabulary of the
//! paper's Figure 3.

use crate::data::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use serde::{Deserialize, Serialize};

/// Confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from parallel actual/predicted label slices.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    pub fn from_labels(actual: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(actual.len(), predicted.len(), "length mismatch");
        assert!(!actual.is_empty(), "no samples");
        let k = actual.iter().chain(predicted).max().map_or(1, |&m| m + 1);
        let mut counts = vec![vec![0usize; k]; k];
        for (&a, &p) in actual.iter().zip(predicted) {
            counts[a][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// `counts[actual][predicted]` (0 for classes never observed).
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts
            .get(actual)
            .and_then(|row| row.get(predicted))
            .copied()
            .unwrap_or(0)
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        correct as f64 / total as f64
    }

    /// Precision of `class`: TP / (TP + FP). `None` when the class is
    /// never predicted (including classes beyond the observed range).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let tp = self.count(class, class);
        let predicted: usize = (0..self.n_classes()).map(|a| self.count(a, class)).sum();
        (predicted > 0).then(|| tp as f64 / predicted as f64)
    }

    /// Recall of `class`: TP / (TP + FN). `None` when the class has no
    /// actual samples (including classes beyond the observed range).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let tp = self.count(class, class);
        let actual: usize = self
            .counts
            .get(class)
            .map(|row| row.iter().sum())
            .unwrap_or(0);
        (actual > 0).then(|| tp as f64 / actual as f64)
    }

    /// F1 score of `class` (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> Option<f64> {
        let p = self.precision(class)?;
        let r = self.recall(class)?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "actual \\ predicted")?;
        for (a, row) in self.counts.iter().enumerate() {
            write!(f, "  {a}:")?;
            for c in row {
                write!(f, " {c:>6}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Evaluate a fitted tree on a test set.
pub fn evaluate(tree: &DecisionTree, test: &Dataset) -> ConfusionMatrix {
    let preds = tree.predict_all(test);
    ConfusionMatrix::from_labels(&test.labels, &preds)
}

/// Mean k-fold cross-validated accuracy.
pub fn cross_val_accuracy(data: &Dataset, params: TreeParams, k: usize, seed: u64) -> f64 {
    let folds = data.k_folds(k, seed);
    let mut acc = 0.0;
    let n = folds.len() as f64;
    for (train, val) in folds {
        let tree = DecisionTree::fit(&train, params);
        acc += evaluate(&tree, &val).accuracy();
    }
    acc / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let actual = vec![0, 1, 0, 1];
        let cm = ConfusionMatrix::from_labels(&actual, &actual);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(0), Some(1.0));
        assert_eq!(cm.recall(1), Some(1.0));
        assert_eq!(cm.f1(0), Some(1.0));
    }

    #[test]
    fn known_confusion() {
        // actual:    0 0 0 1 1
        // predicted: 0 0 1 1 0
        let cm = ConfusionMatrix::from_labels(&[0, 0, 0, 1, 1], &[0, 0, 1, 1, 0]);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        // precision(0) = 2/3, recall(0) = 2/3.
        assert!((cm.precision(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // precision(1) = 1/2, recall(1) = 1/2, f1 = 1/2.
        assert!((cm.f1(1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn never_predicted_class_has_no_precision() {
        let cm = ConfusionMatrix::from_labels(&[0, 1], &[0, 0]);
        assert_eq!(cm.precision(1), None);
        assert_eq!(cm.recall(1), Some(0.0));
    }

    #[test]
    fn out_of_range_class_is_not_a_panic() {
        // A degenerate test split where only class 0 exists.
        let cm = ConfusionMatrix::from_labels(&[0, 0], &[0, 0]);
        assert_eq!(cm.n_classes(), 1);
        assert_eq!(cm.count(1, 1), 0);
        assert_eq!(cm.precision(1), None);
        assert_eq!(cm.recall(1), None);
        assert_eq!(cm.f1(1), None);
    }

    #[test]
    fn display_renders() {
        let cm = ConfusionMatrix::from_labels(&[0, 1], &[0, 1]);
        let s = cm.to_string();
        assert!(s.contains("actual"));
    }

    #[test]
    fn cross_validation_on_separable_data_is_high() {
        let mut d = Dataset::new();
        for i in 0..200 {
            let x = i as f64 / 200.0;
            d.push(vec![x], usize::from(x > 0.5));
        }
        let acc = cross_val_accuracy(&d, TreeParams::default(), 5, 42);
        assert!(acc > 0.95, "cv accuracy {acc}");
    }
}
