//! CART decision tree (Gini impurity, axis-aligned splits) — the
//! from-scratch stand-in for `sklearn.tree.DecisionTreeClassifier`.
//!
//! The paper trains a depth-3..5 tree on the two RTT features; this
//! implementation supports arbitrary dimensions and class counts with
//! the standard hyperparameters (max depth, minimum samples to split,
//! minimum samples per leaf).

use crate::data::Dataset;
use serde::{Deserialize, Serialize};

/// Training hyperparameters (defaults match the paper: depth 4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer samples than this.
    pub min_samples_split: usize,
    /// Both children of a split must keep at least this many samples.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

impl TreeParams {
    /// Params with the given depth and defaults otherwise.
    pub fn with_depth(max_depth: usize) -> Self {
        TreeParams {
            max_depth,
            ..TreeParams::default()
        }
    }
}

/// A node in the fitted tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Terminal node predicting `class`.
    Leaf {
        /// Predicted class (argmax of `counts`).
        class: usize,
        /// Training-sample class histogram at this leaf.
        counts: Vec<usize>,
    },
    /// Internal split: `feature < threshold` goes left, else right.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Index of the left child in the node arena.
        left: usize,
        /// Index of the right child in the node arena.
        right: usize,
    },
}

/// A fitted CART classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    dim: usize,
    n_classes: usize,
    params: TreeParams,
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    impurity: f64,
}

impl DecisionTree {
    /// Fit a tree on `data`.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset, params: TreeParams) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let n_classes = data.n_classes().max(1);
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            dim: data.dim(),
            n_classes,
            params,
        };
        let idx: Vec<usize> = (0..data.len()).collect();
        tree.build(data, idx, 0);
        tree
    }

    /// Build a subtree over `idx`; returns the node's arena index.
    fn build(&mut self, data: &Dataset, idx: Vec<usize>, depth: usize) -> usize {
        let counts = self.count_classes(data, &idx);
        let node_gini = gini(&counts);
        let Some(majority) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
        else {
            unreachable!("count_classes returns one slot per class")
        };

        let stop = depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || node_gini == 0.0;
        if !stop {
            if let Some(split) = self.best_split(data, &idx, node_gini) {
                let (li, ri): (Vec<usize>, Vec<usize>) = idx
                    .iter()
                    .partition(|&&i| data.features[i][split.feature] < split.threshold);
                if li.len() >= self.params.min_samples_leaf
                    && ri.len() >= self.params.min_samples_leaf
                {
                    let slot = self.nodes.len();
                    // Reserve the slot; children are built after.
                    self.nodes.push(Node::Leaf {
                        class: majority,
                        counts: counts.clone(),
                    });
                    let left = self.build(data, li, depth + 1);
                    let right = self.build(data, ri, depth + 1);
                    self.nodes[slot] = Node::Split {
                        feature: split.feature,
                        threshold: split.threshold,
                        left,
                        right,
                    };
                    return slot;
                }
            }
        }
        self.nodes.push(Node::Leaf {
            class: majority,
            counts,
        });
        self.nodes.len() - 1
    }

    fn count_classes(&self, data: &Dataset, idx: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in idx {
            counts[data.labels[i]] += 1;
        }
        counts
    }

    /// Exhaustive best split: for each feature, sort samples and scan
    /// boundaries between distinct values.
    fn best_split(&self, data: &Dataset, idx: &[usize], _parent_gini: f64) -> Option<BestSplit> {
        let n = idx.len() as f64;
        let mut best: Option<BestSplit> = None;
        for feature in 0..self.dim {
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| data.features[a][feature].total_cmp(&data.features[b][feature]));
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = self.count_classes(data, idx);
            for w in 0..order.len() - 1 {
                let i = order[w];
                left_counts[data.labels[i]] += 1;
                right_counts[data.labels[i]] -= 1;
                let v0 = data.features[i][feature];
                let v1 = data.features[order[w + 1]][feature];
                if v0 == v1 {
                    continue; // can't split between equal values
                }
                let nl = (w + 1) as f64;
                let nr = n - nl;
                let impurity = (nl / n) * gini(&left_counts) + (nr / n) * gini(&right_counts);
                // Weighted child impurity never exceeds the parent's
                // (Gini is concave), so accept even zero-gain splits —
                // like sklearn — or XOR-style data would never split.
                if best.as_ref().is_none_or(|b| impurity < b.impurity) {
                    best = Some(BestSplit {
                        feature,
                        threshold: (v0 + v1) / 2.0,
                        impurity,
                    });
                }
            }
        }
        best
    }

    /// Predict the class of a feature vector.
    ///
    /// # Panics
    /// Panics if the dimension does not match the training data.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Class probabilities from the reached leaf's training histogram.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { counts, .. } => {
                    let total: usize = counts.iter().sum();
                    return counts
                        .iter()
                        .map(|&c| {
                            if total == 0 {
                                0.0
                            } else {
                                c as f64 / total as f64
                            }
                        })
                        .collect();
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict all rows of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        data.features.iter().map(|x| self.predict(x)).collect()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of classes the tree predicts.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Training parameters the tree was fitted with.
    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// Gini feature importances: total impurity decrease contributed by
    /// splits on each feature, weighted by the fraction of training
    /// samples reaching the split, normalized to sum to 1 (all zeros
    /// for a single-leaf tree). Mirrors sklearn's
    /// `feature_importances_`.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut importance = vec![0.0; self.dim];
        let total_samples = match &self.nodes.first() {
            Some(Node::Leaf { counts, .. }) => counts.iter().sum::<usize>() as f64,
            Some(Node::Split { .. }) => self.node_samples(0) as f64,
            None => return importance,
        };
        for i in 0..self.nodes.len() {
            if let Node::Split {
                feature,
                left,
                right,
                ..
            } = &self.nodes[i]
            {
                let (n, g) = (self.node_samples(i) as f64, self.node_gini(i));
                let (nl, gl) = (self.node_samples(*left) as f64, self.node_gini(*left));
                let (nr, gr) = (self.node_samples(*right) as f64, self.node_gini(*right));
                let decrease = g - (nl / n) * gl - (nr / n) * gr;
                importance[*feature] += (n / total_samples) * decrease.max(0.0);
            }
        }
        let sum: f64 = importance.iter().sum();
        if sum > 0.0 {
            for v in &mut importance {
                *v /= sum;
            }
        }
        importance
    }

    /// Training samples that reached a node (recomputed from leaves).
    fn node_samples(&self, at: usize) -> usize {
        match &self.nodes[at] {
            Node::Leaf { counts, .. } => counts.iter().sum(),
            Node::Split { left, right, .. } => self.node_samples(*left) + self.node_samples(*right),
        }
    }

    /// Gini impurity of the training samples that reached a node.
    fn node_gini(&self, at: usize) -> f64 {
        match &self.nodes[at] {
            Node::Leaf { counts, .. } => gini(counts),
            Node::Split { left, right, .. } => {
                let nl = self.node_samples(*left);
                let nr = self.node_samples(*right);
                // Recombine child histograms.
                let mut counts = self.node_counts(*left);
                for (c, v) in counts.iter_mut().zip(self.node_counts(*right)) {
                    *c += v;
                }
                let _ = (nl, nr);
                gini(&counts)
            }
        }
    }

    fn node_counts(&self, at: usize) -> Vec<usize> {
        match &self.nodes[at] {
            Node::Leaf { counts, .. } => counts.clone(),
            Node::Split { left, right, .. } => {
                let mut counts = self.node_counts(*left);
                for (c, v) in counts.iter_mut().zip(self.node_counts(*right)) {
                    *c += v;
                }
                counts
            }
        }
    }

    /// Human-readable rendering of the tree (debugging, reports).
    pub fn render(&self, feature_names: &[&str]) -> String {
        let mut out = String::new();
        self.render_node(0, 0, feature_names, &mut out);
        out
    }

    /// Graphviz DOT rendering of the tree (for reports/papers).
    pub fn to_dot(&self, feature_names: &[&str]) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph tree {\n  node [shape=box, fontname=\"monospace\"];\n");
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Leaf { class, counts } => {
                    let _ = writeln!(
                        out,
                        "  n{i} [label=\"class {class}\\n{counts:?}\", style=filled, fillcolor=\"{}\"];",
                        if *class == 0 { "#cde7cd" } else { "#e7cdcd" }
                    );
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let name = feature_names.get(*feature).copied().unwrap_or("f?");
                    let _ = writeln!(out, "  n{i} [label=\"{name} < {threshold:.4}\"];");
                    let _ = writeln!(out, "  n{i} -> n{left} [label=\"yes\"];");
                    let _ = writeln!(out, "  n{i} -> n{right} [label=\"no\"];");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    fn render_node(&self, at: usize, indent: usize, names: &[&str], out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        match &self.nodes[at] {
            Node::Leaf { class, counts } => {
                let _ = writeln!(out, "{pad}=> class {class} {counts:?}");
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let name = names.get(*feature).copied().unwrap_or("f?");
                let _ = writeln!(out, "{pad}if {name} < {threshold:.4}:");
                self.render_node(*left, indent + 1, names, out);
                let _ = writeln!(out, "{pad}else:");
                self.render_node(*right, indent + 1, names, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn separable() -> Dataset {
        // Class 0 clusters near (0.1, 0.1), class 1 near (0.9, 0.9).
        let mut d = Dataset::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let n0: f64 = rng.gen::<f64>() * 0.2;
            let n1: f64 = rng.gen::<f64>() * 0.2;
            d.push(vec![0.0 + n0, 0.0 + n1], 0);
            d.push(vec![0.8 + n0, 0.8 + n1], 1);
        }
        d
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let d = separable();
        let tree = DecisionTree::fit(&d, TreeParams::default());
        let preds = tree.predict_all(&d);
        assert_eq!(preds, d.labels);
        assert!(tree.depth() <= 4);
    }

    #[test]
    fn respects_max_depth() {
        // XOR-ish data needs depth ≥ 2; verify depth-1 stays depth-1.
        let mut d = Dataset::new();
        for _ in 0..5 {
            d.push(vec![0.0, 0.0], 0);
            d.push(vec![1.0, 1.0], 0);
            d.push(vec![0.0, 1.0], 1);
            d.push(vec![1.0, 0.0], 1);
        }
        for depth in [1usize, 2, 3] {
            let tree = DecisionTree::fit(&d, TreeParams::with_depth(depth));
            assert!(tree.depth() <= depth, "depth {} > {}", tree.depth(), depth);
        }
        // With enough depth, XOR is solved exactly.
        let tree = DecisionTree::fit(&d, TreeParams::with_depth(3));
        assert_eq!(tree.predict_all(&d), d.labels);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64], 0);
        }
        let tree = DecisionTree::fit(&d, TreeParams::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[3.0]), 0);
    }

    #[test]
    fn min_samples_leaf_honored() {
        let mut d = Dataset::new();
        // One outlier of class 1 among class 0.
        for i in 0..20 {
            d.push(vec![i as f64], usize::from(i == 19));
        }
        let params = TreeParams {
            min_samples_leaf: 5,
            ..TreeParams::default()
        };
        let tree = DecisionTree::fit(&d, params);
        // A split isolating the single outlier would violate
        // min_samples_leaf... verify every leaf holds ≥5 samples.
        for n in 0..tree.node_count() {
            if let Node::Leaf { counts, .. } = &tree.nodes[n] {
                assert!(counts.iter().sum::<usize>() >= 5);
            }
        }
    }

    #[test]
    fn predict_proba_sums_to_one() {
        let d = separable();
        let tree = DecisionTree::fit(&d, TreeParams::default());
        let p = tree.predict_proba(&[0.05, 0.05]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1]);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let d = separable();
        let tree = DecisionTree::fit(&d, TreeParams::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(tree.predict_all(&d), back.predict_all(&d));
    }

    #[test]
    fn render_is_readable() {
        let d = separable();
        let tree = DecisionTree::fit(&d, TreeParams::with_depth(2));
        let s = tree.render(&["norm_diff", "cov"]);
        assert!(s.contains("if "));
        assert!(s.contains("class"));
    }

    #[test]
    fn feature_importances_identify_the_informative_axis() {
        // Labels depend only on feature 0; feature 1 is pure noise.
        let mut d = Dataset::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let x: f64 = rng.gen();
            let noise: f64 = rng.gen();
            d.push(vec![x, noise], usize::from(x > 0.5));
        }
        let tree = DecisionTree::fit(&d, TreeParams::with_depth(3));
        let imp = tree.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "importances {imp:?}");
    }

    #[test]
    fn single_leaf_tree_has_zero_importances() {
        let mut d = Dataset::new();
        for i in 0..5 {
            d.push(vec![i as f64, 0.0], 0);
        }
        let tree = DecisionTree::fit(&d, TreeParams::default());
        assert_eq!(tree.feature_importances(), vec![0.0, 0.0]);
    }

    #[test]
    fn dot_export_is_wellformed() {
        let d = separable();
        let tree = DecisionTree::fit(&d, TreeParams::with_depth(2));
        let dot = tree.to_dot(&["norm_diff", "cov"]);
        assert!(dot.starts_with("digraph tree {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("->"));
        assert!(dot.contains("norm_diff") || dot.contains("cov"));
        // One node line per arena node.
        let node_defs = dot.matches("\n  n").count();
        assert!(node_defs >= tree.node_count());
    }

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert!((gini(&[1, 1, 1, 1]) - 0.75).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_training_accuracy_beats_majority(
            seed in 0u64..1000,
            n in 20usize..100
        ) {
            // Random labels over informative features: the tree must do
            // at least as well as the majority class on training data.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut d = Dataset::new();
            for _ in 0..n {
                let x: f64 = rng.gen();
                let y: f64 = rng.gen();
                let label = usize::from(x + y > 1.0);
                d.push(vec![x, y], label);
            }
            let tree = DecisionTree::fit(&d, TreeParams::default());
            let preds = tree.predict_all(&d);
            let correct = preds.iter().zip(&d.labels).filter(|(a, b)| a == b).count();
            let majority = d.class_counts().into_iter().max().unwrap();
            prop_assert!(correct >= majority);
        }

        #[test]
        fn prop_depth_bound_holds(seed in 0u64..200, depth in 1usize..6) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut d = Dataset::new();
            for _ in 0..60 {
                d.push(vec![rng.gen(), rng.gen()], rng.gen_range(0..3usize));
            }
            let tree = DecisionTree::fit(&d, TreeParams::with_depth(depth));
            prop_assert!(tree.depth() <= depth);
        }

        #[test]
        fn prop_prediction_is_deterministic(seed in 0u64..100) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut d = Dataset::new();
            for _ in 0..50 {
                d.push(vec![rng.gen(), rng.gen()], rng.gen_range(0..2usize));
            }
            let t1 = DecisionTree::fit(&d, TreeParams::default());
            let t2 = DecisionTree::fit(&d, TreeParams::default());
            prop_assert_eq!(t1.predict_all(&d), t2.predict_all(&d));
        }
    }
}
