//! Shared command-line entry point for the experiment binaries.
//!
//! Every `fig*`/`exp_*` binary and the root `csig` CLI parse the same
//! execution flags through [`CommonArgs`]:
//!
//! * `--jobs N` — worker count for campaign execution (`0` or absent
//!   means one worker per available core). Results are byte-identical
//!   for every worker count; `--jobs` only changes wall-clock.
//! * `--seed S` — override the experiment's default master seed.
//! * `--paper` — run the full paper fidelity profile instead of the
//!   scaled one (interpreted by the binary; this module only parses).
//! * `--progress` — verbose per-scenario completion lines (index,
//!   elapsed, worker) instead of the default sparse `done/total` ones.
//! * `--deadline SECS` — soft per-scenario deadline: a scenario that
//!   runs longer is reported as failed (with its seed) instead of its
//!   artifact; the rest of the campaign is unaffected.
//! * `--metrics-out FILE` — write the campaign's **deterministic**
//!   metrics snapshot (JSON, see [`csig_obs::Snapshot::to_json`]) at
//!   campaign end. Deterministic means: wall-clock timers stripped, so
//!   two same-seed runs produce byte-identical files at any `--jobs`.
//! * `--trace-out FILE` — write the campaign's structured trace events
//!   as JSONL at campaign end.
//!
//! Experiment-specific flags and positionals stay with the binary;
//! the accessor helpers here ([`CommonArgs::flag_value`],
//! [`CommonArgs::positional_parsed`], …) keep their parsing uniform.

use std::str::FromStr;
use std::time::Duration;

use crate::{Executor, ProgressEvent};
use csig_obs::{Snapshot, TraceEvent};

/// Parsed common flags plus the raw argument list.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    args: Vec<String>,
    /// Worker count (`0` = one per core; resolved by [`Executor::new`]).
    pub jobs: usize,
    /// Master-seed override.
    pub seed: Option<u64>,
    /// Paper-fidelity profile requested.
    pub paper: bool,
    /// Verbose per-scenario progress requested.
    pub progress: bool,
    /// Soft per-scenario deadline (`--deadline SECS`).
    pub deadline: Option<Duration>,
    /// Where to write the deterministic metrics snapshot
    /// (`--metrics-out FILE`).
    pub metrics_out: Option<String>,
    /// Where to write the JSONL trace (`--trace-out FILE`).
    pub trace_out: Option<String>,
}

impl CommonArgs {
    /// Parse from the process arguments (skipping the program name).
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Parse from an explicit argument vector.
    pub fn from_vec(args: Vec<String>) -> Self {
        let mut parsed = CommonArgs {
            args,
            jobs: 0,
            seed: None,
            paper: false,
            progress: false,
            deadline: None,
            metrics_out: None,
            trace_out: None,
        };
        if let Some(v) = parsed.flag_value("--jobs") {
            parsed.jobs = v.parse().unwrap_or_else(|_| {
                eprintln!("warning: bad --jobs value `{v}`, using all cores");
                0
            });
        }
        parsed.seed = parsed.flag_value("--seed").and_then(|v| v.parse().ok());
        parsed.paper = parsed.has_flag("--paper");
        parsed.progress = parsed.has_flag("--progress");
        parsed.deadline = parsed
            .flag_value("--deadline")
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .map(Duration::from_secs_f64);
        parsed.metrics_out = parsed.flag_value("--metrics-out").cloned();
        parsed.trace_out = parsed.flag_value("--trace-out").cloned();
        parsed
    }

    /// Whether either observability sink (`--metrics-out` /
    /// `--trace-out`) was requested — binaries use this to decide
    /// whether to run the instrumented campaign path.
    pub fn wants_observability(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some()
    }

    /// Write the **deterministic** subset of `snapshot` to the
    /// `--metrics-out` path, if one was given. Stripping the wall-clock
    /// timers first is what makes the file byte-identical across
    /// same-seed runs at any `--jobs` — the property
    /// `scripts/verify.sh` checks.
    pub fn write_metrics(&self, snapshot: &Snapshot) -> std::io::Result<()> {
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, snapshot.deterministic().to_json())?;
            eprintln!("metrics snapshot written to {path}");
        }
        Ok(())
    }

    /// Write `events` as JSONL to the `--trace-out` path, if one was
    /// given.
    pub fn write_trace(&self, events: &[TraceEvent]) -> std::io::Result<()> {
        if let Some(path) = &self.trace_out {
            let mut out = String::new();
            for e in events {
                out.push_str(&e.to_json_line());
                out.push('\n');
            }
            std::fs::write(path, out)?;
            eprintln!("{} trace events written to {path}", events.len());
        }
        Ok(())
    }

    /// An executor sized by `--jobs`, with any `--deadline` applied.
    pub fn executor(&self) -> Executor {
        Executor::new(self.jobs).with_deadline(self.deadline)
    }

    /// The `--seed` override, or the experiment's default.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The value following `flag`, if present.
    pub fn flag_value(&self, flag: &str) -> Option<&String> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
    }

    /// Whether `flag` appears.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    /// Parse the value of `flag`, erroring on malformed input and
    /// returning `None` when absent.
    pub fn parsed_flag<T: FromStr>(&self, flag: &str) -> Result<Option<T>, String> {
        match self.flag_value(flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad {flag} value `{v}`")),
        }
    }

    /// Positional arguments: everything that is not a flag or the value
    /// of the flag preceding it.
    pub fn positionals(&self) -> impl Iterator<Item = &String> {
        self.args.iter().enumerate().filter_map(|(i, a)| {
            if a.starts_with("--") {
                return None;
            }
            match i.checked_sub(1).and_then(|j| self.args.get(j)) {
                Some(prev) if prev.starts_with("--") && takes_value(prev) => None,
                _ => Some(a),
            }
        })
    }

    /// The first positional argument.
    pub fn positional(&self) -> Option<&String> {
        self.positionals().next()
    }

    /// The first positional that parses as `T`, or `default`.
    pub fn positional_parsed<T: FromStr>(&self, default: T) -> T {
        self.positionals()
            .find_map(|a| a.parse().ok())
            .unwrap_or(default)
    }

    /// A progress printer for campaign runs: with `--progress`, one
    /// line per completed scenario (index, elapsed, worker); otherwise
    /// a sparse `done/total` line every `every` completions.
    pub fn progress_printer(&self, every: usize) -> impl FnMut(ProgressEvent) {
        let verbose = self.progress;
        move |e: ProgressEvent| {
            if verbose {
                eprintln!(
                    "  [{:>6.1}s] scenario {:>4} {} ({}/{}, worker {})",
                    e.elapsed.as_secs_f64(),
                    e.index,
                    if e.ok { "done" } else { "FAILED" },
                    e.done,
                    e.total,
                    e.worker
                );
            } else if !e.ok {
                eprintln!("  scenario {} FAILED ({}/{})", e.index, e.done, e.total);
            } else if every > 0 && (e.done.is_multiple_of(every) || e.done == e.total) {
                eprintln!("  {}/{}", e.done, e.total);
            }
        }
    }
}

/// Flags whose next argument is a value, not a positional. Keeping this
/// list in one place is what lets `positionals()` skip values reliably
/// across all binaries.
fn takes_value(flag: &str) -> bool {
    !matches!(
        flag,
        "--paper" | "--progress" | "--full-grid" | "--raw" | "--external"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> CommonArgs {
        CommonArgs::from_vec(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn common_flags_parse() {
        let a = args(&["7", "--jobs", "4", "--seed", "99", "--paper", "--progress"]);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.seed, Some(99));
        assert!(a.paper && a.progress);
        assert_eq!(a.positional_parsed(0u32), 7);
    }

    #[test]
    fn defaults_when_absent() {
        let a = args(&[]);
        assert_eq!(a.jobs, 0);
        assert_eq!(a.seed_or(42), 42);
        assert!(!a.paper && !a.progress);
        assert_eq!(a.positional_parsed(5u32), 5);
    }

    #[test]
    fn flag_values_are_not_positionals() {
        // `fig3 --jobs 4` must not read `4` as the reps positional.
        let a = args(&["--jobs", "4"]);
        assert_eq!(a.positional_parsed(5u32), 5);
        // …but boolean flags don't swallow the next argument.
        let b = args(&["--paper", "3"]);
        assert_eq!(b.positional_parsed(5u32), 3);
    }

    #[test]
    fn deadline_parses_and_feeds_executor() {
        let a = args(&["--deadline", "2.5"]);
        assert_eq!(a.deadline, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(a.executor().deadline(), a.deadline);
        // Absent, malformed, or non-positive values mean no deadline.
        assert_eq!(args(&[]).deadline, None);
        assert_eq!(args(&["--deadline", "x"]).deadline, None);
        assert_eq!(args(&["--deadline", "0"]).deadline, None);
        // The value is not a positional.
        assert_eq!(args(&["--deadline", "2"]).positional_parsed(9u32), 9);
    }

    #[test]
    fn observability_flags_parse_and_values_are_not_positionals() {
        let a = args(&["--metrics-out", "m.json", "--trace-out", "t.jsonl", "3"]);
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(a.trace_out.as_deref(), Some("t.jsonl"));
        assert!(a.wants_observability());
        assert_eq!(a.positional_parsed(9u32), 3);
        assert!(!args(&[]).wants_observability());
    }

    #[test]
    fn metrics_writer_strips_wall_clock_timers() {
        let reg = csig_obs::MetricsRegistry::new();
        reg.counter("sim.events").add(7);
        reg.timer("time.wall_us").record(123);
        let dir = std::env::temp_dir().join(format!("csig-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let a = args(&["--metrics-out", path.to_str().unwrap()]);
        a.write_metrics(&reg.snapshot()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("sim.events"));
        assert!(!body.contains("time.wall_us"), "timers must be stripped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parsed_flag_reports_errors() {
        let a = args(&["--reps", "x"]);
        assert!(a.parsed_flag::<u32>("--reps").is_err());
        assert_eq!(a.parsed_flag::<u32>("--threshold").unwrap(), None);
    }
}
