//! Unified Scenario/Campaign execution layer.
//!
//! Every experiment in this workspace has the same shape: a list of
//! self-contained simulation units, each parameterized by a derived
//! seed, whose results are collected in order and then analyzed. This
//! crate factors that shape out of the per-experiment loops:
//!
//! * [`Scenario`] — one self-contained unit of simulation. Given its
//!   seed it produces a typed artifact; it must not depend on any other
//!   scenario having run.
//! * [`Campaign`] — an ordered collection of scenarios, each paired
//!   with a seed derived from the campaign's master seed (or supplied
//!   explicitly for experiments with bespoke seed schemes).
//! * [`Executor`] — runs a campaign either sequentially or across a
//!   `std::thread::scope` worker pool, merging artifacts in
//!   **submission order** so a parallel run is byte-identical to a
//!   sequential one, and reporting per-scenario completion through a
//!   [`ProgressEvent`] callback.
//!
//! Determinism contract: each scenario's randomness must come only
//! from its seed, so the artifact vector depends only on the campaign
//! definition — never on `jobs`, thread scheduling, or wall-clock.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use csig_netsim::rng::derive_seed;

/// One self-contained, seed-parameterized unit of simulation.
///
/// `run` must be a pure function of `self` and `seed`: no shared
/// mutable state, no ordering dependence on other scenarios. That is
/// what lets the executor schedule scenarios on any worker in any
/// order and still merge a deterministic result.
pub trait Scenario {
    /// The result of running this scenario.
    type Artifact: Send;

    /// Execute the scenario with the given seed.
    fn run(&self, seed: u64) -> Self::Artifact;
}

/// Any closure `(seed) -> artifact` is a scenario; campaigns over
/// heterogeneous work can box closures instead of defining a type.
impl<A: Send, F: Fn(u64) -> A> Scenario for F {
    type Artifact = A;

    fn run(&self, seed: u64) -> A {
        self(seed)
    }
}

/// An ordered collection of seeded scenarios.
#[derive(Debug, Clone)]
pub struct Campaign<S> {
    master_seed: u64,
    entries: Vec<(u64, S)>,
}

impl<S> Campaign<S> {
    /// An empty campaign with the given master seed.
    pub fn new(master_seed: u64) -> Self {
        Campaign {
            master_seed,
            entries: Vec::new(),
        }
    }

    /// The master seed scenarios' seeds are derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Append a scenario, deriving its seed as
    /// `derive_seed(master_seed, n)` where `n` is its 1-based position
    /// — the tag scheme the experiments in this workspace already use,
    /// so refactoring a hand-rolled loop onto a campaign preserves
    /// every per-scenario seed.
    pub fn push(&mut self, scenario: S) {
        let tag = self.entries.len() as u64 + 1;
        self.entries
            .push((derive_seed(self.master_seed, tag), scenario));
    }

    /// Append a scenario with an explicitly derived seed, for
    /// experiments whose seed scheme is not the 1-based tag.
    pub fn push_seeded(&mut self, seed: u64, scenario: S) {
        self.entries.push((seed, scenario));
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the campaign holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(seed, scenario)` pairs in submission order.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, S)> {
        self.entries.iter()
    }
}

/// Completion notice for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Submission index of the scenario that just finished.
    pub index: usize,
    /// How many scenarios have finished so far (including this one).
    pub done: usize,
    /// Total scenarios in the campaign.
    pub total: usize,
    /// Wall-clock time since the campaign started.
    pub elapsed: Duration,
    /// Id of the worker that ran it (0 for a sequential run).
    pub worker: usize,
}

/// Worker count for `--jobs 0` / unspecified: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs campaigns; `jobs` controls the worker pool size.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor with the given worker count (`0` means
    /// [`default_jobs`]).
    pub fn new(jobs: usize) -> Self {
        Executor {
            jobs: if jobs == 0 { default_jobs() } else { jobs },
        }
    }

    /// A single-worker executor (runs on the calling thread).
    pub fn sequential() -> Self {
        Executor { jobs: 1 }
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run the campaign, returning artifacts in submission order.
    pub fn run<S>(&self, campaign: &Campaign<S>) -> Vec<S::Artifact>
    where
        S: Scenario + Sync,
    {
        self.run_with_progress(campaign, |_| {})
    }

    /// Run the campaign, invoking `progress` on the calling thread as
    /// each scenario completes. Artifacts come back in submission
    /// order regardless of `jobs`; only the order of progress events
    /// reflects actual completion order.
    pub fn run_with_progress<S, F>(
        &self,
        campaign: &Campaign<S>,
        mut progress: F,
    ) -> Vec<S::Artifact>
    where
        S: Scenario + Sync,
        F: FnMut(ProgressEvent),
    {
        let total = campaign.len();
        let started = Instant::now();

        if self.jobs <= 1 || total <= 1 {
            return campaign
                .entries
                .iter()
                .enumerate()
                .map(|(index, (seed, scenario))| {
                    let artifact = scenario.run(*seed);
                    progress(ProgressEvent {
                        index,
                        done: index + 1,
                        total,
                        elapsed: started.elapsed(),
                        worker: 0,
                    });
                    artifact
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, usize, S::Artifact)>();
        let mut slots: Vec<Option<S::Artifact>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);

        std::thread::scope(|scope| {
            for worker in 0..self.jobs.min(total) {
                let tx = tx.clone();
                let next = &next;
                let entries = &campaign.entries;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= entries.len() {
                        break;
                    }
                    let (seed, scenario) = &entries[index];
                    let artifact = scenario.run(*seed);
                    // The receiver outlives all workers; a send only
                    // fails if the main thread panicked, in which case
                    // the scope is unwinding anyway.
                    if tx.send((index, worker, artifact)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Progress callbacks run here on the calling thread, so
            // `progress` needs neither Send nor Sync.
            for done in 1..=total {
                let (index, worker, artifact) = rx
                    .recv()
                    .expect("a worker panicked while running a scenario");
                slots[index] = Some(artifact);
                progress(ProgressEvent {
                    index,
                    done,
                    total,
                    elapsed: started.elapsed(),
                    worker,
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("every submission index completed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scenario that spends its seed on something order-sensitive.
    struct Mix(u64);

    impl Scenario for Mix {
        type Artifact = u64;

        fn run(&self, seed: u64) -> u64 {
            let mut acc = seed ^ self.0;
            for _ in 0..1000 {
                acc = csig_netsim::rng::splitmix64(acc);
            }
            acc
        }
    }

    fn campaign(n: u64) -> Campaign<Mix> {
        let mut c = Campaign::new(0xC0FFEE);
        for i in 0..n {
            c.push(Mix(i));
        }
        c
    }

    #[test]
    fn push_uses_the_one_based_tag_scheme() {
        let c = campaign(4);
        for (i, (seed, _)) in c.iter().enumerate() {
            assert_eq!(*seed, derive_seed(0xC0FFEE, i as u64 + 1));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = campaign(37);
        let seq = Executor::sequential().run(&c);
        for jobs in [2, 4, 8] {
            assert_eq!(Executor::new(jobs).run(&c), seq, "jobs={jobs}");
        }
    }

    #[test]
    fn closures_are_scenarios() {
        let mut c = Campaign::new(7);
        for _ in 0..5 {
            c.push(|seed: u64| seed.wrapping_mul(3));
        }
        let out = Executor::new(4).run(&c);
        assert_eq!(out.len(), 5);
        for (got, (seed, _)) in out.iter().zip(c.iter()) {
            assert_eq!(*got, seed.wrapping_mul(3));
        }
    }

    #[test]
    fn progress_events_cover_every_scenario() {
        let c = campaign(16);
        let mut events = Vec::new();
        let out = Executor::new(4).run_with_progress(&c, |e| events.push(e));
        assert_eq!(out.len(), 16);
        assert_eq!(events.len(), 16);
        // `done` counts up in arrival order; indices form a permutation.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.done, i + 1);
            assert_eq!(e.total, 16);
            assert!(e.worker < 4);
        }
        let mut indices: Vec<usize> = events.iter().map(|e| e.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_progress_is_in_submission_order() {
        let c = campaign(5);
        let mut seen = Vec::new();
        Executor::sequential().run_with_progress(&c, |e| {
            assert_eq!(e.worker, 0);
            seen.push(e.index);
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert_eq!(Executor::new(0).jobs(), default_jobs());
        assert!(Executor::new(3).jobs() == 3);
    }
}
