//! Unified Scenario/Campaign execution layer.
//!
//! Every experiment in this workspace has the same shape: a list of
//! self-contained simulation units, each parameterized by a derived
//! seed, whose results are collected in order and then analyzed. This
//! crate factors that shape out of the per-experiment loops:
//!
//! * [`Scenario`] — one self-contained unit of simulation. Given its
//!   seed it produces a typed artifact; it must not depend on any other
//!   scenario having run.
//! * [`Campaign`] — an ordered collection of scenarios, each paired
//!   with a seed derived from the campaign's master seed (or supplied
//!   explicitly for experiments with bespoke seed schemes).
//! * [`Executor`] — runs a campaign either sequentially or across a
//!   `std::thread::scope` worker pool, merging artifacts in
//!   **submission order** so a parallel run is byte-identical to a
//!   sequential one, and reporting per-scenario completion through a
//!   [`ProgressEvent`] callback.
//!
//! Determinism contract: each scenario's randomness must come only
//! from its seed, so the artifact vector depends only on the campaign
//! definition — never on `jobs`, thread scheduling, or wall-clock.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cli;

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use csig_netsim::rng::derive_seed;
use csig_obs::MetricsRegistry;

/// One self-contained, seed-parameterized unit of simulation.
///
/// `run` must be a pure function of `self` and `seed`: no shared
/// mutable state, no ordering dependence on other scenarios. That is
/// what lets the executor schedule scenarios on any worker in any
/// order and still merge a deterministic result.
pub trait Scenario {
    /// The result of running this scenario.
    type Artifact: Send;

    /// Execute the scenario with the given seed.
    fn run(&self, seed: u64) -> Self::Artifact;
}

/// Any closure `(seed) -> artifact` is a scenario; campaigns over
/// heterogeneous work can box closures instead of defining a type.
impl<A: Send, F: Fn(u64) -> A> Scenario for F {
    type Artifact = A;

    fn run(&self, seed: u64) -> A {
        self(seed)
    }
}

/// An ordered collection of seeded scenarios.
#[derive(Debug, Clone)]
pub struct Campaign<S> {
    master_seed: u64,
    entries: Vec<(u64, S)>,
}

impl<S> Campaign<S> {
    /// An empty campaign with the given master seed.
    pub fn new(master_seed: u64) -> Self {
        Campaign {
            master_seed,
            entries: Vec::new(),
        }
    }

    /// The master seed scenarios' seeds are derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Append a scenario, deriving its seed as
    /// `derive_seed(master_seed, n)` where `n` is its 1-based position
    /// — the tag scheme the experiments in this workspace already use,
    /// so refactoring a hand-rolled loop onto a campaign preserves
    /// every per-scenario seed.
    pub fn push(&mut self, scenario: S) {
        let tag = self.entries.len() as u64 + 1;
        self.entries
            .push((derive_seed(self.master_seed, tag), scenario));
    }

    /// Append a scenario with an explicitly derived seed, for
    /// experiments whose seed scheme is not the 1-based tag.
    pub fn push_seeded(&mut self, seed: u64, scenario: S) {
        self.entries.push((seed, scenario));
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the campaign holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(seed, scenario)` pairs in submission order.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, S)> {
        self.entries.iter()
    }
}

/// Completion notice for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Submission index of the scenario that just finished.
    pub index: usize,
    /// How many scenarios have finished so far (including this one).
    pub done: usize,
    /// Total scenarios in the campaign.
    pub total: usize,
    /// Wall-clock time since the campaign started.
    pub elapsed: Duration,
    /// Id of the worker that ran it (0 for a sequential run).
    pub worker: usize,
    /// Whether the scenario produced an artifact (`false`: it panicked
    /// or overran the deadline).
    pub ok: bool,
    /// Wall-clock time this scenario itself ran (not campaign time).
    pub scenario_elapsed: Duration,
}

/// Why a scenario failed to produce an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The scenario panicked; the worker caught the unwind.
    Panicked,
    /// The scenario finished after the executor's per-scenario deadline.
    /// Scenarios run on ordinary OS threads and cannot be interrupted,
    /// so the deadline is *soft*: the overrun is detected at completion
    /// and the late artifact is discarded.
    DeadlineExceeded,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panicked => write!(f, "panicked"),
            FailureKind::DeadlineExceeded => write!(f, "exceeded deadline"),
        }
    }
}

/// Structured record of a scenario that failed: everything needed to
/// reproduce it (`seed`) and triage it (panic payload, timing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Submission index within the campaign.
    pub index: usize,
    /// The seed the scenario ran with — rerunning the same scenario
    /// with this seed reproduces the failure deterministically.
    pub seed: u64,
    /// What went wrong.
    pub kind: FailureKind,
    /// The panic payload (if it was a string), or a timing description.
    pub message: String,
    /// How long the scenario ran before failing.
    pub elapsed: Duration,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario {} (seed {:#018x}) {} after {:.2}s: {}",
            self.index,
            self.seed,
            self.kind,
            self.elapsed.as_secs_f64(),
            self.message
        )
    }
}

impl std::error::Error for ScenarioError {}

/// Outcome of one scenario in an isolated run.
pub type ScenarioOutcome<A> = Result<A, ScenarioError>;

/// Results of a fault-isolated campaign run: one outcome per scenario,
/// in submission order. A panicking or overrunning scenario becomes a
/// [`ScenarioError`] entry; every other scenario still completes and
/// its artifact is byte-identical to what a run without the failing
/// scenario would produce (scenario seeds are fixed at submission).
#[derive(Debug)]
pub struct CampaignRun<A> {
    /// Per-scenario outcomes in submission order.
    pub outcomes: Vec<ScenarioOutcome<A>>,
}

impl<A> CampaignRun<A> {
    /// The failures, in submission order.
    pub fn failures(&self) -> Vec<&ScenarioError> {
        self.outcomes
            .iter()
            .filter_map(|o| o.as_ref().err())
            .collect()
    }

    /// Whether every scenario produced an artifact.
    pub fn is_success(&self) -> bool {
        self.outcomes.iter().all(Result::is_ok)
    }

    /// The artifacts of successful scenarios, in submission order
    /// (failed scenarios are skipped).
    pub fn artifacts(self) -> Vec<A> {
        self.outcomes.into_iter().filter_map(Result::ok).collect()
    }

    /// End-of-campaign failure summary: one line per failure, or a
    /// success note.
    pub fn summary(&self) -> String {
        let failures = self.failures();
        if failures.is_empty() {
            return format!("all {} scenarios succeeded", self.outcomes.len());
        }
        let mut s = format!(
            "{}/{} scenarios failed:",
            failures.len(),
            self.outcomes.len()
        );
        for e in failures {
            s.push_str("\n  ");
            s.push_str(&e.to_string());
        }
        s
    }

    /// All artifacts, panicking with the failure summary if any
    /// scenario failed — the strict path [`Executor::run`] uses.
    pub fn expect_artifacts(self) -> Vec<A> {
        if !self.is_success() {
            panic!("{}", self.summary());
        }
        self.artifacts()
    }
}

/// Render a caught panic payload (string payloads pass through).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker count for `--jobs 0` / unspecified: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs campaigns; `jobs` controls the worker pool size.
///
/// Scenarios run fault-isolated: a panic inside [`Scenario::run`] is
/// caught in the worker and turned into a [`ScenarioError`] carrying
/// the panic payload and the scenario's seed; the rest of the campaign
/// completes. An optional soft per-scenario deadline discards late
/// artifacts the same way. The strict entry points ([`Executor::run`],
/// [`Executor::run_with_progress`]) keep their historical contract —
/// any failure aborts with the end-of-campaign summary — while
/// [`Executor::run_isolated`] exposes the per-scenario outcomes.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    jobs: usize,
    deadline: Option<Duration>,
}

impl Executor {
    /// An executor with the given worker count (`0` means
    /// [`default_jobs`]) and no deadline.
    pub fn new(jobs: usize) -> Self {
        Executor {
            jobs: if jobs == 0 { default_jobs() } else { jobs },
            deadline: None,
        }
    }

    /// A single-worker executor (runs on the calling thread).
    pub fn sequential() -> Self {
        Executor::new(1)
    }

    /// Builder: set (or clear) the soft per-scenario deadline. A
    /// scenario that finishes after the deadline is reported as
    /// [`FailureKind::DeadlineExceeded`] and its artifact discarded;
    /// running scenarios are never interrupted mid-flight.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The soft per-scenario deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Run the campaign, returning artifacts in submission order.
    ///
    /// # Panics
    /// Panics with the failure summary if any scenario panicked or
    /// overran the deadline (after every other scenario completed).
    /// Use [`Executor::run_isolated`] to handle failures structurally.
    pub fn run<S>(&self, campaign: &Campaign<S>) -> Vec<S::Artifact>
    where
        S: Scenario + Sync,
    {
        self.run_with_progress(campaign, |_| {})
    }

    /// Like [`Executor::run`] with a progress callback; panics with the
    /// failure summary if any scenario failed.
    pub fn run_with_progress<S, F>(&self, campaign: &Campaign<S>, progress: F) -> Vec<S::Artifact>
    where
        S: Scenario + Sync,
        F: FnMut(ProgressEvent),
    {
        self.run_isolated_with_progress(campaign, progress)
            .expect_artifacts()
    }

    /// Run the campaign fault-isolated, returning one
    /// [`ScenarioOutcome`] per scenario in submission order.
    pub fn run_isolated<S>(&self, campaign: &Campaign<S>) -> CampaignRun<S::Artifact>
    where
        S: Scenario + Sync,
    {
        self.run_isolated_with_progress(campaign, |_| {})
    }

    /// Run the campaign fault-isolated, invoking `progress` on the
    /// calling thread as each scenario completes. Outcomes come back
    /// in submission order regardless of `jobs`; only the order of
    /// progress events reflects actual completion order.
    pub fn run_isolated_with_progress<S, F>(
        &self,
        campaign: &Campaign<S>,
        mut progress: F,
    ) -> CampaignRun<S::Artifact>
    where
        S: Scenario + Sync,
        F: FnMut(ProgressEvent),
    {
        let total = campaign.len();
        let started = Instant::now();

        if self.jobs <= 1 || total <= 1 {
            let outcomes = campaign
                .entries
                .iter()
                .enumerate()
                .map(|(index, (seed, scenario))| {
                    let (outcome, scenario_elapsed) =
                        run_one(scenario, *seed, index, self.deadline);
                    progress(ProgressEvent {
                        index,
                        done: index + 1,
                        total,
                        elapsed: started.elapsed(),
                        worker: 0,
                        ok: outcome.is_ok(),
                        scenario_elapsed,
                    });
                    outcome
                })
                .collect();
            return CampaignRun { outcomes };
        }

        let next = AtomicUsize::new(0);
        type Done<A> = (usize, usize, ScenarioOutcome<A>, Duration);
        let (tx, rx) = mpsc::channel::<Done<S::Artifact>>();
        let mut slots: Vec<Option<ScenarioOutcome<S::Artifact>>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        let deadline = self.deadline;

        std::thread::scope(|scope| {
            for worker in 0..self.jobs.min(total) {
                let tx = tx.clone();
                let next = &next;
                let entries = &campaign.entries;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= entries.len() {
                        break;
                    }
                    let (seed, scenario) = &entries[index];
                    let (outcome, scenario_elapsed) = run_one(scenario, *seed, index, deadline);
                    // The receiver outlives all workers; a send only
                    // fails if the main thread panicked, in which case
                    // the scope is unwinding anyway.
                    if tx.send((index, worker, outcome, scenario_elapsed)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Progress callbacks run here on the calling thread, so
            // `progress` needs neither Send nor Sync. Every worker
            // sends exactly one outcome per claimed index (panics are
            // caught inside `run_one`), so `total` messages arrive.
            for done in 1..=total {
                let Ok((index, worker, outcome, scenario_elapsed)) = rx.recv() else {
                    unreachable!("workers cannot die: scenario panics are caught");
                };
                progress(ProgressEvent {
                    index,
                    done,
                    total,
                    elapsed: started.elapsed(),
                    worker,
                    ok: outcome.is_ok(),
                    scenario_elapsed,
                });
                slots[index] = Some(outcome);
            }
        });

        let outcomes = slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| match slot {
                Some(outcome) => outcome,
                None => unreachable!("scenario {index} neither completed nor failed"),
            })
            .collect();
        CampaignRun { outcomes }
    }

    /// Like [`Executor::run_isolated_with_progress`], but also records
    /// campaign-level execution metrics into `reg`:
    ///
    /// * `exec.scenarios_ok` / `exec.scenarios_failed` — counters of
    ///   scenario outcomes;
    /// * `exec.campaign_scenarios_hwm` — gauge of the largest campaign
    ///   this registry has seen;
    /// * `time.scenario_wall_us` — wall-clock histogram of per-scenario
    ///   run time (non-deterministic, stripped by
    ///   [`csig_obs::Snapshot::deterministic`]).
    ///
    /// Only the outcome counters are deterministic — they depend on
    /// scenario behavior, not scheduling. The wall-time histogram is
    /// registered through [`MetricsRegistry::timer`] so deterministic
    /// snapshots stay jobs-invariant.
    pub fn run_observed_with_progress<S, F>(
        &self,
        campaign: &Campaign<S>,
        reg: &MetricsRegistry,
        mut progress: F,
    ) -> CampaignRun<S::Artifact>
    where
        S: Scenario + Sync,
        F: FnMut(ProgressEvent),
    {
        let ok = reg.counter("exec.scenarios_ok");
        let failed = reg.counter("exec.scenarios_failed");
        let wall = reg.timer("time.scenario_wall_us");
        reg.gauge("exec.campaign_scenarios_hwm")
            .record(campaign.len() as u64);
        self.run_isolated_with_progress(campaign, |event| {
            if event.ok {
                ok.inc();
            } else {
                failed.inc();
            }
            wall.record(event.scenario_elapsed.as_micros() as u64);
            progress(event);
        })
    }
}

/// Whether `elapsed` overran a soft `deadline`. The comparison is
/// **strict**: a scenario finishing exactly at the deadline is on time
/// (`--deadline 5` means "may use up to 5 seconds", not "must finish
/// strictly inside 5 seconds"), and no deadline means nothing is ever
/// late.
fn deadline_exceeded(elapsed: Duration, deadline: Option<Duration>) -> bool {
    matches!(deadline, Some(d) if elapsed > d)
}

/// Run one scenario under `catch_unwind`, applying the soft deadline.
/// Returns the outcome plus the scenario's own wall-clock time.
///
/// `AssertUnwindSafe` is sound here because a failed scenario's state
/// is never observed again: scenarios are `Fn(&self, seed)` over shared
/// immutable state, and the executor drops nothing mid-campaign.
fn run_one<S: Scenario>(
    scenario: &S,
    seed: u64,
    index: usize,
    deadline: Option<Duration>,
) -> (ScenarioOutcome<S::Artifact>, Duration) {
    let started = Instant::now();
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| scenario.run(seed)));
    let elapsed = started.elapsed();
    let outcome = match result {
        Ok(artifact) => {
            if deadline_exceeded(elapsed, deadline) {
                let Some(d) = deadline else {
                    unreachable!("deadline_exceeded is false without a deadline")
                };
                Err(ScenarioError {
                    index,
                    seed,
                    kind: FailureKind::DeadlineExceeded,
                    message: format!(
                        "ran {:.2}s against a {:.2}s deadline",
                        elapsed.as_secs_f64(),
                        d.as_secs_f64()
                    ),
                    elapsed,
                })
            } else {
                Ok(artifact)
            }
        }
        Err(payload) => Err(ScenarioError {
            index,
            seed,
            kind: FailureKind::Panicked,
            message: panic_message(payload.as_ref()),
            elapsed,
        }),
    };
    (outcome, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scenario that spends its seed on something order-sensitive.
    struct Mix(u64);

    impl Scenario for Mix {
        type Artifact = u64;

        fn run(&self, seed: u64) -> u64 {
            let mut acc = seed ^ self.0;
            for _ in 0..1000 {
                acc = csig_netsim::rng::splitmix64(acc);
            }
            acc
        }
    }

    fn campaign(n: u64) -> Campaign<Mix> {
        let mut c = Campaign::new(0xC0FFEE);
        for i in 0..n {
            c.push(Mix(i));
        }
        c
    }

    #[test]
    fn push_uses_the_one_based_tag_scheme() {
        let c = campaign(4);
        for (i, (seed, _)) in c.iter().enumerate() {
            assert_eq!(*seed, derive_seed(0xC0FFEE, i as u64 + 1));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = campaign(37);
        let seq = Executor::sequential().run(&c);
        for jobs in [2, 4, 8] {
            assert_eq!(Executor::new(jobs).run(&c), seq, "jobs={jobs}");
        }
    }

    #[test]
    fn closures_are_scenarios() {
        let mut c = Campaign::new(7);
        for _ in 0..5 {
            c.push(|seed: u64| seed.wrapping_mul(3));
        }
        let out = Executor::new(4).run(&c);
        assert_eq!(out.len(), 5);
        for (got, (seed, _)) in out.iter().zip(c.iter()) {
            assert_eq!(*got, seed.wrapping_mul(3));
        }
    }

    #[test]
    fn progress_events_cover_every_scenario() {
        let c = campaign(16);
        let mut events = Vec::new();
        let out = Executor::new(4).run_with_progress(&c, |e| events.push(e));
        assert_eq!(out.len(), 16);
        assert_eq!(events.len(), 16);
        // `done` counts up in arrival order; indices form a permutation.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.done, i + 1);
            assert_eq!(e.total, 16);
            assert!(e.worker < 4);
        }
        let mut indices: Vec<usize> = events.iter().map(|e| e.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_progress_is_in_submission_order() {
        let c = campaign(5);
        let mut seen = Vec::new();
        Executor::sequential().run_with_progress(&c, |e| {
            assert_eq!(e.worker, 0);
            seen.push(e.index);
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert_eq!(Executor::new(0).jobs(), default_jobs());
        assert!(Executor::new(3).jobs() == 3);
    }

    /// A scenario that optionally panics — for isolation tests.
    enum Maybe {
        Good(u64),
        Panic,
        Slow,
    }

    impl Scenario for Maybe {
        type Artifact = u64;

        fn run(&self, seed: u64) -> u64 {
            match self {
                Maybe::Good(x) => {
                    let mut acc = seed ^ x;
                    for _ in 0..100 {
                        acc = csig_netsim::rng::splitmix64(acc);
                    }
                    acc
                }
                Maybe::Panic => panic!("deliberate failure"),
                Maybe::Slow => {
                    std::thread::sleep(Duration::from_millis(50));
                    seed
                }
            }
        }
    }

    /// Suppress the default panic hook's stderr spew for the duration
    /// of a test that deliberately panics inside workers.
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn panicking_scenario_is_isolated_and_artifacts_are_identical() {
        // Fixed explicit seeds so removing the bad scenario does not
        // shift anyone else's seed.
        let mut with_bad = Campaign::new(0);
        let mut without_bad = Campaign::new(0);
        for i in 0..12u64 {
            if i == 5 {
                with_bad.push_seeded(999, Maybe::Panic);
                continue;
            }
            with_bad.push_seeded(100 + i, Maybe::Good(i));
            without_bad.push_seeded(100 + i, Maybe::Good(i));
        }
        let (run, clean) = quiet_panics(|| {
            let run = Executor::new(4).run_isolated(&with_bad);
            let clean = Executor::new(4).run(&without_bad);
            (run, clean)
        });
        assert!(!run.is_success());
        let failures = run.failures();
        assert_eq!(failures.len(), 1);
        let e = failures[0];
        assert_eq!(e.index, 5);
        assert_eq!(e.seed, 999);
        assert_eq!(e.kind, FailureKind::Panicked);
        assert_eq!(e.message, "deliberate failure");
        assert!(run.summary().contains("1/12 scenarios failed"));
        // Non-failing scenarios match a run that never had the bad one.
        assert_eq!(run.artifacts(), clean);
    }

    #[test]
    fn progress_reports_failures() {
        let mut c = Campaign::new(0);
        c.push_seeded(1, Maybe::Good(1));
        c.push_seeded(2, Maybe::Panic);
        let mut not_ok = vec![];
        let run = quiet_panics(|| {
            Executor::sequential().run_isolated_with_progress(&c, |e| {
                if !e.ok {
                    not_ok.push(e.index);
                }
            })
        });
        assert_eq!(not_ok, vec![1]);
        assert!(run.outcomes[0].is_ok());
        assert!(run.outcomes[1].is_err());
    }

    #[test]
    #[should_panic(expected = "scenarios failed")]
    fn strict_run_panics_with_summary() {
        let mut c = Campaign::new(0);
        c.push_seeded(1, Maybe::Panic);
        c.push_seeded(2, Maybe::Good(0));
        quiet_panics(|| Executor::new(2).run(&c));
    }

    #[test]
    fn soft_deadline_discards_late_artifacts() {
        let mut c = Campaign::new(0);
        c.push_seeded(1, Maybe::Good(1));
        c.push_seeded(2, Maybe::Slow);
        let run = Executor::sequential()
            .with_deadline(Some(Duration::from_millis(5)))
            .run_isolated(&c);
        assert!(run.outcomes[0].is_ok(), "fast scenario unaffected");
        let e = run.outcomes[1].as_ref().expect_err("slow scenario late");
        assert_eq!(e.kind, FailureKind::DeadlineExceeded);
        assert_eq!(e.seed, 2);
        assert!(e.elapsed >= Duration::from_millis(50));
    }

    #[test]
    fn no_deadline_means_no_failures() {
        let mut c = Campaign::new(0);
        c.push_seeded(2, Maybe::Slow);
        let run = Executor::sequential().run_isolated(&c);
        assert!(run.is_success());
        assert_eq!(run.summary(), "all 1 scenarios succeeded");
    }

    /// Regression: a scenario finishing *exactly* at the deadline must
    /// not be reported as timed out — the comparison is strict.
    #[test]
    fn finishing_exactly_at_the_deadline_is_on_time() {
        let d = Duration::from_secs(5);
        assert!(!deadline_exceeded(d, Some(d)), "elapsed == deadline is OK");
        assert!(!deadline_exceeded(d - Duration::from_nanos(1), Some(d)));
        assert!(deadline_exceeded(d + Duration::from_nanos(1), Some(d)));
        assert!(!deadline_exceeded(Duration::from_secs(1_000_000), None));
    }

    #[test]
    fn progress_carries_per_scenario_elapsed() {
        let mut c = Campaign::new(0);
        c.push_seeded(1, Maybe::Good(1));
        c.push_seeded(2, Maybe::Slow);
        let mut per_scenario = Vec::new();
        Executor::sequential().run_with_progress(&c, |e| {
            per_scenario.push((e.index, e.scenario_elapsed));
        });
        let slow = per_scenario
            .iter()
            .find(|(i, _)| *i == 1)
            .map(|(_, d)| *d)
            .expect("slow scenario reported");
        assert!(slow >= Duration::from_millis(50), "slow elapsed {slow:?}");
    }

    #[test]
    fn observed_run_counts_outcomes_and_wall_time() {
        let reg = csig_obs::MetricsRegistry::new();
        let mut c = Campaign::new(0);
        c.push_seeded(1, Maybe::Good(1));
        c.push_seeded(2, Maybe::Good(2));
        c.push_seeded(3, Maybe::Panic);
        let run = quiet_panics(|| Executor::new(2).run_observed_with_progress(&c, &reg, |_| {}));
        assert_eq!(run.failures().len(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("exec.scenarios_ok"), Some(2));
        assert_eq!(snap.counter("exec.scenarios_failed"), Some(1));
        assert_eq!(snap.gauge("exec.campaign_scenarios_hwm"), Some(3));
        let wall = snap.histogram("time.scenario_wall_us").expect("timer");
        assert_eq!(wall.count, 3);
        // Wall time is non-deterministic: stripped from the contract view.
        assert!(snap
            .deterministic()
            .histogram("time.scenario_wall_us")
            .is_none());
    }
}
