//! The paper's two flow features, computed from slow-start RTT samples.
//!
//! * **NormDiff** — `(max RTT − min RTT) / max RTT`: how much of the
//!   eventual RTT the flow itself added by filling the bottleneck
//!   buffer.
//! * **CoV** — `stddev(RTT) / mean(RTT)`: how much the RTT varied while
//!   the window ramped.
//!
//! Flows with fewer than [`MIN_SAMPLES`] slow-start samples are
//! rejected, exactly as in §3.2 of the paper ("for statistical
//! validity, we discard flows that have fewer than 10 RTT samples
//! during slow-start").

use crate::stats::Summary;
use csig_trace::{RttSample, SlowStart};
use serde::{Deserialize, Serialize};

/// Minimum slow-start RTT samples required for a valid feature vector.
pub const MIN_SAMPLES: usize = 10;

/// The two congestion classes the paper distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CongestionClass {
    /// The flow itself filled an otherwise idle bottleneck buffer
    /// (typical of an access-link bottleneck).
    SelfInduced,
    /// The flow started behind an already congested link (typical of a
    /// congested interconnect).
    External,
}

impl CongestionClass {
    /// Class index used by the decision tree (self-induced = 0).
    pub fn index(self) -> usize {
        match self {
            CongestionClass::SelfInduced => 0,
            CongestionClass::External => 1,
        }
    }

    /// Inverse of [`CongestionClass::index`].
    ///
    /// # Panics
    /// Panics on an index other than 0 or 1.
    pub fn from_index(idx: usize) -> Self {
        match idx {
            0 => CongestionClass::SelfInduced,
            1 => CongestionClass::External,
            other => panic!("invalid class index {other}"),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CongestionClass::SelfInduced => "self",
            CongestionClass::External => "external",
        }
    }
}

impl std::fmt::Display for CongestionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The classifier's input features for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowFeatures {
    /// `(max − min) / max` of slow-start RTT.
    pub norm_diff: f64,
    /// Coefficient of variation of slow-start RTT.
    pub cov: f64,
    /// Number of slow-start RTT samples the features were computed from.
    pub samples: usize,
    /// Minimum slow-start RTT in milliseconds (diagnostic).
    pub min_rtt_ms: f64,
    /// Maximum slow-start RTT in milliseconds (diagnostic).
    pub max_rtt_ms: f64,
}

impl FlowFeatures {
    /// The feature vector in the order the decision tree consumes it.
    pub fn as_vector(&self) -> [f64; 2] {
        [self.norm_diff, self.cov]
    }
}

/// Why a flow produced no feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureError {
    /// Fewer than [`MIN_SAMPLES`] slow-start RTT samples.
    TooFewSamples {
        /// How many samples were available.
        got: usize,
    },
    /// RTT samples were degenerate (max = 0).
    DegenerateRtt,
}

impl std::fmt::Display for FeatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureError::TooFewSamples { got } => {
                write!(f, "only {got} slow-start RTT samples (need {MIN_SAMPLES})")
            }
            FeatureError::DegenerateRtt => write!(f, "degenerate RTT samples"),
        }
    }
}

impl std::error::Error for FeatureError {}

/// Online feature accumulator: the streaming core behind
/// [`features_from_rtts_ms`].
///
/// Wraps the one-pass [`Summary`] (Welford), so NormDiff and CoV update
/// per RTT sample in O(1) state — no sample vector is retained. Pushing
/// samples in trace order produces bit-identical floats to the batch
/// path, which folds the same `Summary` over the same values.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeatureAccumulator {
    summary: Summary,
}

impl Default for FeatureAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        FeatureAccumulator {
            summary: Summary::new(),
        }
    }

    /// Add one slow-start RTT sample, in milliseconds.
    pub fn push(&mut self, rtt_ms: f64) {
        self.summary.push(rtt_ms);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> usize {
        self.summary.count() as usize
    }

    /// The feature vector implied by the samples seen so far.
    pub fn finish(&self) -> Result<FlowFeatures, FeatureError> {
        let got = self.count();
        if got < MIN_SAMPLES {
            return Err(FeatureError::TooFewSamples { got });
        }
        let (Some(max), Some(min)) = (self.summary.max(), self.summary.min()) else {
            unreachable!("count checked non-zero above")
        };
        // NaN must be checked explicitly — `<= 0.0` lets it through
        // into the divisions below. A zero mean with a positive max
        // cannot happen with physical (non-negative) RTTs, but negative
        // garbage samples could manufacture it and CoV would divide by
        // it.
        let mean = self.summary.mean();
        if max.is_nan() || max <= 0.0 || mean.is_nan() || mean <= 0.0 {
            return Err(FeatureError::DegenerateRtt);
        }
        Ok(FlowFeatures {
            norm_diff: (max - min) / max,
            cov: self.summary.cov(),
            samples: got,
            min_rtt_ms: min,
            max_rtt_ms: max,
        })
    }
}

/// Compute features from raw RTT values in milliseconds.
///
/// Thin wrapper over [`FeatureAccumulator`]: replays the values through
/// the streaming core.
pub fn features_from_rtts_ms(rtts_ms: &[f64]) -> Result<FlowFeatures, FeatureError> {
    let mut acc = FeatureAccumulator::new();
    for &v in rtts_ms {
        acc.push(v);
    }
    acc.finish()
}

/// Compute features from trace-extracted samples, windowed to slow
/// start.
pub fn features_from_samples(
    samples: &[RttSample],
    ss: &SlowStart,
) -> Result<FlowFeatures, FeatureError> {
    let boundary = ss.boundary();
    let rtts: Vec<f64> = samples
        .iter()
        .filter(|s| s.at <= boundary)
        .map(|s| s.rtt.as_millis_f64())
        .collect();
    features_from_rtts_ms(&rtts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_netsim::{SimDuration, SimTime};
    use proptest::prelude::*;

    #[test]
    fn self_induced_shape_has_high_features() {
        // RTT ramping 40 → 140 ms (buffer filling).
        let rtts: Vec<f64> = (0..20).map(|i| 40.0 + 5.0 * i as f64).collect();
        let f = features_from_rtts_ms(&rtts).unwrap();
        assert!((f.norm_diff - (135.0 - 40.0) / 135.0).abs() < 1e-12);
        assert!(f.cov > 0.2, "cov {}", f.cov);
        assert_eq!(f.samples, 20);
    }

    #[test]
    fn external_shape_has_low_features() {
        // RTT pinned near 90 ms by a full buffer, small noise.
        let rtts: Vec<f64> = (0..20).map(|i| 90.0 + (i % 3) as f64).collect();
        let f = features_from_rtts_ms(&rtts).unwrap();
        assert!(f.norm_diff < 0.05, "norm_diff {}", f.norm_diff);
        assert!(f.cov < 0.02, "cov {}", f.cov);
    }

    #[test]
    fn too_few_samples_rejected() {
        let rtts = vec![50.0; MIN_SAMPLES - 1];
        assert_eq!(
            features_from_rtts_ms(&rtts),
            Err(FeatureError::TooFewSamples {
                got: MIN_SAMPLES - 1
            })
        );
    }

    #[test]
    fn degenerate_rtts_rejected() {
        let rtts = vec![0.0; MIN_SAMPLES];
        assert_eq!(
            features_from_rtts_ms(&rtts),
            Err(FeatureError::DegenerateRtt)
        );
    }

    #[test]
    fn zero_mean_with_positive_max_rejected() {
        // Samples averaging to zero would make CoV divide by zero even
        // though max > 0; such flows must be rejected, not classified.
        let mut rtts = vec![0.0; MIN_SAMPLES];
        rtts[0] = 5.0;
        rtts[1] = -5.0;
        assert_eq!(
            features_from_rtts_ms(&rtts),
            Err(FeatureError::DegenerateRtt)
        );
    }

    #[test]
    fn windowing_respects_slow_start_boundary() {
        let mk = |ms: u64, rtt: u64| RttSample {
            at: SimTime::from_millis(ms),
            rtt: SimDuration::from_millis(rtt),
            seq_end: 0,
        };
        // 10 in-window constant samples + ramping ones after boundary.
        let mut samples: Vec<RttSample> = (0..10).map(|i| mk(i, 50)).collect();
        samples.extend((0..10).map(|i| mk(100 + i, 50 + 10 * i)));
        let ss = SlowStart {
            first_data_at: Some(SimTime::ZERO),
            end: Some(SimTime::from_millis(50)),
            bytes_acked: 0,
        };
        let f = features_from_samples(&samples, &ss).unwrap();
        assert_eq!(f.samples, 10);
        assert_eq!(f.norm_diff, 0.0);
        assert_eq!(f.cov, 0.0);
    }

    #[test]
    fn congestion_class_roundtrip() {
        for c in [CongestionClass::SelfInduced, CongestionClass::External] {
            assert_eq!(CongestionClass::from_index(c.index()), c);
        }
        assert_eq!(CongestionClass::SelfInduced.to_string(), "self");
        assert_eq!(CongestionClass::External.label(), "external");
    }

    #[test]
    fn error_display() {
        assert!(FeatureError::TooFewSamples { got: 3 }
            .to_string()
            .contains("3"));
        assert!(FeatureError::DegenerateRtt
            .to_string()
            .contains("degenerate"));
    }

    proptest! {
        #[test]
        fn prop_norm_diff_in_unit_interval(
            rtts in proptest::collection::vec(0.1f64..1e4, MIN_SAMPLES..100)
        ) {
            let f = features_from_rtts_ms(&rtts).unwrap();
            prop_assert!((0.0..=1.0).contains(&f.norm_diff));
            prop_assert!(f.cov >= 0.0);
            prop_assert!(f.min_rtt_ms <= f.max_rtt_ms);
        }

        #[test]
        fn prop_scale_invariance(
            rtts in proptest::collection::vec(1f64..1e3, MIN_SAMPLES..50),
            scale in 0.1f64..100.0
        ) {
            // Both features are dimensionless: scaling all RTTs by a
            // constant must not change them.
            let f1 = features_from_rtts_ms(&rtts).unwrap();
            let scaled: Vec<f64> = rtts.iter().map(|r| r * scale).collect();
            let f2 = features_from_rtts_ms(&scaled).unwrap();
            prop_assert!((f1.norm_diff - f2.norm_diff).abs() < 1e-9);
            prop_assert!((f1.cov - f2.cov).abs() < 1e-9);
        }

        #[test]
        fn prop_shift_reduces_both_features(
            rtts in proptest::collection::vec(1f64..1e3, MIN_SAMPLES..50),
            shift in 10f64..1e4
        ) {
            // Adding baseline latency (an already-full buffer) lowers
            // both NormDiff and CoV — the core of the paper's intuition.
            let f1 = features_from_rtts_ms(&rtts).unwrap();
            let shifted: Vec<f64> = rtts.iter().map(|r| r + shift).collect();
            let f2 = features_from_rtts_ms(&shifted).unwrap();
            prop_assert!(f2.norm_diff <= f1.norm_diff + 1e-9);
            prop_assert!(f2.cov <= f1.cov + 1e-9);
        }
    }
}
