//! # csig-features — flow feature extraction
//!
//! Computes the paper's two classifier inputs from slow-start RTT
//! samples: **NormDiff** (`(max − min) / max`) and **CoV**
//! (`stddev / mean`), plus the summary-statistics toolbox they are
//! built on ([`stats`]).
//!
//! The end-to-end path is: `csig-trace` extracts RTT samples and the
//! slow-start boundary from a server-side capture;
//! [`features_from_samples`] windows the samples and reduces them to a
//! [`FlowFeatures`] vector; `csig-dtree`/`csig-core` classify it.
//!
//! The streaming equivalents — [`FeatureAccumulator`] for online
//! NormDiff/CoV and [`FlowProbe`] for the whole per-flow measurement
//! pipeline as a [`PacketSink`](csig_netsim::PacketSink) — produce
//! bit-identical results without buffering samples or records.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod features;
pub mod probe;
pub mod stats;

pub use features::{
    features_from_rtts_ms, features_from_samples, CongestionClass, FeatureAccumulator,
    FeatureError, FlowFeatures, MIN_SAMPLES,
};
pub use probe::FlowProbe;
pub use stats::{ecdf, median, percentile, Summary};
