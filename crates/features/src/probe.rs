//! Single-flow streaming analyzer: the full per-flow measurement
//! pipeline as one [`PacketSink`].
//!
//! [`FlowProbe`] bundles the incremental cores from `csig-trace`
//! ([`RttExtractor`], [`SlowStartTracker`], [`ThroughputTracker`]) with
//! the online [`FeatureAccumulator`], consuming one packet record at a
//! time and retaining only bounded per-flow state — no trace is
//! buffered. Attached directly to a simulator node it replaces the
//! capture-then-post-process path; `csig-core`'s `LiveAnalyzer` routes
//! records of many flows to one probe each.
//!
//! ## Windowing invariant
//!
//! Records arrive in time order, so every RTT sample produced *before*
//! the slow-start boundary fires carries a timestamp at or before the
//! boundary and belongs in the feature window; once the boundary is
//! known, samples are admitted only when `at <= boundary`. This is
//! exactly the batch filter `s.at <= ss.boundary()`, applied online,
//! and the accumulator sees the samples in the same order the batch
//! path folds them — the resulting floats are bit-identical.

use crate::features::{FeatureAccumulator, FeatureError, FlowFeatures};
use csig_netsim::{FlowId, PacketRecord, PacketSink};
use csig_trace::{RttExtractor, SlowStart, SlowStartTracker, ThroughputSummary, ThroughputTracker};

/// Streaming per-flow analyzer: RTT extraction, slow-start detection,
/// throughput accounting and feature accumulation in one pass.
///
/// Records of other flows are ignored, so a probe can be attached as a
/// node-wide [`PacketSink`] on a multi-flow tap.
#[derive(Debug, Clone)]
pub struct FlowProbe {
    flow: FlowId,
    rtt: RttExtractor,
    ss: SlowStartTracker,
    tput: ThroughputTracker,
    acc: FeatureAccumulator,
    min_rtt_ms: Option<f64>,
    samples_total: usize,
    max_in_packet_id: Option<u64>,
    max_in_ack: Option<u32>,
    reorder_suspect: bool,
}

/// Wrapping 32-bit sequence comparison: is `a` strictly before `b`?
fn seq_lt(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < 0x8000_0000
}

impl FlowProbe {
    /// A fresh probe for one flow.
    pub fn new(flow: FlowId) -> Self {
        FlowProbe {
            flow,
            rtt: RttExtractor::new(),
            ss: SlowStartTracker::new(),
            tput: ThroughputTracker::new(),
            acc: FeatureAccumulator::new(),
            min_rtt_ms: None,
            samples_total: 0,
            max_in_packet_id: None,
            max_in_ack: None,
            reorder_suspect: false,
        }
    }

    /// The flow this probe measures.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Consume one record (records of other flows are ignored).
    pub fn push(&mut self, rec: &PacketRecord) {
        if rec.pkt.flow != self.flow {
            return;
        }
        self.watch_reordering(rec);
        let sample = self.rtt.push(rec);
        self.ss.push(rec);
        self.tput.push(rec);
        if let Some(s) = sample {
            self.samples_total += 1;
            let ms = s.rtt.as_millis_f64();
            self.min_rtt_ms = Some(match self.min_rtt_ms {
                Some(m) => m.min(ms),
                None => ms,
            });
            if s.at <= self.ss.boundary() {
                self.acc.push(ms);
            }
        }
    }

    /// Classifier features over the slow-start window seen so far.
    pub fn features(&self) -> Result<FlowFeatures, FeatureError> {
        self.acc.finish()
    }

    /// The slow-start window implied by the records seen so far.
    pub fn slow_start(&self) -> SlowStart {
        self.ss.snapshot()
    }

    /// Whole-flow goodput summary so far.
    pub fn throughput(&self) -> ThroughputSummary {
        self.tput.summary()
    }

    /// Late-slow-start capacity estimate (`None` while the window is
    /// open or degenerate).
    pub fn capacity_estimate_bps(&self) -> Option<f64> {
        self.ss.capacity_estimate_bps()
    }

    /// Minimum RTT over *all* samples (not just slow start), in
    /// milliseconds.
    pub fn min_rtt_ms(&self) -> Option<f64> {
        self.min_rtt_ms
    }

    /// Total RTT samples extracted (in and out of the window).
    pub fn samples_total(&self) -> usize {
        self.samples_total
    }

    /// Currently outstanding (sent, unacked, untainted) segments — the
    /// probe's only variable-size state, bounded by the flow's window.
    pub fn outstanding_len(&self) -> usize {
        self.rtt.outstanding_len()
    }

    /// Whether the probe saw evidence of network reordering on the
    /// inbound path: an arriving packet whose simulator-assigned id is
    /// below an id already seen (ids are assigned monotonically at send
    /// time), or a cumulative ACK that regresses below an ACK already
    /// received (duplicate ACKs — equal values — do not count, and
    /// SYN/FIN-bearing packets are exempt: teardown segments may carry a
    /// stale ACK field without any packet having been reordered). RTT
    /// samples taken near such events are unreliable, so reports built
    /// from this probe should be treated as degraded, not discarded.
    pub fn reorder_suspect(&self) -> bool {
        self.reorder_suspect
    }

    fn watch_reordering(&mut self, rec: &PacketRecord) {
        if rec.dir != csig_netsim::Direction::In {
            return;
        }
        let id = rec.pkt.id.0;
        match self.max_in_packet_id {
            Some(max) if id < max => self.reorder_suspect = true,
            Some(max) if id > max => self.max_in_packet_id = Some(id),
            None => self.max_in_packet_id = Some(id),
            _ => {}
        }
        if let Some(h) = rec.pkt.tcp() {
            if h.flags.ack() && !h.flags.syn() && !h.flags.fin() {
                match self.max_in_ack {
                    Some(max) if seq_lt(h.ack, max) => self.reorder_suspect = true,
                    Some(max) if seq_lt(max, h.ack) => self.max_in_ack = Some(h.ack),
                    None => self.max_in_ack = Some(h.ack),
                    _ => {}
                }
            }
        }
    }
}

impl PacketSink for FlowProbe {
    fn on_record(&mut self, rec: &PacketRecord) {
        self.push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_netsim::{
        Direction, NodeId, Packet, PacketId, PacketKind, SimTime, TcpFlags, TcpHeader, NO_SACK,
    };
    use csig_trace::{
        capacity_estimate_bps, detect_slow_start, extract_rtt_samples, throughput_summary,
        FlowTrace,
    };

    const ISS: u32 = 5000;

    fn rec(
        flow: u32,
        dir: Direction,
        t_ms: u64,
        seq: u32,
        ack: u32,
        len: u32,
        flags: TcpFlags,
    ) -> PacketRecord {
        PacketRecord {
            time: SimTime::from_millis(t_ms),
            dir,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(flow),
                src: NodeId(0),
                dst: NodeId(1),
                size: 52 + len,
                sent_at: SimTime::from_millis(t_ms),
                kind: PacketKind::Tcp(TcpHeader {
                    seq,
                    ack,
                    flags,
                    payload_len: len,
                    window: 65535,
                    sack: NO_SACK,
                }),
            },
        }
    }

    /// A hand-built single-flow exchange: handshake, an RTT ramp with
    /// enough clean samples, one retransmission, post-boundary acks.
    fn sample_records() -> Vec<PacketRecord> {
        let mut recs = vec![
            rec(1, Direction::In, 0, 900, 0, 0, TcpFlags::SYN),
            rec(
                1,
                Direction::Out,
                1,
                ISS,
                901,
                0,
                TcpFlags::SYN | TcpFlags::ACK,
            ),
            rec(1, Direction::In, 2, 901, ISS + 1, 0, TcpFlags::ACK),
        ];
        // 14 data/ack pairs with a growing RTT (the self-induced ramp).
        let mut off = 0u32;
        for i in 0u64..14 {
            let t = 10 + i * 20;
            recs.push(rec(
                1,
                Direction::Out,
                t,
                ISS + 1 + off,
                901,
                1000,
                TcpFlags::ACK,
            ));
            recs.push(rec(
                1,
                Direction::In,
                t + 10 + i,
                901,
                ISS + 1 + off + 1000,
                0,
                TcpFlags::ACK,
            ));
            off += 1000;
        }
        // Retransmission closes the slow-start window.
        recs.push(rec(
            1,
            Direction::Out,
            400,
            ISS + 1,
            901,
            1000,
            TcpFlags::ACK,
        ));
        // Fresh data + ack after the boundary (out of window).
        recs.push(rec(
            1,
            Direction::Out,
            420,
            ISS + 1 + off,
            901,
            1000,
            TcpFlags::ACK,
        ));
        recs.push(rec(
            1,
            Direction::In,
            470,
            901,
            ISS + 1 + off + 1000,
            0,
            TcpFlags::ACK,
        ));
        // An interleaved foreign flow the probe must ignore.
        recs.insert(5, rec(2, Direction::Out, 12, 7000, 0, 1000, TcpFlags::ACK));
        recs
    }

    #[test]
    fn probe_matches_batch_pipeline_exactly() {
        let records = sample_records();
        let mut probe = FlowProbe::new(FlowId(1));
        for r in &records {
            probe.on_record(r);
        }

        let trace = FlowTrace {
            flow: FlowId(1),
            records: records
                .iter()
                .filter(|r| r.pkt.flow == FlowId(1))
                .cloned()
                .collect(),
        };
        let samples = extract_rtt_samples(&trace);
        let ss = detect_slow_start(&trace);
        let batch_features = crate::features::features_from_samples(&samples, &ss);

        assert_eq!(probe.slow_start(), ss);
        assert!(ss.end.is_some(), "retransmission must close the window");
        assert_eq!(probe.features(), batch_features);
        assert_eq!(probe.throughput(), throughput_summary(&trace));
        assert_eq!(
            probe.capacity_estimate_bps(),
            capacity_estimate_bps(&trace, &ss)
        );
        assert_eq!(probe.samples_total(), samples.len());
        assert_eq!(
            probe.min_rtt_ms(),
            samples
                .iter()
                .map(|s| s.rtt.as_millis_f64())
                .reduce(f64::min)
        );
        let f = probe.features().unwrap();
        assert!(f.samples >= 10);
        assert!(f.norm_diff > 0.0);
    }

    #[test]
    fn clean_exchange_is_not_reorder_suspect() {
        let mut probe = FlowProbe::new(FlowId(1));
        for r in &sample_records() {
            probe.on_record(r);
        }
        assert!(!probe.reorder_suspect());
    }

    #[test]
    fn ack_regression_marks_reorder_suspect() {
        let mut probe = FlowProbe::new(FlowId(1));
        probe.push(&rec(
            1,
            Direction::In,
            10,
            901,
            ISS + 2000,
            0,
            TcpFlags::ACK,
        ));
        // Duplicate ACK: not reordering.
        probe.push(&rec(
            1,
            Direction::In,
            11,
            901,
            ISS + 2000,
            0,
            TcpFlags::ACK,
        ));
        assert!(!probe.reorder_suspect());
        // Regressing ACK: the network delivered out of order.
        probe.push(&rec(
            1,
            Direction::In,
            12,
            901,
            ISS + 1000,
            0,
            TcpFlags::ACK,
        ));
        assert!(probe.reorder_suspect());
    }

    #[test]
    fn packet_id_regression_marks_reorder_suspect() {
        let mk = |id: u64, t_ms: u64| {
            let mut r = rec(1, Direction::In, t_ms, 901, ISS + 1000, 0, TcpFlags::ACK);
            r.pkt.id = PacketId(id);
            r
        };
        let mut probe = FlowProbe::new(FlowId(1));
        probe.push(&mk(10, 1));
        probe.push(&mk(11, 2));
        // Same id (a fault-injected duplicate): not reordering.
        probe.push(&mk(11, 3));
        assert!(!probe.reorder_suspect());
        probe.push(&mk(9, 4));
        assert!(probe.reorder_suspect());
    }

    #[test]
    fn empty_probe_is_degenerate_like_empty_trace() {
        let probe = FlowProbe::new(FlowId(9));
        let empty = FlowTrace {
            flow: FlowId(9),
            records: vec![],
        };
        assert_eq!(probe.slow_start(), detect_slow_start(&empty));
        assert_eq!(probe.throughput(), throughput_summary(&empty));
        assert_eq!(probe.min_rtt_ms(), None);
        assert_eq!(
            probe.features(),
            Err(FeatureError::TooFewSamples { got: 0 })
        );
    }
}
