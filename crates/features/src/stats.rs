//! Summary statistics used by the feature extractor.

use serde::{Deserialize, Serialize};

/// One-pass summary of a sample set: count, mean, standard deviation,
/// extremes. Uses Welford's algorithm for numerical stability.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Summarize a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add one sample.
    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample");
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for the empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 with fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Minimum (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Coefficient of variation: `stddev / mean` (0 if mean is 0).
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }
}

/// Median of a slice (average of middle two for even length); `None`
/// when empty.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Empirical CDF points `(value, fraction ≤ value)` for plotting, one
/// per sorted sample.
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Interpolated percentile; `None` when the slice is empty, when `p`
/// is NaN or outside `[0, 100]`, or when any sample is NaN (a NaN rank
/// would otherwise index garbage).
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&p) || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        // Population stddev of 1..4 = sqrt(1.25).
        assert!((s.stddev() - 1.25f64.sqrt()).abs() < 1e-12);
        assert!((s.cov() - 1.25f64.sqrt() / 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.cov(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn constant_samples_have_zero_cov() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.cov(), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn ecdf_monotone() {
        let pts = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 50.0), Some(20.0));
        assert_eq!(percentile(&v, 100.0), Some(30.0));
        assert_eq!(percentile(&v, 25.0), Some(15.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_rejects_bad_inputs_without_panicking() {
        let v = [10.0, 20.0, 30.0];
        // Out-of-range p used to assert!; it must degrade to None.
        assert_eq!(percentile(&v, -0.001), None);
        assert_eq!(percentile(&v, 100.001), None);
        assert_eq!(percentile(&v, f64::NAN), None);
        // NaN samples would produce a NaN rank downstream.
        assert_eq!(percentile(&[1.0, f64::NAN], 50.0), None);
        // Infinite-but-not-NaN samples still sort deterministically.
        assert_eq!(percentile(&[f64::INFINITY, 1.0], 0.0), Some(1.0));
    }

    proptest! {
        #[test]
        fn prop_welford_matches_naive(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&values);
            let n = values.len() as f64;
            let mean: f64 = values.iter().sum::<f64>() / n;
            let var: f64 = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.stddev() - var.sqrt()).abs() < 1e-5 * (1.0 + var.sqrt()));
        }

        #[test]
        fn prop_min_max_bound_mean(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&values);
            prop_assert!(s.min().unwrap() <= s.mean() + 1e-9);
            prop_assert!(s.max().unwrap() >= s.mean() - 1e-9);
        }

        #[test]
        fn prop_ecdf_is_monotone(values in proptest::collection::vec(0f64..1e6, 1..100)) {
            let pts = ecdf(&values);
            for w in pts.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                prop_assert!(w[0].1 <= w[1].1);
            }
            prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        }
    }
}
