//! The `Dispute2014` dataset: a generative model of the M-Lab NDT
//! measurement campaign around the 2014 Cogent peering dispute.
//!
//! The real dataset (NDT tests from Comcast/TimeWarner/Verizon/Cox
//! customers to Cogent servers in LAX/LGA and a Level3 server in ATL,
//! January–April 2014) is not available offline, so its published
//! macroscopic structure is encoded as ground truth:
//!
//! * Cogent interconnects to Comcast, TimeWarner and Verizon are
//!   congested during **peak hours in January–February** and clean
//!   afterwards (the dispute resolved late February).
//! * Cox (direct Netflix peering) and Level3 are never congested.
//! * Test arrivals follow a diurnal usage curve.
//!
//! Every synthetic test is *executed as a real simulation*
//! ([`run_ndt`]), producing a genuine packet trace, Web100 log and
//! feature vector — the classifier is exercised on measured data, not
//! on sampled feature values.

use crate::isp::{AccessIsp, Month, TransitSite};
use crate::ndt::{run_ndt, CongestedState, NdtMeasurement, NdtPath};
use csig_exec::{Campaign, Executor, ProgressEvent, Scenario};
use csig_features::CongestionClass;
use csig_netsim::rng::stream_rng;
use csig_netsim::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Campaign generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dispute2014Config {
    /// Tests per (site, ISP, month) cell.
    pub tests_per_cell: u32,
    /// NDT test duration (paper: 10 s; scaled default: 4 s).
    pub test_duration: SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl Default for Dispute2014Config {
    fn default() -> Self {
        Dispute2014Config {
            tests_per_cell: 25,
            test_duration: SimDuration::from_secs(4),
            seed: 2014,
        }
    }
}

/// One synthetic NDT test with its metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NdtTest {
    /// M-Lab server site.
    pub site: TransitSite,
    /// Client's access ISP.
    pub isp: AccessIsp,
    /// Month of the test.
    pub month: Month,
    /// Local hour of day (0–23).
    pub hour: u8,
    /// Client's service plan, Mbit/s.
    pub plan_mbps: u64,
    /// Generator ground truth: was the interconnect congested?
    pub congested: bool,
    /// The simulated measurement.
    pub measurement: NdtMeasurement,
}

/// Relative network load by local hour — the diurnal curve shaping both
/// test arrivals and congestion probability (peak ≈ 20–21 h).
pub fn diurnal_load(hour: u8) -> f64 {
    let h = hour as f64;
    let peak = (-((h - 20.5) * (h - 20.5)) / (2.0 * 3.2 * 3.2)).exp();
    // Secondary morning shoulder.
    let morning = 0.25 * (-((h - 9.0) * (h - 9.0)) / (2.0 * 3.0 * 3.0)).exp();
    (0.3 + 0.7 * peak + morning).min(1.0)
}

/// Probability that an affected interconnect is congested at this hour
/// while the dispute is active. Calibrated so congestion covers most of
/// the 16:00–24:00 peak window the paper's labeling uses (Figure 5a
/// shows the throughput drop spanning that whole window).
fn congestion_probability(hour: u8) -> f64 {
    ((diurnal_load(hour) - 0.45) / 0.3).clamp(0.0, 1.0)
}

/// Sample an hour of day weighted by the diurnal usage curve.
fn sample_hour<R: Rng>(rng: &mut R) -> u8 {
    let weights: Vec<f64> = (0..24).map(diurnal_load).collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (h, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return h as u8;
        }
    }
    23
}

/// One scheduled Dispute2014 NDT test as a self-contained [`Scenario`]:
/// a (site, ISP, month) cell slot whose client-side variation (hour,
/// plan, home buffer, congestion draw) all derives from its seed.
#[derive(Debug, Clone, Copy)]
pub struct NdtScenario {
    /// M-Lab server site.
    pub site: TransitSite,
    /// Client's access ISP.
    pub isp: AccessIsp,
    /// Month of the test.
    pub month: Month,
    /// NDT test duration.
    pub duration: SimDuration,
}

impl Scenario for NdtScenario {
    type Artifact = NdtTest;

    fn run(&self, seed: u64) -> NdtTest {
        let mut rng = stream_rng(seed, 0);
        run_one(self, seed, &mut rng)
    }
}

/// The generation campaign: every cell of (site × ISP × month) gets
/// `tests_per_cell` scenarios, in cell order. Scenario order matches
/// the original inline loop's 1-based tag scheme, so every per-test
/// seed — and thus every measurement — is unchanged.
pub fn campaign(cfg: &Dispute2014Config) -> Campaign<NdtScenario> {
    let mut campaign = Campaign::new(cfg.seed);
    for site in TransitSite::ALL {
        for isp in AccessIsp::ALL {
            for month in Month::ALL {
                for _ in 0..cfg.tests_per_cell {
                    campaign.push(NdtScenario {
                        site,
                        isp,
                        month,
                        duration: cfg.test_duration,
                    });
                }
            }
        }
    }
    campaign
}

/// Generate the campaign sequentially: every cell of (site × ISP ×
/// month) gets `tests_per_cell` simulated tests.
pub fn generate(cfg: &Dispute2014Config) -> Vec<NdtTest> {
    generate_jobs(cfg, 1, |_| {})
}

/// [`generate`] on `jobs` workers (`0` = one per core) with a progress
/// callback. Results are byte-identical for every worker count.
pub fn generate_jobs<F: FnMut(ProgressEvent)>(
    cfg: &Dispute2014Config,
    jobs: usize,
    progress: F,
) -> Vec<NdtTest> {
    generate_with(cfg, &Executor::new(jobs), progress)
}

/// [`generate`] on a caller-configured executor (worker count,
/// per-scenario deadline, …).
pub fn generate_with<F: FnMut(ProgressEvent)>(
    cfg: &Dispute2014Config,
    exec: &Executor,
    progress: F,
) -> Vec<NdtTest> {
    exec.run_with_progress(&campaign(cfg), progress)
}

fn run_one<R: Rng>(scenario: &NdtScenario, seed: u64, rng: &mut R) -> NdtTest {
    let NdtScenario {
        site,
        isp,
        month,
        duration,
    } = *scenario;
    let hour = sample_hour(rng);
    let plan_mbps = isp.sample_plan(rng);

    // Is the interconnect congested for this test?
    let affected = site.is_cogent() && isp.affected_by_dispute() && month.dispute_active();
    let congested = affected && rng.gen::<f64>() < congestion_probability(hour);

    // Home-side variation: buffer depth and last-mile latency.
    let access_buffer_ms = [25u64, 45, 60, 100, 180][rng.gen_range(0..5)];
    let access_latency_ms = rng.gen_range(5..=15);

    let congestion = congested.then(|| {
        let intensity = congestion_probability(hour);
        CongestedState {
            // Deeper congestion → smaller fair share, noisier.
            available_mbps: (14.0 - 6.0 * intensity + rng.gen::<f64>() * 4.0 - 2.0).max(4.0),
            standing_delay_ms: 17.0 + 5.0 * intensity + rng.gen::<f64>() * 3.0,
            headroom_ms: 12.0 + rng.gen::<f64>() * 6.0,
        }
    });

    let path = NdtPath {
        plan_mbps,
        access_buffer_ms,
        access_latency_ms,
        server_one_way_ms: site.base_one_way_ms(),
        interconnect_mbps: 200,
        interconnect_buffer_ms: 25,
        congestion,
        duration,
        seed,
    };
    NdtTest {
        site,
        isp,
        month,
        hour,
        plan_mbps,
        congested,
        measurement: run_ndt(&path),
    }
}

/// Peak hours per the paper's labeling (16:00–24:00 local).
pub fn is_peak_hour(hour: u8) -> bool {
    (16..24).contains(&hour)
}

/// Off-peak hours per the paper's labeling (01:00–08:00 local).
pub fn is_off_peak_hour(hour: u8) -> bool {
    (1..9).contains(&hour)
}

/// The paper's coarse Dispute2014 labeling: peak-hour Jan–Feb tests
/// from affected ISPs to Cogent sites → external; off-peak Mar–Apr
/// tests → self-induced; everything else unlabeled.
pub fn label_dispute2014(test: &NdtTest) -> Option<CongestionClass> {
    if test.measurement.features.is_err() {
        return None;
    }
    if test.month.dispute_active()
        && is_peak_hour(test.hour)
        && test.site.is_cogent()
        && test.isp.affected_by_dispute()
    {
        Some(CongestionClass::External)
    } else if !test.month.dispute_active() && is_off_peak_hour(test.hour) {
        Some(CongestionClass::SelfInduced)
    } else {
        None
    }
}

/// Aggregate: mean throughput by hour of day for one (site, isp,
/// month-pair) slice — the series of the paper's Figure 5.
pub fn diurnal_throughput(
    tests: &[NdtTest],
    site: TransitSite,
    isp: AccessIsp,
    months: &[Month],
) -> Vec<(u8, f64, usize)> {
    (0..24u8)
        .filter_map(|h| {
            let vals: Vec<f64> = tests
                .iter()
                .filter(|t| {
                    t.site == site && t.isp == isp && months.contains(&t.month) && t.hour == h
                })
                .map(|t| t.measurement.throughput_mbps)
                .collect();
            if vals.is_empty() {
                None
            } else {
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                Some((h, mean, vals.len()))
            }
        })
        .collect()
}

/// Export a campaign as CSV (one row per test) for external analysis.
pub fn to_csv(tests: &[NdtTest]) -> String {
    let mut out = String::from(
        "site,isp,month,hour,plan_mbps,congested,throughput_mbps,norm_diff,cov,samples,min_rtt_ms,label\n",
    );
    for t in tests {
        let (nd, cov, n) = match &t.measurement.features {
            Ok(f) => (
                format!("{:.4}", f.norm_diff),
                format!("{:.4}", f.cov),
                f.samples.to_string(),
            ),
            Err(_) => ("".into(), "".into(), "0".into()),
        };
        let label = label_dispute2014(t)
            .map(|c| c.label().to_string())
            .unwrap_or_default();
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.3},{},{},{},{},{}\n",
            t.site.name(),
            t.isp.name(),
            t.month.name(),
            t.hour,
            t.plan_mbps,
            t.congested,
            t.measurement.throughput_mbps,
            nd,
            cov,
            n,
            t.measurement
                .min_rtt_ms
                .map(|v| format!("{v:.2}"))
                .unwrap_or_default(),
            label,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Vec<NdtTest> {
        generate(&Dispute2014Config {
            tests_per_cell: 3,
            test_duration: SimDuration::from_secs(3),
            seed: 99,
        })
    }

    #[test]
    fn diurnal_curve_peaks_in_the_evening() {
        assert!(diurnal_load(20) > 0.9);
        assert!(diurnal_load(4) < 0.45);
        assert!(diurnal_load(20) > diurnal_load(12));
        for h in 0..24 {
            let l = diurnal_load(h);
            assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn only_affected_cells_get_congested_tests() {
        let tests = tiny();
        assert_eq!(tests.len(), 3 * 4 * 4 * 3);
        for t in &tests {
            if t.congested {
                assert!(t.site.is_cogent(), "{t:?}");
                assert!(t.isp.affected_by_dispute());
                assert!(t.month.dispute_active());
            }
        }
        // Some congestion must exist.
        assert!(tests.iter().any(|t| t.congested));
    }

    #[test]
    fn congested_tests_are_slower() {
        let tests = tiny();
        let mean = |congested: bool| {
            let v: Vec<f64> = tests
                .iter()
                .filter(|t| t.congested == congested)
                .map(|t| t.measurement.throughput_mbps)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        assert!(
            mean(true) < mean(false),
            "congested {} vs idle {}",
            mean(true),
            mean(false)
        );
    }

    #[test]
    fn labeling_follows_paper_rules() {
        let tests = tiny();
        for t in &tests {
            match label_dispute2014(t) {
                Some(CongestionClass::External) => {
                    assert!(t.month.dispute_active() && is_peak_hour(t.hour));
                    assert!(t.site.is_cogent() && t.isp.affected_by_dispute());
                }
                Some(CongestionClass::SelfInduced) => {
                    assert!(!t.month.dispute_active() && is_off_peak_hour(t.hour));
                }
                None => {}
            }
        }
    }

    #[test]
    fn diurnal_throughput_aggregates() {
        let tests = tiny();
        let series = diurnal_throughput(
            &tests,
            TransitSite::CogentLax,
            AccessIsp::Comcast,
            &[Month::Jan, Month::Feb],
        );
        let n: usize = series.iter().map(|(_, _, c)| c).sum();
        assert_eq!(n, 6); // 3 per month × 2 months
    }

    #[test]
    fn csv_export_has_one_row_per_test() {
        let tests = tiny();
        let csv = to_csv(&tests);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), tests.len() + 1);
        assert!(lines[0].starts_with("site,isp,month"));
        assert!(lines[1].split(',').count() >= 12);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hour, y.hour);
            assert_eq!(x.plan_mbps, y.plan_mbps);
            assert_eq!(
                x.measurement.throughput.bytes_acked,
                y.measurement.throughput.bytes_acked
            );
        }
    }
}
