//! The ISPs, transit sites and service-plan models of the Dispute2014
//! study.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four access ISPs the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessIsp {
    /// Comcast — affected by the Cogent dispute.
    Comcast,
    /// Time Warner Cable — affected.
    TimeWarner,
    /// Verizon — affected.
    Verizon,
    /// Cox — *not* affected (direct Netflix peering via OpenConnect).
    Cox,
}

impl AccessIsp {
    /// All four, in the paper's plotting order.
    pub const ALL: [AccessIsp; 4] = [
        AccessIsp::Comcast,
        AccessIsp::TimeWarner,
        AccessIsp::Verizon,
        AccessIsp::Cox,
    ];

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            AccessIsp::Comcast => "Comcast",
            AccessIsp::TimeWarner => "TimeWarner",
            AccessIsp::Verizon => "Verizon",
            AccessIsp::Cox => "Cox",
        }
    }

    /// Circa-2014 downstream service-plan catalog: `(Mbps, weight)`.
    /// Plans skew toward the 10–50 Mbps tiers the FCC MBA reports of
    /// the era show.
    pub fn plan_catalog(self) -> &'static [(u64, f64)] {
        match self {
            AccessIsp::Comcast => &[(10, 0.15), (20, 0.30), (25, 0.25), (50, 0.20), (105, 0.10)],
            AccessIsp::TimeWarner => &[(10, 0.25), (15, 0.30), (20, 0.20), (30, 0.15), (50, 0.10)],
            AccessIsp::Verizon => &[(10, 0.15), (25, 0.35), (50, 0.30), (75, 0.20)],
            AccessIsp::Cox => &[(10, 0.20), (25, 0.35), (50, 0.30), (100, 0.15)],
        }
    }

    /// Sample a subscriber plan in Mbps.
    pub fn sample_plan<R: Rng>(self, rng: &mut R) -> u64 {
        let catalog = self.plan_catalog();
        let total: f64 = catalog.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        for &(mbps, w) in catalog {
            x -= w;
            if x <= 0.0 {
                return mbps;
            }
        }
        let Some(last) = catalog.last() else {
            unreachable!("plan catalogs are non-empty")
        };
        last.0
    }

    /// Was this ISP's Cogent interconnect congested during the dispute?
    pub fn affected_by_dispute(self) -> bool {
        !matches!(self, AccessIsp::Cox)
    }
}

/// The transit-side M-Lab server sites the paper analyzes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitSite {
    /// Cogent, Los Angeles — congested during the dispute.
    CogentLax,
    /// Cogent, New York — congested during the dispute.
    CogentLga,
    /// Level3, Atlanta — control site, never congested in this window.
    Level3Atl,
}

impl TransitSite {
    /// All three, in the paper's plotting order.
    pub const ALL: [TransitSite; 3] = [
        TransitSite::CogentLax,
        TransitSite::CogentLga,
        TransitSite::Level3Atl,
    ];

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            TransitSite::CogentLax => "Cogent (LAX)",
            TransitSite::CogentLga => "Cogent (LGA)",
            TransitSite::Level3Atl => "Level3 (ATL)",
        }
    }

    /// Is this a Cogent site (dispute-affected transit)?
    pub fn is_cogent(self) -> bool {
        matches!(self, TransitSite::CogentLax | TransitSite::CogentLga)
    }

    /// Base one-way server-side latency (ms) from this site to a
    /// typical client of the study (coast-dependent).
    pub fn base_one_way_ms(self) -> u64 {
        match self {
            TransitSite::CogentLax => 15,
            TransitSite::CogentLga => 10,
            TransitSite::Level3Atl => 12,
        }
    }
}

/// Months of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Month {
    /// January 2014 — dispute ongoing.
    Jan,
    /// February 2014 — dispute ongoing (resolved in the last week).
    Feb,
    /// March 2014 — resolved.
    Mar,
    /// April 2014 — resolved.
    Apr,
}

impl Month {
    /// All four months.
    pub const ALL: [Month; 4] = [Month::Jan, Month::Feb, Month::Mar, Month::Apr];

    /// Was the Cogent dispute active?
    pub fn dispute_active(self) -> bool {
        matches!(self, Month::Jan | Month::Feb)
    }

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Month::Jan => "Jan",
            Month::Feb => "Feb",
            Month::Mar => "Mar",
            Month::Apr => "Apr",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn plan_sampling_matches_catalog() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for isp in AccessIsp::ALL {
            let catalog: Vec<u64> = isp.plan_catalog().iter().map(|&(m, _)| m).collect();
            for _ in 0..100 {
                let plan = isp.sample_plan(&mut rng);
                assert!(catalog.contains(&plan), "{plan} not in {catalog:?}");
            }
        }
    }

    #[test]
    fn plan_distribution_roughly_matches_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 10_000;
        let tens = (0..n)
            .filter(|_| AccessIsp::Comcast.sample_plan(&mut rng) == 10)
            .count();
        let frac = tens as f64 / n as f64;
        assert!((frac - 0.15).abs() < 0.02, "10 Mbps fraction {frac}");
    }

    #[test]
    fn dispute_structure() {
        assert!(AccessIsp::Comcast.affected_by_dispute());
        assert!(!AccessIsp::Cox.affected_by_dispute());
        assert!(TransitSite::CogentLax.is_cogent());
        assert!(!TransitSite::Level3Atl.is_cogent());
        assert!(Month::Jan.dispute_active());
        assert!(!Month::Mar.dispute_active());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AccessIsp::TimeWarner.name(), "TimeWarner");
        assert_eq!(TransitSite::CogentLga.name(), "Cogent (LGA)");
        assert_eq!(Month::Apr.name(), "Apr");
    }
}
