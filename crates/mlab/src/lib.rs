//! # csig-mlab — synthetic M-Lab measurement campaigns
//!
//! Generative reconstructions of the paper's two real-world datasets
//! (the originals are 2014/2017 M-Lab data not available offline; see
//! DESIGN.md for the substitution argument):
//!
//! * [`dispute2014`] — the NDT campaign around the 2014 Cogent peering
//!   dispute: diurnal congestion on affected (Cogent × Comcast/TWC/
//!   Verizon) interconnects in Jan–Feb that disappears in Mar–Apr, with
//!   Cox and Level3 as controls. Every test is a real micro-simulation.
//! * [`tslp2017`] — the targeted Comcast↔TATA experiment: a continuous
//!   TSLP probing simulation plus scheduled NDT tests, driven by one
//!   ground-truth congestion schedule.
//! * [`ndt`] — one NDT test as a micro-simulation, with link-state
//!   modulation standing in for elastic interconnect congestion.
//! * [`web100`] — Web100-style logs and the paper's M-Lab filters.
//! * [`isp`] — ISPs, transit sites, months and plan catalogs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dispute2014;
pub mod isp;
pub mod ndt;
pub mod tslp2017;
pub mod web100;

pub use dispute2014::{
    diurnal_load, diurnal_throughput, generate, generate_jobs, generate_with, is_off_peak_hour,
    is_peak_hour, label_dispute2014, to_csv, Dispute2014Config, NdtScenario, NdtTest,
};
pub use isp::{AccessIsp, Month, TransitSite};
pub use ndt::{run_ndt, CongestedState, NdtMeasurement, NdtPath, NDT_FLOW};
pub use tslp2017::{
    build_schedule, label_tslp2017, run_campaign, run_campaign_jobs, run_campaign_with,
    test_schedule, tests_to_csv, EpisodeWindow, Tslp2017Config, Tslp2017Output, TslpNdtScenario,
    TslpNdtTest,
};
pub use web100::Web100Log;
