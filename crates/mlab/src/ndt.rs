//! One NDT (Network Diagnostic Test) measurement as a micro-simulation.
//!
//! NDT runs a 10-second bulk download from an M-Lab server to the
//! client while the server logs Web100 statistics and a packet trace.
//! Here, each test is an independent simulation of the path
//!
//! ```text
//! server ── r1 ──(interconnect)── r2 ──(access link)── client
//! ```
//!
//! An already congested interconnect is modeled by *link-state
//! modulation* (see DESIGN.md): during congestion, the interconnect
//! behaves as a link whose available capacity is the fair share left
//! for a new flow, whose propagation includes the standing queue of the
//! full buffer, and whose remaining buffer headroom is small. This
//! reproduces exactly what the test flow experiences against elastic
//! competitors — low capacity, elevated-but-stable baseline RTT, early
//! loss — at none of the cost (validated against full `TGcong`
//! cross-traffic in `csig-testbed`).

use crate::web100::Web100Log;
use csig_features::{FeatureError, FlowFeatures, FlowProbe};
use csig_netsim::{FlowId, LinkConfig, SimDuration, SimTime, Simulator};
use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};
use csig_trace::{SlowStart, ThroughputSummary};
use serde::{Deserialize, Serialize};

/// Interconnect congestion state during a test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestedState {
    /// Capacity available to a new flow, Mbit/s (the fair share among
    /// the elastic traffic keeping the link busy).
    pub available_mbps: f64,
    /// Standing queueing delay of the (nearly) full buffer, ms.
    pub standing_delay_ms: f64,
    /// Remaining buffer headroom the new flow can occupy, ms. Elastic
    /// competitors leave transient dips in a shared queue; ~10–20 ms of
    /// effective room (at the available rate) matches what the paper's
    /// 100-flow `TGcong` leaves a newcomer. Values below ~12 ms starve
    /// slow start of the 10 RTT samples the feature extractor needs.
    pub headroom_ms: f64,
}

/// Path configuration of one NDT test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NdtPath {
    /// Subscriber plan (shaped access rate), Mbit/s.
    pub plan_mbps: u64,
    /// Access-link buffer, ms (homes measured in the paper: 25–180).
    pub access_buffer_ms: u64,
    /// Access one-way latency, ms.
    pub access_latency_ms: u64,
    /// Server-side one-way latency to the interconnect, ms.
    pub server_one_way_ms: u64,
    /// Interconnect capacity when idle, Mbit/s (scaled stand-in for a
    /// multi-10G port; only its *relative* headroom matters).
    pub interconnect_mbps: u64,
    /// Interconnect buffer, ms.
    pub interconnect_buffer_ms: u64,
    /// Congestion state (`None` = idle interconnect).
    pub congestion: Option<CongestedState>,
    /// Test duration (NDT: 10 s).
    pub duration: SimDuration,
    /// Simulation seed.
    pub seed: u64,
}

impl NdtPath {
    /// A typical idle path for the given plan.
    pub fn idle(plan_mbps: u64, seed: u64) -> Self {
        NdtPath {
            plan_mbps,
            access_buffer_ms: 60,
            access_latency_ms: 8,
            server_one_way_ms: 10,
            interconnect_mbps: 200,
            interconnect_buffer_ms: 25,
            congestion: None,
            duration: SimDuration::from_secs(10),
            seed,
        }
    }
}

/// One NDT measurement's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NdtMeasurement {
    /// Mean downstream goodput over the test, Mbit/s.
    pub throughput_mbps: f64,
    /// Classifier features (or why none).
    pub features: Result<FlowFeatures, FeatureError>,
    /// Slow-start window.
    pub slow_start: SlowStart,
    /// Trace goodput summary.
    pub throughput: ThroughputSummary,
    /// Web100-style kernel log.
    pub web100: Web100Log,
    /// Minimum trace RTT over the whole test, ms.
    pub min_rtt_ms: Option<f64>,
}

/// Flow id used by every NDT micro-simulation.
pub const NDT_FLOW: FlowId = FlowId(4000);

/// Run one NDT test over the given path.
pub fn run_ndt(path: &NdtPath) -> NdtMeasurement {
    let ms = SimDuration::from_millis;
    let mut sim = Simulator::new(path.seed);

    let tcp = TcpConfig::default();
    let lean = TcpConfig {
        record_samples: true, // server-side Web100 needs samples
        ..tcp.clone()
    };
    let server = sim.add_host(Box::new(TcpServerAgent::new(
        lean,
        ServerSendPolicy::Unbounded,
    )));
    let r1 = sim.add_router();
    let r2 = sim.add_router();
    let client = sim.add_host(Box::new(
        TcpClientAgent::new(server, tcp, ClientBehavior::Once, NDT_FLOW.0)
            .with_fetch_timeout(path.duration),
    ));

    sim.add_duplex_link(
        server,
        r1,
        LinkConfig::new(1_000_000_000, ms(path.server_one_way_ms)).buffer_ms(50),
    );

    // Interconnect, possibly modulated by congestion.
    let icl = match path.congestion {
        None => LinkConfig::new(path.interconnect_mbps * 1_000_000, ms(0))
            .phy_rate((path.interconnect_mbps * 1_000_000).max(1_000_000_000))
            .buffer_ms(path.interconnect_buffer_ms),
        Some(c) => {
            let rate = (c.available_mbps * 1e6).max(1e5) as u64;
            LinkConfig::new(rate, SimDuration::from_secs_f64(c.standing_delay_ms / 1e3))
                .phy_rate(rate.max(1_000_000_000))
                .buffer_ms(c.headroom_ms.max(1.0) as u64)
        }
    };
    sim.add_link(r1, r2, icl);
    sim.add_link(
        r2,
        r1,
        LinkConfig::new(path.interconnect_mbps * 1_000_000, ms(0))
            .phy_rate((path.interconnect_mbps * 1_000_000).max(1_000_000_000))
            .buffer_ms(path.interconnect_buffer_ms),
    );

    // Access link (downstream shaped; upstream plain).
    sim.add_link(
        r2,
        client,
        LinkConfig::new(path.plan_mbps * 1_000_000, ms(path.access_latency_ms))
            .phy_rate((path.plan_mbps * 1_000_000).max(100_000_000))
            .buffer_ms(path.access_buffer_ms)
            .jitter(ms(1))
            .burst(5 * 1024),
    );
    sim.add_link(
        client,
        r2,
        LinkConfig::new(100_000_000, ms(path.access_latency_ms)).buffer_ms(20),
    );
    sim.compute_routes();
    // Streaming tap at the server: the NDT analysis accumulates online,
    // no capture is retained.
    let probe = sim.attach_sink(server, Box::new(FlowProbe::new(NDT_FLOW)));

    let horizon = SimTime::ZERO + path.duration + SimDuration::from_millis(500);
    sim.set_event_budget(500_000_000);
    sim.run_until(horizon);

    // Web100 from the server's connection (live or completed).
    let Some(server_agent) = sim.agent::<TcpServerAgent>(server) else {
        unreachable!("server added above as a TcpServerAgent")
    };
    let stats = server_agent
        .connection(NDT_FLOW)
        .map(|c| c.stats.clone())
        .or_else(|| {
            server_agent
                .completed
                .iter()
                .find(|(f, _)| *f == NDT_FLOW)
                .map(|(_, s)| s.clone())
        })
        .unwrap_or_default();
    let web100 = Web100Log::from_stats(&stats);

    let Some(probe) = sim.sink::<FlowProbe>(probe) else {
        unreachable!("handle attached above holds a FlowProbe")
    };
    let slow_start = probe.slow_start();
    let throughput = probe.throughput();
    let features = probe.features();
    let min_rtt_ms = probe.min_rtt_ms();

    NdtMeasurement {
        throughput_mbps: throughput.mean_bps / 1e6,
        features,
        slow_start,
        throughput,
        web100,
        min_rtt_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_features::CongestionClass;

    fn quick(plan: u64, congestion: Option<CongestedState>, seed: u64) -> NdtMeasurement {
        let mut path = NdtPath::idle(plan, seed);
        path.duration = SimDuration::from_secs(4);
        path.congestion = congestion;
        run_ndt(&path)
    }

    #[test]
    fn idle_path_reaches_plan_rate() {
        let m = quick(25, None, 1);
        assert!(
            m.throughput_mbps > 0.75 * 25.0,
            "throughput {}",
            m.throughput_mbps
        );
        let f = m.features.expect("features");
        assert!(f.norm_diff > 0.4, "norm_diff {}", f.norm_diff);
        assert!(m.web100.passes_mlab_filter(SimDuration::from_secs(3)));
        // Baseline RTT ≈ 2×(10 + 8) = 36 ms.
        let min = m.min_rtt_ms.unwrap();
        assert!((min - 36.0).abs() < 5.0, "min rtt {min}");
    }

    #[test]
    fn congested_path_shows_external_signature() {
        let c = CongestedState {
            available_mbps: 9.0,
            standing_delay_ms: 22.0,
            headroom_ms: 15.0,
        };
        let m = quick(25, Some(c), 2);
        // Throughput pinned near the available share, well below plan.
        assert!(m.throughput_mbps < 14.0, "throughput {}", m.throughput_mbps);
        // Baseline RTT elevated by the standing queue.
        let min = m.min_rtt_ms.unwrap();
        assert!(min > 50.0, "min rtt {min}");
        let f = m.features.expect("features");
        assert!(f.norm_diff < 0.45, "norm_diff {}", f.norm_diff);
        assert!(f.cov < 0.2, "cov {}", f.cov);
    }

    #[test]
    fn signatures_separate_between_states() {
        let idle = quick(25, None, 3).features.unwrap();
        let cong = quick(
            25,
            Some(CongestedState {
                available_mbps: 10.0,
                standing_delay_ms: 20.0,
                headroom_ms: 15.0,
            }),
            3,
        )
        .features
        .unwrap();
        assert!(idle.norm_diff > cong.norm_diff);
        assert!(idle.cov > cong.cov);
        // And a trained-on-geometry classifier would split them: check
        // the canonical direction only.
        let _ = CongestionClass::SelfInduced;
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(25, None, 7);
        let b = quick(25, None, 7);
        assert_eq!(a.throughput.bytes_acked, b.throughput.bytes_acked);
        assert_eq!(
            a.features.as_ref().unwrap().norm_diff,
            b.features.as_ref().unwrap().norm_diff
        );
    }
}
