//! The `TSLP2017` dataset: the paper's targeted 2017 experiment between
//! an Ark node in Comcast (Massachusetts) and an M-Lab server hosted by
//! TATA in New York, whose interconnect was occasionally congested.
//!
//! Two coupled simulations driven by one ground-truth congestion
//! schedule:
//!
//! 1. A **continuous probing simulation** spanning the whole campaign:
//!    a TSLP prober measures the near (Comcast) and far (TATA) routers
//!    across the interconnect, whose state is switched by
//!    `LinkReconfig` events at episode boundaries — reproducing the
//!    paper's Figure 6a latency spikes (baseline ≈ 18 ms, peaks >
//!    30 ms from the ~15 ms interconnect buffer).
//! 2. **Per-test NDT micro-simulations** at the scheduled test times
//!    (hourly off-peak, every 15 min peak in the paper; configurable),
//!    congested when they fall inside an episode.

use crate::ndt::{run_ndt, CongestedState, NdtMeasurement, NdtPath};
use csig_exec::{Campaign, Executor, ProgressEvent, Scenario};
use csig_features::CongestionClass;
use csig_netsim::rng::{derive_seed, stream_rng};
use csig_netsim::{FlowId, LinkConfig, NodeId, SimDuration, SimTime, Simulator};
use csig_tslp::{LatencySeries, TslpProber};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Campaign configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tslp2017Config {
    /// Campaign length in days (paper: ~75; scaled default: 14).
    pub days: u32,
    /// Subscriber plan (the Ark host's: 25 Mbps).
    pub plan_mbps: u64,
    /// TSLP probe interval (paper probes continuously; default 5 min).
    pub probe_interval: SimDuration,
    /// Minutes between NDT tests during peak hours (paper: 15).
    pub peak_test_minutes: u32,
    /// Minutes between NDT tests off-peak (paper: 60; scaled: 120).
    pub offpeak_test_minutes: u32,
    /// Days (0-based) whose evenings have a congestion episode.
    pub episode_days: Vec<u32>,
    /// NDT test duration.
    pub test_duration: SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl Default for Tslp2017Config {
    fn default() -> Self {
        Tslp2017Config {
            days: 14,
            plan_mbps: 25,
            probe_interval: SimDuration::from_secs(300),
            peak_test_minutes: 30,
            offpeak_test_minutes: 120,
            episode_days: vec![2, 5, 9, 12],
            test_duration: SimDuration::from_secs(4),
            seed: 2017,
        }
    }
}

/// One congestion episode window in campaign time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeWindow {
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// Severity of the episode.
    pub state: CongestedState,
}

impl EpisodeWindow {
    /// Does `t` fall inside the window?
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// One scheduled NDT test and its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TslpNdtTest {
    /// Campaign time the test started.
    pub at: SimTime,
    /// Ground truth: did the test run inside an episode?
    pub during_episode: bool,
    /// The measurement.
    pub measurement: NdtMeasurement,
}

/// Full campaign output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tslp2017Output {
    /// Near-router (Comcast side) probe series.
    pub near: LatencySeries,
    /// Far-router (TATA side) probe series.
    pub far: LatencySeries,
    /// Scheduled NDT tests in time order.
    pub tests: Vec<TslpNdtTest>,
    /// Ground-truth episode windows.
    pub episodes: Vec<EpisodeWindow>,
    /// Baseline far-router RTT, ms (for labeling).
    pub base_rtt_ms: f64,
}

/// Base one-way latencies of the Ark↔TATA path (client→near router and
/// near→far across the interconnect): 18 ms baseline RTT to the far
/// side, as the paper measured.
const CLIENT_NEAR_MS: u64 = 8;
const NEAR_FAR_MS: u64 = 1;

/// Labeling thresholds from §4.2/§5.4 of the paper (plan 25 Mbps,
/// baseline 18 ms): external ⇔ throughput < 15 Mbps ∧ min RTT > 30 ms;
/// self ⇔ throughput > 20 Mbps ∧ min RTT < 20 ms; else unlabeled.
pub fn label_tslp2017(test: &TslpNdtTest, plan_mbps: u64) -> Option<CongestionClass> {
    let tput = test.measurement.throughput_mbps;
    let min_rtt = test.measurement.min_rtt_ms?;
    let plan = plan_mbps as f64;
    if tput < 0.6 * plan && min_rtt > 30.0 {
        Some(CongestionClass::External)
    } else if tput > 0.8 * plan && min_rtt < 20.0 {
        Some(CongestionClass::SelfInduced)
    } else {
        None
    }
}

/// Build the episode schedule: evenings (19:00–22:30) of the configured
/// days, with per-episode severity jitter.
pub fn build_schedule(cfg: &Tslp2017Config) -> Vec<EpisodeWindow> {
    let mut rng = stream_rng(cfg.seed, 0xE915);
    cfg.episode_days
        .iter()
        .filter(|&&d| d < cfg.days)
        .map(|&d| {
            let day = SimTime::from_secs(d as u64 * 86_400);
            let start = day + SimDuration::from_secs(19 * 3600 + rng.gen_range(0..1800));
            let len = SimDuration::from_secs(rng.gen_range(9_000..13_500)); // 2.5–3.75 h
            EpisodeWindow {
                start,
                end: start + len,
                state: CongestedState {
                    available_mbps: 8.0 + rng.gen::<f64>() * 5.0,
                    standing_delay_ms: 12.0 + rng.gen::<f64>() * 3.0,
                    headroom_ms: 9.0 + rng.gen::<f64>() * 4.0,
                },
            }
        })
        .collect()
}

/// Run the continuous probing simulation over the schedule.
fn run_probe_campaign(
    cfg: &Tslp2017Config,
    episodes: &[EpisodeWindow],
) -> (LatencySeries, LatencySeries) {
    let ms = SimDuration::from_millis;
    let mut sim = Simulator::new(derive_seed(cfg.seed, 1));
    let horizon = SimTime::from_secs(cfg.days as u64 * 86_400);
    let client = sim.add_host(Box::new(TslpProber::new(
        vec![NodeId(1), NodeId(2)],
        cfg.probe_interval,
        horizon,
        FlowId(1),
    )));
    let near = sim.add_router();
    let far = sim.add_router();
    sim.add_duplex_link(
        client,
        near,
        LinkConfig::new(100_000_000, ms(CLIENT_NEAR_MS)),
    );
    let idle = LinkConfig::new(200_000_000, ms(NEAR_FAR_MS)).buffer_ms(15);
    let (nf, _fn_) = sim.add_duplex_link(near, far, idle.clone());
    sim.compute_routes();

    // Schedule interconnect state changes at episode boundaries.
    for ep in episodes {
        let congested = LinkConfig::new(
            (ep.state.available_mbps * 1e6) as u64,
            ms(NEAR_FAR_MS) + SimDuration::from_secs_f64(ep.state.standing_delay_ms / 1e3),
        )
        .buffer_ms(ep.state.headroom_ms.max(1.0) as u64);
        sim.schedule_link_reconfig(ep.start, nf, congested);
        sim.schedule_link_reconfig(ep.end, nf, idle.clone());
    }
    sim.set_event_budget(200_000_000);
    sim.run_until(horizon + SimDuration::from_secs(60));

    let Some(prober) = sim.agent::<TslpProber>(client) else {
        unreachable!("client added above as a TslpProber")
    };
    let Some(far) = prober.far() else {
        unreachable!("prober constructed with two targets")
    };
    (prober.near().clone(), far.clone())
}

/// The NDT test schedule in campaign time.
pub fn test_schedule(cfg: &Tslp2017Config) -> Vec<SimTime> {
    let mut times = Vec::new();
    for day in 0..cfg.days as u64 {
        let day_start = day * 86_400;
        let mut minute = 0u64;
        while minute < 24 * 60 {
            let hour = (minute / 60) as u8;
            let peak = (16..24).contains(&hour);
            times.push(SimTime::from_secs(day_start + minute * 60));
            minute += if peak {
                cfg.peak_test_minutes as u64
            } else {
                cfg.offpeak_test_minutes as u64
            };
        }
    }
    times
}

/// One scheduled TSLP2017 NDT test as a self-contained [`Scenario`]:
/// the campaign-time slot plus the episode state (if any) it falls in.
#[derive(Debug, Clone, Copy)]
pub struct TslpNdtScenario {
    /// Campaign time the test starts.
    pub at: SimTime,
    /// The episode state covering `at`, if any.
    pub episode: Option<CongestedState>,
    /// Subscriber plan, Mbit/s.
    pub plan_mbps: u64,
    /// NDT test duration.
    pub duration: SimDuration,
}

impl Scenario for TslpNdtScenario {
    type Artifact = TslpNdtTest;

    fn run(&self, seed: u64) -> TslpNdtTest {
        let path = NdtPath {
            plan_mbps: self.plan_mbps,
            access_buffer_ms: 20, // the paper's small-buffer worst case
            access_latency_ms: CLIENT_NEAR_MS,
            server_one_way_ms: NEAR_FAR_MS,
            interconnect_mbps: 200,
            interconnect_buffer_ms: 15,
            congestion: self.episode,
            duration: self.duration,
            seed,
        };
        TslpNdtTest {
            at: self.at,
            during_episode: self.episode.is_some(),
            measurement: run_ndt(&path),
        }
    }
}

/// The NDT half of the campaign over a prebuilt episode schedule. The
/// i-th test keeps its bespoke seed `derive_seed(cfg.seed, 0x7E57 + i)`
/// from the original loop, so measurements are unchanged.
pub fn ndt_campaign(cfg: &Tslp2017Config, episodes: &[EpisodeWindow]) -> Campaign<TslpNdtScenario> {
    let mut campaign = Campaign::new(cfg.seed);
    for (i, at) in test_schedule(cfg).into_iter().enumerate() {
        let episode = episodes.iter().find(|e| e.contains(at));
        campaign.push_seeded(
            derive_seed(cfg.seed, 0x7E57 + i as u64),
            TslpNdtScenario {
                at,
                episode: episode.map(|e| e.state),
                plan_mbps: cfg.plan_mbps,
                duration: cfg.test_duration,
            },
        );
    }
    campaign
}

/// Run the full campaign sequentially.
pub fn run_campaign(cfg: &Tslp2017Config) -> Tslp2017Output {
    run_campaign_jobs(cfg, 1, |_| {})
}

/// [`run_campaign`] with the NDT tests spread over `jobs` workers
/// (`0` = one per core) and a progress callback over them. The
/// continuous probing simulation is one coupled system and stays
/// sequential; only the independent NDT micro-simulations parallelize.
/// Output is byte-identical for every worker count.
pub fn run_campaign_jobs<F: FnMut(ProgressEvent)>(
    cfg: &Tslp2017Config,
    jobs: usize,
    progress: F,
) -> Tslp2017Output {
    run_campaign_with(cfg, &Executor::new(jobs), progress)
}

/// [`run_campaign`] on a caller-configured executor (worker count,
/// per-scenario deadline, …).
pub fn run_campaign_with<F: FnMut(ProgressEvent)>(
    cfg: &Tslp2017Config,
    exec: &Executor,
    progress: F,
) -> Tslp2017Output {
    let episodes = build_schedule(cfg);
    let (near, far) = run_probe_campaign(cfg, &episodes);
    let tests = exec.run_with_progress(&ndt_campaign(cfg, &episodes), progress);

    Tslp2017Output {
        near,
        far,
        tests,
        episodes,
        base_rtt_ms: 2.0 * (CLIENT_NEAR_MS + NEAR_FAR_MS) as f64,
    }
}

/// Export the campaign's NDT tests as CSV for external analysis.
pub fn tests_to_csv(out: &Tslp2017Output, plan_mbps: u64) -> String {
    let mut csv = String::from(
        "t_days,during_episode,throughput_mbps,min_rtt_ms,norm_diff,cov,samples,label\n",
    );
    for t in &out.tests {
        let (nd, cov, n) = match &t.measurement.features {
            Ok(f) => (
                format!("{:.4}", f.norm_diff),
                format!("{:.4}", f.cov),
                f.samples.to_string(),
            ),
            Err(_) => ("".into(), "".into(), "0".into()),
        };
        csv.push_str(&format!(
            "{:.4},{},{:.3},{},{},{},{},{}\n",
            t.at.as_secs_f64() / 86_400.0,
            t.during_episode,
            t.measurement.throughput_mbps,
            t.measurement
                .min_rtt_ms
                .map(|v| format!("{v:.2}"))
                .unwrap_or_default(),
            nd,
            cov,
            n,
            label_tslp2017(t, plan_mbps)
                .map(|c| c.label().to_string())
                .unwrap_or_default(),
        ));
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_tslp::{interdomain_episodes, DetectorParams};

    fn tiny_cfg() -> Tslp2017Config {
        Tslp2017Config {
            days: 2,
            probe_interval: SimDuration::from_secs(600),
            peak_test_minutes: 120,
            offpeak_test_minutes: 360,
            episode_days: vec![1],
            test_duration: SimDuration::from_secs(3),
            ..Tslp2017Config::default()
        }
    }

    #[test]
    fn schedule_builds_evening_windows() {
        let cfg = Tslp2017Config::default();
        let eps = build_schedule(&cfg);
        assert_eq!(eps.len(), 4);
        for ep in &eps {
            let day_sec = ep.start.as_nanos() / 1_000_000_000 % 86_400;
            let hour = day_sec / 3600;
            assert!((19..21).contains(&hour), "episode starts at hour {hour}");
            assert!(ep.end > ep.start);
        }
    }

    #[test]
    fn campaign_probes_detect_the_episode() {
        let out = run_campaign(&tiny_cfg());
        assert!(!out.near.is_empty() && !out.far.is_empty());
        // Far baseline ≈ 18 ms.
        let base = out.far.baseline_ms().unwrap();
        assert!((base - 18.0).abs() < 2.0, "baseline {base}");
        let detected = interdomain_episodes(
            &out.near,
            &out.far,
            DetectorParams {
                min_elevation_ms: 6.0,
                min_run: 2,
            },
        );
        assert_eq!(detected.len(), 1, "{detected:?}");
        // Detected window overlaps the scheduled one.
        let truth = out.episodes[0];
        assert!(detected[0].start >= truth.start - SimDuration::from_secs(1200));
        assert!(detected[0].end <= truth.end + SimDuration::from_secs(1200));
    }

    #[test]
    fn csv_export_shape() {
        let out = run_campaign(&tiny_cfg());
        let csv = tests_to_csv(&out, 25);
        assert_eq!(csv.lines().count(), out.tests.len() + 1);
        assert!(csv.lines().nth(1).unwrap().split(',').count() == 8);
    }

    #[test]
    fn tests_during_episodes_are_externally_limited() {
        let out = run_campaign(&tiny_cfg());
        let episode_tests: Vec<_> = out.tests.iter().filter(|t| t.during_episode).collect();
        let clean_tests: Vec<_> = out.tests.iter().filter(|t| !t.during_episode).collect();
        assert!(!episode_tests.is_empty(), "no tests hit the episode window");
        assert!(!clean_tests.is_empty());
        for t in &episode_tests {
            assert!(
                t.measurement.throughput_mbps < 16.0,
                "episode test at {} got {} Mbps",
                t.at,
                t.measurement.throughput_mbps
            );
        }
        // Labeling recovers the structure.
        let ext = episode_tests
            .iter()
            .filter(|t| label_tslp2017(t, 25) == Some(CongestionClass::External))
            .count();
        assert!(ext > 0, "no episode test labeled external");
        let selfs = clean_tests
            .iter()
            .filter(|t| label_tslp2017(t, 25) == Some(CongestionClass::SelfInduced))
            .count();
        assert!(
            selfs as f64 > 0.8 * clean_tests.len() as f64,
            "only {selfs}/{} clean tests labeled self",
            clean_tests.len()
        );
    }
}
