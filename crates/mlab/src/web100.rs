//! Web100-style per-test instrumentation.
//!
//! Every NDT measurement logs kernel TCP statistics (the Web100 patch);
//! the paper filters tests on them: downstream tests lasting ≥ 9 s that
//! spent ≥ 90 % of the test in the *congestion limited* state. This
//! module condenses our in-stack [`ConnStats`] into the fields that
//! pipeline needs.

use csig_netsim::SimDuration;
use csig_tcp::ConnStats;
use serde::{Deserialize, Serialize};

/// Condensed Web100 log for one NDT test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Web100Log {
    /// Test duration (handshake to close/abort).
    pub duration: SimDuration,
    /// Payload bytes acknowledged.
    pub bytes_acked: u64,
    /// Fraction of established time spent congestion-limited.
    pub congestion_limited: f64,
    /// Fraction of established time spent receiver-limited.
    pub receiver_limited: f64,
    /// Fraction of established time spent sender(app)-limited.
    pub sender_limited: f64,
    /// Total retransmitted segments.
    pub retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Minimum in-stack RTT sample, ms (`None` if no samples).
    pub min_rtt_ms: Option<f64>,
    /// Smoothed (mean of samples) RTT, ms.
    pub mean_rtt_ms: Option<f64>,
}

impl Web100Log {
    /// Build from a finished/aborted connection's counters.
    pub fn from_stats(stats: &ConnStats) -> Self {
        let duration = match (stats.established_at, stats.closed_at) {
            (Some(a), Some(b)) => b.saturating_since(a),
            _ => SimDuration::ZERO,
        };
        let total: f64 = stats.limited.iter().map(|d| d.as_secs_f64()).sum();
        let frac = |d: SimDuration| {
            if total <= 0.0 {
                0.0
            } else {
                d.as_secs_f64() / total
            }
        };
        let rtts: Vec<f64> = stats
            .rtt_samples
            .iter()
            .map(|(_, r)| r.as_millis_f64())
            .collect();
        let min_rtt_ms = rtts.iter().copied().reduce(f64::min);
        let mean_rtt_ms = if rtts.is_empty() {
            None
        } else {
            Some(rtts.iter().sum::<f64>() / rtts.len() as f64)
        };
        Web100Log {
            duration,
            bytes_acked: stats.bytes_acked,
            congestion_limited: frac(stats.limited[0]),
            receiver_limited: frac(stats.limited[1]),
            sender_limited: frac(stats.limited[2]),
            retransmits: stats.retransmits,
            timeouts: stats.timeouts,
            min_rtt_ms,
            mean_rtt_ms,
        }
    }

    /// The paper's M-Lab pre-processing filter: test ran ≥
    /// `min_duration` and was congestion-limited ≥ 90 % of the time.
    pub fn passes_mlab_filter(&self, min_duration: SimDuration) -> bool {
        self.duration >= min_duration && self.congestion_limited >= 0.9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_netsim::SimTime;

    fn stats(cwnd_s: u64, rwnd_s: u64, app_s: u64) -> ConnStats {
        ConnStats {
            established_at: Some(SimTime::from_secs(1)),
            closed_at: Some(SimTime::from_secs(11)),
            limited: [
                SimDuration::from_secs(cwnd_s),
                SimDuration::from_secs(rwnd_s),
                SimDuration::from_secs(app_s),
            ],
            rtt_samples: vec![
                (SimTime::from_secs(2), SimDuration::from_millis(30)),
                (SimTime::from_secs(3), SimDuration::from_millis(50)),
            ],
            ..ConnStats::default()
        }
    }

    #[test]
    fn fractions_and_rtts() {
        let log = Web100Log::from_stats(&stats(9, 1, 0));
        assert_eq!(log.duration, SimDuration::from_secs(10));
        assert!((log.congestion_limited - 0.9).abs() < 1e-12);
        assert!((log.receiver_limited - 0.1).abs() < 1e-12);
        assert_eq!(log.min_rtt_ms, Some(30.0));
        assert_eq!(log.mean_rtt_ms, Some(40.0));
    }

    #[test]
    fn filter_thresholds() {
        let log = Web100Log::from_stats(&stats(9, 1, 0));
        assert!(log.passes_mlab_filter(SimDuration::from_secs(9)));
        assert!(!log.passes_mlab_filter(SimDuration::from_secs(11)));
        let weak = Web100Log::from_stats(&stats(5, 5, 0));
        assert!(!weak.passes_mlab_filter(SimDuration::from_secs(9)));
    }

    #[test]
    fn empty_stats_are_safe() {
        let log = Web100Log::from_stats(&ConnStats::default());
        assert_eq!(log.duration, SimDuration::ZERO);
        assert_eq!(log.min_rtt_ms, None);
        assert!(!log.passes_mlab_filter(SimDuration::from_secs(1)));
    }
}
