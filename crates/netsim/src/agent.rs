//! Host behaviour: the [`Agent`] trait and its callback context.
//!
//! An agent is the protocol/application code running on a host node —
//! a TCP endpoint, a traffic generator, a latency prober. The simulator
//! invokes its callbacks; the agent reacts by issuing [`Command`]s
//! through [`Ctx`] (send a packet, arm a timer). Commands are buffered
//! and applied by the simulator after the callback returns, which keeps
//! borrow-checking trivial and event ordering explicit.

use crate::event::TimerToken;
use crate::ids::NodeId;
use crate::packet::{Packet, PacketSpec};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use std::any::Any;

/// Deferred effects an agent requests during a callback.
#[derive(Debug)]
pub enum Command {
    /// Transmit a packet (the simulator assigns id/timestamp/route).
    Send(PacketSpec),
    /// Arm a one-shot timer `delay` from now carrying `token`.
    SetTimer(SimDuration, TimerToken),
}

/// The environment handed to every agent callback.
pub struct Ctx<'a> {
    now: SimTime,
    node: NodeId,
    commands: &'a mut Vec<Command>,
    rng: &'a mut StdRng,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(
        now: SimTime,
        node: NodeId,
        commands: &'a mut Vec<Command>,
        rng: &'a mut StdRng,
    ) -> Self {
        Ctx {
            now,
            node,
            commands,
            rng,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queue a packet for transmission. The packet leaves the host at
    /// the current instant (it may then wait in the first link's buffer).
    pub fn send(&mut self, spec: PacketSpec) {
        debug_assert!(spec.dst != self.node, "agent sending to itself");
        self.commands.push(Command::Send(spec));
    }

    /// Arm a one-shot timer. There is no cancellation: encode a
    /// generation counter in `token` and ignore stale firings.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.commands.push(Command::SetTimer(delay, token));
    }

    /// This host's private deterministic PRNG stream.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// Protocol/application code attached to a host node.
///
/// Implementations must also be `Any` so experiment harnesses can
/// downcast and read results after the simulation finishes (e.g. pull
/// the byte counters out of a sink agent).
pub trait Agent: Any {
    /// Called once when the host starts (at its scheduled start time).
    fn on_start(&mut self, ctx: &mut Ctx);

    /// Called for every packet delivered to this host.
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken);

    /// Human-readable label for debugging.
    fn name(&self) -> &'static str {
        "agent"
    }
}

/// An agent that silently absorbs everything — useful as a sink for
/// background traffic, and as a placeholder endpoint in tests.
#[derive(Debug, Default)]
pub struct SinkAgent {
    /// Packets received.
    pub packets: u64,
    /// Wire bytes received.
    pub bytes: u64,
}

impl Agent for SinkAgent {
    fn on_start(&mut self, _ctx: &mut Ctx) {}

    fn on_packet(&mut self, _ctx: &mut Ctx, pkt: Packet) {
        self.packets += 1;
        self.bytes += pkt.size as u64;
    }

    fn on_timer(&mut self, _ctx: &mut Ctx, _token: TimerToken) {}

    fn name(&self) -> &'static str {
        "sink"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;
    use crate::rng::stream_rng;

    #[test]
    fn ctx_buffers_commands() {
        let mut cmds = Vec::new();
        let mut rng = stream_rng(1, 1);
        let mut ctx = Ctx::new(SimTime::from_millis(3), NodeId(0), &mut cmds, &mut rng);
        assert_eq!(ctx.now(), SimTime::from_millis(3));
        assert_eq!(ctx.node(), NodeId(0));
        ctx.send(PacketSpec::background(FlowId(0), NodeId(1), 100));
        ctx.set_timer(SimDuration::from_millis(10), 99);
        assert_eq!(cmds.len(), 2);
        assert!(matches!(cmds[0], Command::Send(_)));
        assert!(matches!(cmds[1], Command::SetTimer(d, 99) if d == SimDuration::from_millis(10)));
    }

    #[test]
    fn sink_counts_traffic() {
        let mut sink = SinkAgent::default();
        let mut cmds = Vec::new();
        let mut rng = stream_rng(1, 1);
        let mut ctx = Ctx::new(SimTime::ZERO, NodeId(1), &mut cmds, &mut rng);
        let pkt = Packet {
            id: crate::ids::PacketId(1),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 500,
            sent_at: SimTime::ZERO,
            kind: crate::packet::PacketKind::Background,
        };
        sink.on_packet(&mut ctx, pkt);
        sink.on_packet(&mut ctx, pkt);
        assert_eq!(sink.packets, 2);
        assert_eq!(sink.bytes, 1000);
        assert_eq!(sink.name(), "sink");
    }
}
