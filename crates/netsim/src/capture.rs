//! Packet taps — the simulator's `tcpdump`, generalized to streaming
//! observers.
//!
//! The paper's methodology captures packets at the throughput server
//! with `tcpdump` and post-processes them with `tshark`. A tap is any
//! [`PacketSink`] attached to a node: the simulator feeds it one
//! [`PacketRecord`] at a time, as the node sends (`Out`) or receives
//! (`In`) each packet. [`Capture`] is the buffering sink (record
//! everything, analyze later); streaming sinks in `csig-trace`,
//! `csig-features` and `csig-core` analyze records as they arrive and
//! retain only per-flow state.

use crate::ids::NodeId;
use crate::packet::Packet;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Which way a captured packet was travelling relative to the tap node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// The tap node transmitted the packet.
    Out,
    /// The packet was delivered to the tap node.
    In,
}

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Capture timestamp.
    pub time: SimTime,
    /// Direction relative to the tap node.
    pub dir: Direction,
    /// The packet (headers + sizes; no payload bytes exist in the model).
    pub pkt: Packet,
}

/// A streaming packet-tap observer.
///
/// The simulator calls [`PacketSink::on_record`] once per packet the
/// tapped node sends or receives, in event order (which equals
/// timestamp order, FIFO on ties). Implementations decide what to
/// retain: [`Capture`] buffers every record; incremental analyzers
/// keep only bounded per-flow state.
///
/// The `Any` supertype allows the simulator to hand a sink back to its
/// concrete type after a run (`Simulator::sink`/`Simulator::take_sink`).
pub trait PacketSink: Any {
    /// Observe one captured packet.
    fn on_record(&mut self, rec: &PacketRecord);
}

/// Handle returned by `Simulator::attach_capture`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureHandle(pub(crate) usize);

/// Handle returned by `Simulator::attach_sink`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkHandle(pub(crate) usize);

/// A tap attached to one node, accumulating [`PacketRecord`]s in
/// capture order (which equals timestamp order).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Capture {
    /// The tapped node.
    pub node: NodeId,
    /// Records in time order.
    pub records: Vec<PacketRecord>,
}

impl Capture {
    /// An empty capture for `node`.
    pub fn new(node: NodeId) -> Self {
        Capture {
            node,
            records: Vec::new(),
        }
    }

    pub(crate) fn record(&mut self, time: SimTime, dir: Direction, pkt: &Packet) {
        self.records.push(PacketRecord {
            time,
            dir,
            pkt: *pkt,
        });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records for one flow only, preserving order.
    pub fn flow(&self, flow: crate::ids::FlowId) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter().filter(move |r| r.pkt.flow == flow)
    }
}

/// The buffer-everything sink: a `Capture` is just one kind of tap.
impl PacketSink for Capture {
    fn on_record(&mut self, rec: &PacketRecord) {
        self.record(rec.time, rec.dir, &rec.pkt);
    }
}

/// A sink that discards everything — placeholder left behind when a
/// sink is taken out of the simulator mid-run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl PacketSink for NullSink {
    fn on_record(&mut self, _rec: &PacketRecord) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, PacketId};
    use crate::packet::PacketKind;

    fn pkt(flow: u32) -> Packet {
        Packet {
            id: PacketId(0),
            flow: FlowId(flow),
            src: NodeId(0),
            dst: NodeId(1),
            size: 100,
            sent_at: SimTime::ZERO,
            kind: PacketKind::Background,
        }
    }

    #[test]
    fn records_accumulate_in_order() {
        let mut c = Capture::new(NodeId(0));
        assert!(c.is_empty());
        c.record(SimTime::from_millis(1), Direction::Out, &pkt(1));
        c.record(SimTime::from_millis(2), Direction::In, &pkt(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.records[0].dir, Direction::Out);
        assert_eq!(c.records[1].time, SimTime::from_millis(2));
    }

    #[test]
    fn flow_filter() {
        let mut c = Capture::new(NodeId(0));
        c.record(SimTime::ZERO, Direction::Out, &pkt(1));
        c.record(SimTime::ZERO, Direction::Out, &pkt(2));
        c.record(SimTime::ZERO, Direction::In, &pkt(1));
        assert_eq!(c.flow(FlowId(1)).count(), 2);
        assert_eq!(c.flow(FlowId(3)).count(), 0);
    }
}
