//! The discrete-event core: a time-ordered queue of pending events.
//!
//! Ties are broken by insertion order (a monotonically increasing
//! sequence number), which makes event processing fully deterministic.

use crate::fault::FaultAction;
use crate::ids::{LinkId, NodeId};
use crate::link::LinkConfig;
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Opaque timer payload an agent chooses when arming a timer and gets
/// back when it fires. Agents typically encode a generation counter so
/// stale timers can be ignored (there is no cancellation).
pub type TimerToken = u64;

/// Something scheduled to happen.
#[derive(Debug)]
pub enum EventKind {
    /// A host agent's initial activation.
    Start(NodeId),
    /// A timer armed by the agent on `node` fires.
    Timer(NodeId, TimerToken),
    /// A packet arrives at `node` (off the wire).
    Deliver(NodeId, Packet),
    /// The link should attempt to transmit its head-of-line packet.
    LinkService(LinkId),
    /// Replace the link's parameters (time-varying path state).
    LinkReconfig(LinkId, LinkConfig),
    /// A scheduled fault (down/up flap, rate or delay step) fires.
    LinkFault(LinkId, FaultAction),
}

#[derive(Debug)]
pub(crate) struct EventEntry {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Min-heap of pending events ordered by `(time, insertion order)`.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<EventEntry>>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(EventEntry { time, seq, kind }));
    }

    /// Earliest pending event time.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<EventEntry> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is pending.
    #[allow(dead_code)] // used by tests; kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), EventKind::Start(NodeId(0)));
        q.push(SimTime::from_millis(1), EventKind::Start(NodeId(1)));
        q.push(SimTime::from_millis(3), EventKind::Start(NodeId(2)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        q.push(t, EventKind::Start(NodeId(10)));
        q.push(t, EventKind::Start(NodeId(20)));
        q.push(t, EventKind::Start(NodeId(30)));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn peek_time_reports_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2), EventKind::Start(NodeId(0)));
        q.push(SimTime::from_secs(1), EventKind::Start(NodeId(0)));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
