//! The discrete-event core: a calendar-queue scheduler.
//!
//! Ties are broken by insertion order (a monotonically increasing
//! sequence number), which makes event processing fully deterministic.
//!
//! # Design
//!
//! A plain `BinaryHeap` costs `O(log n)` comparisons (on ~40-byte
//! entries) per push and pop. Simulation events are overwhelmingly
//! short-horizon — link services, packet deliveries and RTO timers all
//! land within a few hundred milliseconds of *now* — so a calendar
//! queue (Brown 1988) fits: time is divided into fixed-width buckets
//! and an event is pushed onto its bucket's unsorted `Vec` in `O(1)`.
//!
//! Three tiers hold every pending event, keyed by the event's absolute
//! bucket number `b(t) = t >> BUCKET_WIDTH_SHIFT` relative to the wheel
//! cursor `wheel_pos`:
//!
//! * **near** (`b ≤ wheel_pos`): a small `(time, seq)` min-heap that
//!   hands out events in exact order. Only events about to fire live
//!   here, so the heap stays shallow.
//! * **wheel** (`wheel_pos < b ≤ wheel_pos + NUM_BUCKETS`): one
//!   unsorted `Vec` per bucket. Within this window the mapping
//!   `b → b % NUM_BUCKETS` is injective, so each slot holds exactly one
//!   bucket's events. An occupancy bitmap lets the cursor skip runs of
//!   empty buckets in a few word operations.
//! * **overflow** (`b > wheel_pos + NUM_BUCKETS`): a `(time, seq)`
//!   min-heap for far-future events (idle-connection RTOs, scheduled
//!   faults). Drained into the wheel as the cursor advances.
//!
//! When the near heap runs dry, the cursor advances to the next
//! occupied bucket (or jumps straight to the overflow minimum) and
//! migrates that single bucket into the near heap. Ordering is exact:
//! every event outside `near` has a strictly larger bucket number —
//! hence a strictly larger time — than everything inside it, and the
//! near heap orders by `(time, seq)`, so the global pop sequence is
//! identical to the reference heap's.

use crate::fault::FaultAction;
use crate::ids::{LinkId, NodeId};
use crate::link::LinkConfig;
use crate::pool::PacketHandle;
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Opaque timer payload an agent chooses when arming a timer and gets
/// back when it fires. Agents typically encode a generation counter so
/// stale timers can be ignored (there is no cancellation).
pub type TimerToken = u64;

/// Something scheduled to happen.
#[derive(Debug)]
pub enum EventKind {
    /// A host agent's initial activation.
    Start(NodeId),
    /// A timer armed by the agent on `node` fires.
    Timer(NodeId, TimerToken),
    /// A packet (held in the simulator's pool) arrives at `node`.
    Deliver(NodeId, PacketHandle),
    /// The link should attempt to transmit its head-of-line packet.
    LinkService(LinkId),
    /// Replace the link's parameters (time-varying path state). Boxed
    /// so the rare reconfiguration does not widen every event entry.
    LinkReconfig(LinkId, Box<LinkConfig>),
    /// A scheduled fault (down/up flap, rate or delay step) fires.
    LinkFault(LinkId, FaultAction),
}

/// A pending event: firing time, FIFO tie-break, payload.
#[derive(Debug)]
pub struct EventEntry {
    /// Absolute firing time.
    pub time: SimTime,
    /// Insertion sequence number (tie-break within one instant).
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Width of one calendar bucket as a power of two in nanoseconds:
/// 2^16 ns ≈ 65.5 µs.
const BUCKET_WIDTH_SHIFT: u32 = 16;
/// Buckets on the wheel; the covered window is
/// `NUM_BUCKETS << BUCKET_WIDTH_SHIFT` ≈ 268 ms.
const NUM_BUCKETS: usize = 4096;
/// Words in the occupancy bitmap.
const BITMAP_WORDS: usize = NUM_BUCKETS / 64;

/// Calendar queue of pending events ordered by `(time, insertion
/// order)`. Drop-in replacement for a `(time, seq)` min-heap with
/// near-O(1) push/pop for short-horizon events.
#[derive(Debug)]
pub struct EventQueue {
    /// Events in buckets at or before the cursor; exact `(time, seq)`
    /// min-heap — the only tier pops come from.
    near: BinaryHeap<Reverse<EventEntry>>,
    /// One unsorted vec per wheel bucket.
    slots: Vec<Vec<EventEntry>>,
    /// Bit per slot: set iff the slot is non-empty.
    occupied: [u64; BITMAP_WORDS],
    /// Absolute bucket number the cursor has reached. Every bucket
    /// `≤ wheel_pos` has been migrated into `near`.
    wheel_pos: u64,
    /// Events currently stored in wheel slots.
    wheel_len: usize,
    /// Events beyond the wheel window.
    overflow: BinaryHeap<Reverse<EventEntry>>,
    next_seq: u64,
    len: usize,
    high_water: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Absolute bucket number of an event time.
#[inline]
fn bucket_of(time: SimTime) -> u64 {
    time.as_nanos() >> BUCKET_WIDTH_SHIFT
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            near: BinaryHeap::new(),
            slots: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            wheel_pos: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            len: 0,
            high_water: 0,
        }
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = EventEntry { time, seq, kind };
        let b = bucket_of(time);
        if b <= self.wheel_pos {
            // At or behind the cursor (the cursor may sit past *now*
            // after skipping idle stretches): the near heap absorbs it
            // and keeps exact order.
            self.near.push(Reverse(entry));
        } else if b - self.wheel_pos <= NUM_BUCKETS as u64 {
            let s = (b % NUM_BUCKETS as u64) as usize;
            if self.slots[s].is_empty() {
                self.occupied[s / 64] |= 1u64 << (s % 64);
            }
            self.slots[s].push(entry);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
    }

    /// Highest number of simultaneously pending events ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Earliest pending event time. Takes `&mut self` because it may
    /// advance the wheel cursor to expose the minimum.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle();
        self.near.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<EventEntry> {
        self.settle();
        let Reverse(e) = self.near.pop()?;
        self.len -= 1;
        Some(e)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Advance the cursor until the near heap holds the global minimum
    /// (or the queue is proven empty).
    fn settle(&mut self) {
        while self.near.is_empty() {
            if self.wheel_len == 0 {
                match self.overflow.peek() {
                    None => return, // truly empty
                    Some(Reverse(e)) => {
                        // Jump the cursor so the next step drains the
                        // overflow minimum. Invariant: overflow buckets
                        // are > wheel_pos + NUM_BUCKETS, so this moves
                        // strictly forward and the (empty) wheel stays
                        // consistent under the new cursor.
                        self.wheel_pos = bucket_of(e.time) - 1;
                    }
                }
            } else {
                // Skip empty buckets wholesale; within the window,
                // circular slot order equals bucket order.
                self.wheel_pos += self.next_occupied_distance();
            }
            self.advance_one();
        }
    }

    /// Move the cursor one bucket forward: migrate that bucket into the
    /// near heap, then pull newly-in-window events out of overflow.
    fn advance_one(&mut self) {
        self.wheel_pos += 1;
        let s = (self.wheel_pos % NUM_BUCKETS as u64) as usize;
        let migrated = self.slots[s].len();
        if migrated > 0 {
            self.wheel_len -= migrated;
            self.occupied[s / 64] &= !(1u64 << (s % 64));
            for e in self.slots[s].drain(..) {
                self.near.push(Reverse(e));
            }
        }
        // Drain overflow events that fit the window now. Migrating the
        // slot first matters: a drained event one full window ahead
        // (bucket == wheel_pos + NUM_BUCKETS) lands in the slot just
        // emptied.
        let horizon = self.wheel_pos + NUM_BUCKETS as u64;
        while let Some(Reverse(e)) = self.overflow.peek() {
            let b = bucket_of(e.time);
            if b > horizon {
                break;
            }
            let Some(Reverse(e)) = self.overflow.pop() else {
                unreachable!("peek returned Some")
            };
            if b <= self.wheel_pos {
                self.near.push(Reverse(e));
            } else {
                let s = (b % NUM_BUCKETS as u64) as usize;
                if self.slots[s].is_empty() {
                    self.occupied[s / 64] |= 1u64 << (s % 64);
                }
                self.slots[s].push(e);
                self.wheel_len += 1;
            }
        }
    }

    /// Circular distance from the slot after the cursor to the first
    /// occupied slot (0 when the very next slot is occupied). Requires
    /// `wheel_len > 0`.
    fn next_occupied_distance(&self) -> u64 {
        let start = ((self.wheel_pos + 1) % NUM_BUCKETS as u64) as usize;
        let mut word_idx = start / 64;
        let mut word = self.occupied[word_idx] & (!0u64 << (start % 64));
        let mut scanned = 0;
        loop {
            if word != 0 {
                let pos = word_idx * 64 + word.trailing_zeros() as usize;
                return ((pos + NUM_BUCKETS - start) % NUM_BUCKETS) as u64;
            }
            debug_assert!(scanned <= BITMAP_WORDS, "wheel_len > 0 but bitmap empty");
            word_idx = (word_idx + 1) % BITMAP_WORDS;
            word = self.occupied[word_idx];
            scanned += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), EventKind::Start(NodeId(0)));
        q.push(SimTime::from_millis(1), EventKind::Start(NodeId(1)));
        q.push(SimTime::from_millis(3), EventKind::Start(NodeId(2)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        q.push(t, EventKind::Start(NodeId(10)));
        q.push(t, EventKind::Start(NodeId(20)));
        q.push(t, EventKind::Start(NodeId(30)));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn peek_time_reports_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2), EventKind::Start(NodeId(0)));
        q.push(SimTime::from_secs(1), EventKind::Start(NodeId(0)));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = EventQueue::new();
        // Hours ahead — far beyond the wheel window.
        q.push(SimTime::from_secs(3600), EventKind::Start(NodeId(1)));
        q.push(SimTime::from_nanos(10), EventKind::Start(NodeId(0)));
        q.push(SimTime::from_secs(7200), EventKind::Start(NodeId(2)));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        // Push a batch, pop some, push earlier-than-cursor and far
        // future events, and verify the merged order is still sorted by
        // (time, seq).
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(
                SimTime::from_nanos(i * 50_000),
                EventKind::Timer(NodeId(0), i),
            );
        }
        let mut popped = Vec::new();
        for _ in 0..50 {
            let Some(e) = q.pop() else {
                panic!("short queue")
            };
            popped.push((e.time, e.seq));
        }
        // The cursor has advanced; push events behind it and far ahead.
        q.push(SimTime::from_nanos(1), EventKind::Timer(NodeId(0), 900));
        q.push(SimTime::from_secs(100), EventKind::Timer(NodeId(0), 901));
        while let Some(e) = q.pop() {
            popped.push((e.time, e.seq));
        }
        // The behind-cursor push fires immediately (its time is in the
        // past), exactly as the reference heap would order it.
        assert_eq!(popped.len(), 102);
        // The tail after re-pushing must itself be sorted.
        assert!(popped[50..].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn same_tick_ties_across_tiers_preserved() {
        // Two events at the same far-future instant entering overflow
        // must pop in insertion order.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1000);
        q.push(t, EventKind::Start(NodeId(1)));
        q.push(t, EventKind::Start(NodeId(2)));
        q.push(SimTime::ZERO, EventKind::Start(NodeId(0)));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn high_water_and_len_track_all_tiers() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), EventKind::Start(NodeId(0)));
        q.push(SimTime::from_millis(50), EventKind::Start(NodeId(1)));
        q.push(SimTime::from_secs(50), EventKind::Start(NodeId(2)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.high_water(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn sparse_idle_stretches_are_skipped() {
        // Events many empty buckets apart exercise the bitmap skip.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..20).map(|i| i * 13_000_000 + 17).collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(
                SimTime::from_nanos(t),
                EventKind::Timer(NodeId(0), i as u64),
            );
        }
        let got: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_nanos())
            .collect();
        assert_eq!(got, times);
    }
}
