//! Deterministic fault injection: composable link impairments.
//!
//! A [`FaultPlan`] attaches to a link and layers *hostile-path*
//! behaviour on top of the link's nominal configuration:
//!
//! * **Bursty loss** — a Gilbert–Elliott two-state Markov chain
//!   ([`GilbertElliott`]), the standard model for correlated wireless /
//!   congested-path loss; plain i.i.d. loss remains available as
//!   [`LossModel::Iid`].
//! * **Reordering** — a fraction of departing packets is held back by an
//!   extra delay and exempted from the link's FIFO-delivery clamp, so it
//!   arrives behind packets serialized after it (netem `reorder`).
//! * **Duplication** — a fraction of admitted packets is enqueued twice
//!   (netem `duplicate`).
//! * **Scheduled events** — link down/up flaps and bandwidth or
//!   propagation-delay step changes at fixed simulated times
//!   ([`FaultAction`]).
//!
//! Every random draw comes from a dedicated per-link PRNG stream derived
//! from the simulation's master seed (see [`crate::rng::stream_rng`]),
//! so identical seeds produce identical impairment sequences regardless
//! of worker count, host count, or unrelated configuration. Each
//! impairment decision is appended to an [`ImpairmentRecord`] log that
//! tests and experiments can compare byte-for-byte.

use crate::ids::PacketId;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gilbert–Elliott two-state (good/bad) Markov loss model.
///
/// On every offered packet the chain first decides loss with the current
/// state's loss probability, then transitions. The stationary loss rate
/// is `π_bad · loss_bad + π_good · loss_good` with
/// `π_bad = p_enter_bad / (p_enter_bad + p_exit_bad)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Per-packet probability of moving good → bad.
    pub p_enter_bad: f64,
    /// Per-packet probability of moving bad → good. The mean burst
    /// length is `1 / p_exit_bad` packets.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// The classic lossy-burst parameterization: no loss in the good
    /// state, certain loss in the bad state, mean burst length
    /// `burst_len` packets, stationary loss rate `mean_loss`.
    ///
    /// # Panics
    /// Panics if `burst_len < 1` or `mean_loss` is outside `[0, 1)`.
    pub fn bursty(burst_len: f64, mean_loss: f64) -> Self {
        assert!(burst_len >= 1.0, "mean burst length must be >= 1 packet");
        assert!(
            (0.0..1.0).contains(&mean_loss),
            "mean loss must be in [0,1)"
        );
        let p_exit_bad = 1.0 / burst_len;
        // π_bad = p / (p + r) = mean_loss  ⇒  p = r·mean_loss/(1-mean_loss)
        let p_enter_bad = p_exit_bad * mean_loss / (1.0 - mean_loss);
        GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// Stationary (long-run) loss rate of the chain.
    pub fn mean_loss(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom <= 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_enter_bad / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// How a fault plan decides per-packet loss. Replaces the link's
/// configured i.i.d. loss while attached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Independent per-packet loss with this probability.
    Iid(f64),
    /// Correlated bursty loss.
    GilbertElliott(GilbertElliott),
}

/// Reordering impairment: with `probability`, a departing packet's
/// arrival is delayed by `extra_delay` and exempted from the link's
/// in-order delivery clamp, so later packets overtake it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReorderSpec {
    /// Per-packet reorder probability in `[0, 1)`.
    pub probability: f64,
    /// How far behind its nominal arrival the packet is held.
    pub extra_delay: SimDuration,
}

/// A scheduled mid-flow fault applied to the link state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Take the link down: every offered packet is dropped; queued
    /// packets stay queued but are not serviced.
    Down,
    /// Bring the link back up; a backlog resumes draining immediately.
    Up,
    /// Step the shaped rate to this many bits per second (the physical
    /// rate is raised to match if it would fall below the shaped rate).
    Rate(u64),
    /// Step the one-way propagation delay.
    Delay(SimDuration),
}

/// One scheduled fault: apply `action` at simulated time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A composable set of impairments for one link.
///
/// Build with the fluent methods, then attach with
/// [`Simulator::attach_fault_plan`](crate::sim::Simulator::attach_fault_plan):
///
/// ```
/// use csig_netsim::{FaultPlan, GilbertElliott, SimDuration, SimTime};
///
/// let plan = FaultPlan::new()
///     .gilbert_elliott(GilbertElliott::bursty(8.0, 0.01))
///     .reorder(0.02, SimDuration::from_millis(5))
///     .duplicate(0.001)
///     .down_between(SimTime::from_secs(2), SimTime::from_secs(3));
/// assert_eq!(plan.events.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Loss model replacing the link's configured i.i.d. loss
    /// (`None` = keep the link's own `loss` setting).
    pub loss: Option<LossModel>,
    /// Optional reordering impairment.
    pub reorder: Option<ReorderSpec>,
    /// Per-packet duplication probability in `[0, 1)`.
    pub duplicate: f64,
    /// Scheduled mid-flow faults, in any order (the simulator's event
    /// queue sorts them by time).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no impairments).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan impairs nothing.
    pub fn is_empty(&self) -> bool {
        self.loss.is_none()
            && self.reorder.is_none()
            && self.duplicate == 0.0
            && self.events.is_empty()
    }

    /// Builder: replace the link's loss with an i.i.d. model.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    pub fn iid_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability must be in [0,1)");
        self.loss = Some(LossModel::Iid(p));
        self
    }

    /// Builder: replace the link's loss with a Gilbert–Elliott chain.
    pub fn gilbert_elliott(mut self, ge: GilbertElliott) -> Self {
        self.loss = Some(LossModel::GilbertElliott(ge));
        self
    }

    /// Builder: reorder packets with probability `p`, holding them back
    /// by `extra_delay`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    pub fn reorder(mut self, p: f64, extra_delay: SimDuration) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "reorder probability must be in [0,1)"
        );
        self.reorder = Some(ReorderSpec {
            probability: p,
            extra_delay,
        });
        self
    }

    /// Builder: duplicate admitted packets with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    pub fn duplicate(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "duplicate probability must be in [0,1)"
        );
        self.duplicate = p;
        self
    }

    /// Builder: schedule one fault.
    pub fn event(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Builder: flap the link down at `down` and back up at `up`.
    ///
    /// # Panics
    /// Panics unless `down < up`.
    pub fn down_between(self, down: SimTime, up: SimTime) -> Self {
        assert!(down < up, "link must come back up after it goes down");
        self.event(down, FaultAction::Down)
            .event(up, FaultAction::Up)
    }
}

/// What happened to one packet at an impaired link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Impairment {
    /// Dropped by the loss model.
    Lost,
    /// Dropped because the link was down.
    LostDown,
    /// Held back past later packets.
    Reordered,
    /// A second copy was enqueued.
    Duplicated,
}

/// One entry of a link's impairment log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImpairmentRecord {
    /// Simulated time of the decision.
    pub at: SimTime,
    /// The affected packet.
    pub packet: PacketId,
    /// What the fault layer did.
    pub what: Impairment,
}

/// Runtime state of an attached fault plan: the plan, its dedicated
/// PRNG stream, the loss chain's current state and the impairment log.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    /// Gilbert–Elliott chain state (`true` = bad).
    ge_bad: bool,
    log: Vec<ImpairmentRecord>,
}

impl FaultState {
    /// Runtime state for `plan` drawing from `rng` (a per-link stream).
    pub fn new(plan: FaultPlan, rng: StdRng) -> Self {
        FaultState {
            plan,
            rng,
            ge_bad: false,
            log: Vec::new(),
        }
    }

    /// The plan this state executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The impairment decisions made so far, in event order.
    pub fn log(&self) -> &[ImpairmentRecord] {
        &self.log
    }

    pub(crate) fn record(&mut self, at: SimTime, packet: PacketId, what: Impairment) {
        self.log.push(ImpairmentRecord { at, packet, what });
    }

    /// Whether the plan supplies its own loss model (overriding the
    /// link's configured i.i.d. loss).
    pub(crate) fn overrides_loss(&self) -> bool {
        self.plan.loss.is_some()
    }

    /// Per-packet loss decision; advances the Gilbert–Elliott chain.
    pub(crate) fn roll_loss(&mut self) -> bool {
        match self.plan.loss {
            None => false,
            Some(LossModel::Iid(p)) => p > 0.0 && self.rng.gen::<f64>() < p,
            Some(LossModel::GilbertElliott(ge)) => {
                let p = if self.ge_bad {
                    ge.loss_bad
                } else {
                    ge.loss_good
                };
                let lost = self.rng.gen::<f64>() < p;
                // Transition after the loss decision.
                let t = self.rng.gen::<f64>();
                self.ge_bad = if self.ge_bad {
                    t >= ge.p_exit_bad
                } else {
                    t < ge.p_enter_bad
                };
                lost
            }
        }
    }

    /// Per-departure reorder decision: the extra hold-back, if any.
    pub(crate) fn roll_reorder(&mut self) -> Option<SimDuration> {
        let spec = self.plan.reorder?;
        (spec.probability > 0.0 && self.rng.gen::<f64>() < spec.probability)
            .then_some(spec.extra_delay)
    }

    /// Per-admission duplication decision.
    pub(crate) fn roll_duplicate(&mut self) -> bool {
        self.plan.duplicate > 0.0 && self.rng.gen::<f64>() < self.plan.duplicate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    #[test]
    fn bursty_parameterization_hits_target_loss() {
        let ge = GilbertElliott::bursty(8.0, 0.02);
        assert!((ge.mean_loss() - 0.02).abs() < 1e-12);
        assert!((1.0 / ge.p_exit_bad - 8.0).abs() < 1e-12);
    }

    #[test]
    fn ge_chain_produces_bursts_at_the_target_rate() {
        let ge = GilbertElliott::bursty(10.0, 0.05);
        let mut st = FaultState::new(FaultPlan::new().gilbert_elliott(ge), stream_rng(7, 1));
        let n = 200_000;
        let mut losses = 0u32;
        let mut bursts = 0u32;
        let mut in_burst = false;
        for _ in 0..n {
            let lost = st.roll_loss();
            if lost {
                losses += 1;
                if !in_burst {
                    bursts += 1;
                }
            }
            in_burst = lost;
        }
        let rate = losses as f64 / n as f64;
        assert!((0.04..0.06).contains(&rate), "loss rate {rate}");
        // Mean burst length near 10 packets (correlated, not i.i.d.).
        let mean_burst = losses as f64 / bursts as f64;
        assert!((8.0..12.0).contains(&mean_burst), "burst {mean_burst}");
    }

    #[test]
    fn identical_streams_identical_decisions() {
        let plan = FaultPlan::new()
            .gilbert_elliott(GilbertElliott::bursty(4.0, 0.1))
            .reorder(0.05, SimDuration::from_millis(3))
            .duplicate(0.01);
        let mut a = FaultState::new(plan.clone(), stream_rng(42, 9));
        let mut b = FaultState::new(plan, stream_rng(42, 9));
        for _ in 0..10_000 {
            assert_eq!(a.roll_loss(), b.roll_loss());
            assert_eq!(a.roll_reorder(), b.roll_reorder());
            assert_eq!(a.roll_duplicate(), b.roll_duplicate());
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let mut st = FaultState::new(plan, stream_rng(1, 1));
        for _ in 0..100 {
            assert!(!st.roll_loss());
            assert!(st.roll_reorder().is_none());
            assert!(!st.roll_duplicate());
        }
    }

    #[test]
    #[should_panic]
    fn up_before_down_rejected() {
        let _ = FaultPlan::new().down_between(SimTime::from_secs(2), SimTime::from_secs(1));
    }
}
