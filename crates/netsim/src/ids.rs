//! Typed identifiers for simulation entities.
//!
//! Every node, link, flow and packet carries a small copyable id. Using
//! newtypes (rather than bare integers) prevents the classic bug of
//! indexing the link table with a node id.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a node (host or router) in the topology.
    NodeId,
    "n"
);
id_type!(
    /// Identifies a unidirectional link in the topology.
    LinkId,
    "l"
);
id_type!(
    /// Identifies a transport-layer flow (a TCP connection or probe
    /// stream). Flow ids are assigned by the application layer and are
    /// carried on every packet so captures can demultiplex.
    FlowId,
    "f"
);

/// Identifies a single packet instance. Retransmissions of the same TCP
/// sequence range get fresh packet ids, which makes wire-level debugging
/// unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(7).to_string(), "l7");
        assert_eq!(FlowId(1).to_string(), "f1");
        assert_eq!(PacketId(9).to_string(), "p9");
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(LinkId(5).index(), 5usize);
        assert_eq!(NodeId::from(4u32), NodeId(4));
    }
}
