//! # csig-netsim — deterministic discrete-event network simulator
//!
//! The measurement substrate for the *TCP Congestion Signatures*
//! reproduction: an event-driven, packet-level network simulator that
//! plays the role of the paper's physical testbed (Raspberry Pis,
//! Linksys routers, and `tc`-shaped links).
//!
//! ## Building blocks
//!
//! * [`Simulator`] — topology construction, static routing, and the
//!   event loop.
//! * [`Link`]/[`LinkConfig`] — unidirectional links with token-bucket
//!   shaping, drop-tail or RED buffers, propagation delay, uniform
//!   jitter and i.i.d. loss (the `tc tbf` + `netem` model).
//! * [`Agent`] — protocol/application code on hosts (TCP endpoints and
//!   traffic generators live in higher crates).
//! * [`PacketSink`] — per-node packet taps, fed one record at a time;
//!   [`Capture`] is the buffering sink (the simulator's `tcpdump`).
//!
//! ## Determinism
//!
//! A simulation is a pure function of `(topology, agents, seed)`: the
//! event queue breaks ties by insertion order and every random choice
//! derives from the master seed through per-component streams
//! ([`rng::stream_rng`]). Repeating a run reproduces byte-identical
//! captures, which the experiment harness relies on.
//!
//! ## Example
//!
//! ```
//! use csig_netsim::{Simulator, LinkConfig, SimDuration, SinkAgent};
//!
//! let mut sim = Simulator::new(42);
//! let a = sim.add_host(Box::new(SinkAgent::default()));
//! let b = sim.add_host(Box::new(SinkAgent::default()));
//! sim.add_duplex_link(a, b, LinkConfig::new(20_000_000, SimDuration::from_millis(10)));
//! sim.compute_routes();
//! sim.run();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod agent;
pub mod capture;
pub mod event;
pub mod fault;
pub mod ids;
pub mod link;
pub mod packet;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;

pub use agent::{Agent, Command, Ctx, SinkAgent};
pub use capture::{
    Capture, CaptureHandle, Direction, NullSink, PacketRecord, PacketSink, SinkHandle,
};
pub use event::{EventEntry, EventKind, EventQueue, TimerToken};
pub use fault::{
    FaultAction, FaultEvent, FaultPlan, GilbertElliott, Impairment, ImpairmentRecord, LossModel,
    ReorderSpec,
};
pub use ids::{FlowId, LinkId, NodeId, PacketId};
pub use link::{BufferSize, Link, LinkConfig};
pub use packet::{
    Packet, PacketKind, PacketSpec, ProbeKind, SackBlocks, TcpFlags, TcpHeader, DEFAULT_MSS,
    NO_SACK, TCP_HEADER_BYTES,
};
pub use pool::{PacketHandle, PacketPool};
pub use queue::{QueueKind, RedParams};
pub use sim::{Simulator, StopReason};
pub use stats::LinkStats;
pub use time::{transmission_time, SimDuration, SimTime};
