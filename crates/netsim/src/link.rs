//! Link model: token-bucket shaping, serialization, propagation, jitter
//! and loss.
//!
//! A link is unidirectional. It mirrors the paper's testbed construction,
//! where `tc` applies a token-bucket filter (rate + small burst) in front
//! of a physical NIC: packets wait in a byte-limited buffer
//! ([`LinkQueue`]), depart when the bucket holds enough tokens, occupy
//! the wire for a serialization time at the physical rate, then arrive
//! after the propagation delay plus optional uniform jitter. I.i.d.
//! random loss (netem-style) is applied at admission.

use crate::fault::{FaultAction, FaultState, Impairment, ImpairmentRecord};
use crate::ids::{LinkId, NodeId};
use crate::packet::Packet;
use crate::pool::{PacketHandle, PacketPool};
use crate::queue::{EnqueueResult, LinkQueue, QueueKind, QueuedPacket};
use crate::stats::LinkStats;
use crate::time::{transmission_time, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the buffer depth is specified.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BufferSize {
    /// Absolute byte capacity.
    Bytes(u64),
    /// Capacity expressed as queueing delay at the link rate — the
    /// convention the paper uses ("a 100 ms buffer"). Resolved to
    /// `rate_bps × duration / 8` bytes, with a floor of two MTUs.
    Time(SimDuration),
}

impl BufferSize {
    /// Resolve to bytes for a link of the given shaped rate.
    pub fn resolve(self, rate_bps: u64) -> u64 {
        match self {
            BufferSize::Bytes(b) => b.max(2 * 1500),
            BufferSize::Time(d) => {
                let bytes = (rate_bps as u128 * d.as_nanos() as u128) / (8 * 1_000_000_000);
                (bytes as u64).max(2 * 1500)
            }
        }
    }
}

/// Static configuration of a link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Shaped (token generation) rate in bits per second.
    pub rate_bps: u64,
    /// Physical serialization rate in bits per second. Packets occupy
    /// the wire for `size / phy_rate`; must be ≥ `rate_bps`. Defaults to
    /// `rate_bps` (no burst speed-up).
    pub phy_rate_bps: u64,
    /// Token bucket depth in bytes (the paper's testbed used 5 KB).
    /// Clamped to at least one MTU so full-size packets can pass.
    pub burst_bytes: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Uniform jitter: each packet's propagation delay is drawn from
    /// `prop_delay ± jitter` (clamped at zero).
    pub jitter: SimDuration,
    /// I.i.d. packet loss probability in `[0, 1)`, applied at admission.
    pub loss: f64,
    /// Buffer depth.
    pub buffer: BufferSize,
    /// Admission policy.
    pub queue: QueueKind,
    /// If `false` (default) delivery order is forced to match departure
    /// order even when jitter would reorder packets, like a FIFO wire.
    pub allow_reorder: bool,
}

impl LinkConfig {
    /// A link with the given shaped rate and propagation delay; no
    /// jitter, no loss, drop-tail buffer of 100 ms, 5 KB burst.
    pub fn new(rate_bps: u64, prop_delay: SimDuration) -> Self {
        LinkConfig {
            rate_bps,
            phy_rate_bps: rate_bps,
            burst_bytes: 5 * 1024,
            prop_delay,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            buffer: BufferSize::Time(SimDuration::from_millis(100)),
            queue: QueueKind::DropTail,
            allow_reorder: false,
        }
    }

    /// Builder: set the buffer depth as queueing delay at the link rate.
    pub fn buffer_ms(mut self, ms: u64) -> Self {
        self.buffer = BufferSize::Time(SimDuration::from_millis(ms));
        self
    }

    /// Builder: set the buffer depth in bytes.
    pub fn buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer = BufferSize::Bytes(bytes);
        self
    }

    /// Builder: set the i.i.d. loss probability.
    pub fn loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability must be in [0,1)");
        self.loss = p;
        self
    }

    /// Builder: set uniform jitter around the propagation delay.
    pub fn jitter(mut self, j: SimDuration) -> Self {
        self.jitter = j;
        self
    }

    /// Builder: set the physical serialization rate (≥ shaped rate).
    pub fn phy_rate(mut self, bps: u64) -> Self {
        self.phy_rate_bps = bps;
        self
    }

    /// Builder: set the admission policy.
    pub fn queue_kind(mut self, q: QueueKind) -> Self {
        self.queue = q;
        self
    }

    /// Builder: set the token bucket depth in bytes.
    pub fn burst(mut self, bytes: u64) -> Self {
        self.burst_bytes = bytes;
        self
    }
}

/// Token bucket: accumulates byte credit at the shaped rate up to the
/// burst depth.
#[derive(Debug)]
struct TokenBucket {
    rate_bps: u64,
    burst_bytes: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        let burst = burst_bytes.max(1500) as f64;
        TokenBucket {
            rate_bps,
            burst_bytes: burst,
            tokens: burst, // starts full, like tbf
            last_refill: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_refill);
        if !elapsed.is_zero() {
            let credit = elapsed.as_nanos() as f64 * self.rate_bps as f64 / 8e9;
            self.tokens = (self.tokens + credit).min(self.burst_bytes);
            self.last_refill = now;
        }
    }

    fn has(&self, bytes: u32) -> bool {
        self.tokens >= bytes as f64
    }

    fn consume(&mut self, bytes: u32) {
        debug_assert!(self.has(bytes));
        self.tokens -= bytes as f64;
    }

    /// Time until `bytes` of credit are available (zero if already).
    fn time_until(&self, bytes: u32) -> SimDuration {
        let deficit = bytes as f64 - self.tokens;
        if deficit <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = deficit * 8e9 / self.rate_bps as f64;
        // Round up and add 1 ns so the retry definitely has the credit.
        SimDuration::from_nanos(ns.ceil() as u64 + 1)
    }
}

/// What the simulator should do after offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet buffered; if `schedule_service` the caller must schedule a
    /// `LinkService` event at the returned time (no service is pending).
    Queued {
        /// Whether the caller must schedule the next service event.
        schedule_service: bool,
        /// Earliest time the head of line can be looked at.
        service_at: SimTime,
    },
    /// Packet dropped by random loss before reaching the buffer.
    DroppedLoss,
    /// Packet dropped because the buffer was full.
    DroppedFull,
    /// Packet dropped by early detection (RED).
    DroppedEarly,
    /// Packet dropped because the link is down (fault injection).
    DroppedDown,
}

/// What the simulator should do after a `LinkService` event fires.
#[derive(Debug)]
pub enum ServiceOutcome {
    /// Nothing buffered; the link went idle (no service pending).
    Idle,
    /// Not enough token credit yet; reschedule service at the given time.
    Retry(SimTime),
    /// A packet departed.
    Deliver {
        /// Handle of the packet (in the simulator's pool), to arrive at
        /// the link's `to` node.
        pkt: PacketHandle,
        /// Arrival instant at the far end.
        arrival: SimTime,
        /// If `Some`, schedule the next service event at this time
        /// (more packets are waiting); if `None` the link went idle.
        next_service: Option<SimTime>,
    },
}

/// Runtime state of one unidirectional link.
#[derive(Debug)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Node whose egress this link is.
    pub from: NodeId,
    /// Node packets arrive at.
    pub to: NodeId,
    cfg: LinkConfig,
    bucket: TokenBucket,
    queue: LinkQueue,
    /// When the wire finishes serializing the last departed packet.
    wire_free_at: SimTime,
    /// Latest delivery timestamp handed out (for reorder clamping).
    last_arrival: SimTime,
    /// True while a `LinkService` event is in the event queue.
    service_pending: bool,
    /// Attached fault plan state (impairments + dedicated RNG stream).
    fault: Option<FaultState>,
    /// True while a scheduled [`FaultAction::Down`] is in effect.
    down: bool,
    /// Counters.
    pub stats: LinkStats,
}

impl Link {
    /// Build a link from config.
    ///
    /// # Panics
    /// Panics if the physical rate is below the shaped rate or either
    /// rate is zero.
    pub fn new(id: LinkId, from: NodeId, to: NodeId, cfg: LinkConfig) -> Self {
        assert!(cfg.rate_bps > 0, "link rate must be positive");
        assert!(
            cfg.phy_rate_bps >= cfg.rate_bps,
            "physical rate must be >= shaped rate"
        );
        let capacity = cfg.buffer.resolve(cfg.rate_bps);
        Link {
            id,
            from,
            to,
            bucket: TokenBucket::new(cfg.rate_bps, cfg.burst_bytes),
            queue: LinkQueue::new(cfg.queue, capacity),
            wire_free_at: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            service_pending: false,
            fault: None,
            down: false,
            stats: LinkStats::default(),
            cfg,
        }
    }

    /// Attach a fault plan's runtime state. The plan's loss model (if
    /// any) replaces the link's configured i.i.d. loss; scheduled
    /// [`FaultAction`]s are delivered by the simulator's event queue.
    pub fn attach_fault(&mut self, state: FaultState) {
        self.fault = Some(state);
    }

    /// The attached fault state, if any.
    pub fn fault(&self) -> Option<&FaultState> {
        self.fault.as_ref()
    }

    /// The impairment decisions made so far (empty without a plan).
    pub fn fault_log(&self) -> &[ImpairmentRecord] {
        self.fault.as_ref().map(FaultState::log).unwrap_or(&[])
    }

    /// Whether the link is currently down due to a scheduled fault.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Apply a scheduled fault at time `now`. Down drops all offered
    /// traffic and parks the backlog; Up re-enables the link (the
    /// simulator re-arms service for any backlog); rate and delay steps
    /// adjust the configuration in place — a rate step re-seeds the
    /// token bucket (like [`Link::reconfigure`]) so the new rate takes
    /// effect immediately, a delay step only affects packets departing
    /// after `now`.
    pub fn apply_fault_action(&mut self, now: SimTime, action: FaultAction) {
        match action {
            FaultAction::Down => self.down = true,
            FaultAction::Up => self.down = false,
            FaultAction::Rate(bps) => {
                let mut cfg = self.cfg.clone();
                cfg.rate_bps = bps.max(1);
                cfg.phy_rate_bps = cfg.phy_rate_bps.max(cfg.rate_bps);
                self.reconfigure(now, cfg);
            }
            FaultAction::Delay(d) => {
                self.cfg.prop_delay = d;
            }
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Resolved buffer capacity in bytes.
    pub fn buffer_capacity(&self) -> u64 {
        self.queue.capacity_bytes()
    }

    /// Bytes currently buffered.
    pub fn queued_bytes(&self) -> u64 {
        self.queue.queued_bytes()
    }

    /// High-water mark of buffered bytes.
    pub fn max_occupancy(&self) -> u64 {
        self.queue.max_occupancy()
    }

    /// Whether a service event is currently pending.
    pub fn service_pending(&self) -> bool {
        self.service_pending
    }

    /// Mark that the pending service event fired (simulator bookkeeping).
    pub(crate) fn clear_service_pending(&mut self) {
        self.service_pending = false;
    }

    /// Mark a service event as scheduled (simulator bookkeeping after a
    /// reconfiguration wake-up).
    pub(crate) fn force_service_pending(&mut self) {
        self.service_pending = true;
    }

    /// Replace the link's traffic parameters in place (rate, delay,
    /// loss, buffer depth, queue kind). Queued packets stay queued; the
    /// token bucket is re-seeded at the new rate with an empty burst so
    /// the new rate takes effect immediately. Used to model time-varying
    /// congestion state cheaply (standing queues, reduced available
    /// capacity) without simulating the traffic that causes it.
    pub fn reconfigure(&mut self, now: SimTime, cfg: LinkConfig) {
        assert!(cfg.rate_bps > 0, "link rate must be positive");
        assert!(
            cfg.phy_rate_bps >= cfg.rate_bps,
            "physical rate must be >= shaped rate"
        );
        let capacity = cfg.buffer.resolve(cfg.rate_bps);
        self.bucket = TokenBucket::new(cfg.rate_bps, cfg.burst_bytes);
        self.bucket.tokens = 0.0;
        self.bucket.last_refill = now;
        self.queue.set_capacity(capacity);
        if self.queue.kind() != cfg.queue {
            // Queue-kind swaps keep the FIFO but adopt the new policy.
            self.queue.set_kind(cfg.queue);
        }
        self.cfg = cfg;
    }

    /// Offer a packet to the link at time `now`. Admitted packets are
    /// stored in `pool`; drops never touch it.
    pub fn enqueue<R: Rng>(
        &mut self,
        pkt: Packet,
        now: SimTime,
        pool: &mut PacketPool,
        rng: &mut R,
    ) -> EnqueueOutcome {
        self.stats.offered_pkts += 1;
        self.stats.offered_bytes += pkt.size as u64;
        if self.down {
            self.stats.dropped_down += 1;
            if let Some(f) = &mut self.fault {
                f.record(now, pkt.id, Impairment::LostDown);
            }
            return EnqueueOutcome::DroppedDown;
        }
        // A fault plan's loss model replaces the configured i.i.d. loss.
        let lost = match &mut self.fault {
            Some(f) if f.overrides_loss() => f.roll_loss(),
            _ => self.cfg.loss > 0.0 && rng.gen::<f64>() < self.cfg.loss,
        };
        if lost {
            self.stats.dropped_loss += 1;
            if let Some(f) = &mut self.fault {
                f.record(now, pkt.id, Impairment::Lost);
            }
            return EnqueueOutcome::DroppedLoss;
        }
        // Duplication decision is rolled per admitted packet so the
        // fault stream's draw sequence is a pure function of the offered
        // traffic; the copy is discarded if the original is dropped.
        let dup = match &mut self.fault {
            Some(f) => f.roll_duplicate(),
            None => false,
        };
        match self.queue.try_admit(pkt.size, rng) {
            EnqueueResult::Queued => {
                self.queue.push(QueuedPacket {
                    handle: pool.insert(pkt),
                    id: pkt.id,
                    size: pkt.size,
                    enqueued_at: now,
                });
                if dup {
                    // The duplicate shares the original's id, like a
                    // wire-level duplication would.
                    self.stats.offered_pkts += 1;
                    self.stats.offered_bytes += pkt.size as u64;
                    match self.queue.try_admit(pkt.size, rng) {
                        EnqueueResult::Queued => {
                            self.queue.push(QueuedPacket {
                                handle: pool.insert(pkt),
                                id: pkt.id,
                                size: pkt.size,
                                enqueued_at: now,
                            });
                            self.stats.duplicated += 1;
                            if let Some(f) = &mut self.fault {
                                f.record(now, pkt.id, Impairment::Duplicated);
                            }
                        }
                        EnqueueResult::DroppedFull => self.stats.dropped_full += 1,
                        EnqueueResult::DroppedEarly => self.stats.dropped_early += 1,
                    }
                }
                if self.service_pending {
                    EnqueueOutcome::Queued {
                        schedule_service: false,
                        service_at: now,
                    }
                } else {
                    self.service_pending = true;
                    EnqueueOutcome::Queued {
                        schedule_service: true,
                        service_at: now.max(self.wire_free_at),
                    }
                }
            }
            EnqueueResult::DroppedFull => {
                self.stats.dropped_full += 1;
                EnqueueOutcome::DroppedFull
            }
            EnqueueResult::DroppedEarly => {
                self.stats.dropped_early += 1;
                EnqueueOutcome::DroppedEarly
            }
        }
    }

    /// Handle a `LinkService` event at time `now`. The caller must have
    /// already cleared the pending flag via [`Link::clear_service_pending`];
    /// this method sets it again when it asks for another event.
    pub fn service<R: Rng>(&mut self, now: SimTime, rng: &mut R) -> ServiceOutcome {
        debug_assert!(!self.service_pending, "service fired while another pending");
        if self.down {
            // Backlog parks until a scheduled Up; the simulator re-arms
            // service when the link comes back.
            return ServiceOutcome::Idle;
        }
        self.bucket.refill(now);
        let head = match self.queue.head_size() {
            Some(s) => s,
            None => return ServiceOutcome::Idle,
        };
        if !self.bucket.has(head) {
            let at = now + self.bucket.time_until(head);
            self.service_pending = true;
            return ServiceOutcome::Retry(at);
        }
        self.bucket.consume(head);
        let Some(pkt) = self.queue.dequeue() else {
            unreachable!("head_size() returned Some, so the queue is non-empty")
        };
        let queue_delay = now.saturating_since(pkt.enqueued_at);
        self.stats.record_delivery(pkt.size as u64, queue_delay);

        let tx = transmission_time(pkt.size as u64, self.cfg.phy_rate_bps);
        let depart_done = now + tx;
        self.wire_free_at = depart_done;

        // Propagation with optional uniform jitter around prop_delay.
        let prop = if self.cfg.jitter.is_zero() {
            self.cfg.prop_delay
        } else {
            let j = self.cfg.jitter.as_nanos();
            let off = rng.gen_range(0..=(2 * j));
            (self.cfg.prop_delay + SimDuration::from_nanos(off))
                .saturating_sub(SimDuration::from_nanos(j))
        };
        let reorder_extra = match &mut self.fault {
            Some(f) => f.roll_reorder(),
            None => None,
        };
        let mut arrival = depart_done + prop;
        if let Some(extra) = reorder_extra {
            // Fault-injected reordering: hold the packet back past its
            // nominal arrival and exempt it from the FIFO clamp (and
            // from advancing it), so later departures overtake it.
            arrival += extra;
            self.stats.reordered += 1;
            if let Some(f) = &mut self.fault {
                f.record(now, pkt.id, Impairment::Reordered);
            }
        } else {
            if !self.cfg.allow_reorder && arrival <= self.last_arrival {
                arrival = self.last_arrival + SimDuration::from_nanos(1);
            }
            self.last_arrival = arrival;
        }

        let next_service = if self.queue.is_empty() {
            None
        } else {
            self.service_pending = true;
            Some(depart_done)
        };
        ServiceOutcome::Deliver {
            pkt: pkt.handle,
            arrival,
            next_service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, PacketId};
    use crate::packet::PacketKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pkt(id: u64, size: u32) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            sent_at: SimTime::ZERO,
            kind: PacketKind::Background,
        }
    }

    fn link(cfg: LinkConfig) -> Link {
        Link::new(LinkId(0), NodeId(0), NodeId(1), cfg)
    }

    /// Test fixture: a link plus the packet pool its buffers use.
    struct Rig {
        l: Link,
        pool: PacketPool,
    }

    impl Rig {
        fn new(cfg: LinkConfig) -> Self {
            Rig {
                l: link(cfg),
                pool: PacketPool::new(),
            }
        }

        fn enqueue(&mut self, p: Packet, now: SimTime, rng: &mut StdRng) -> EnqueueOutcome {
            self.l.enqueue(p, now, &mut self.pool, rng)
        }

        /// Run services to completion, returning `(packet id, arrival)`
        /// per delivery (taking each packet back out of the pool).
        fn drain(&mut self, rng: &mut StdRng, start: SimTime) -> Vec<(u64, SimTime)> {
            self.l.clear_service_pending();
            let mut now = start;
            let mut out = vec![];
            loop {
                match self.l.service(now, rng) {
                    ServiceOutcome::Deliver {
                        pkt,
                        arrival,
                        next_service,
                    } => {
                        out.push((self.pool.take(pkt).id.0, arrival));
                        match next_service {
                            Some(t) => {
                                self.l.clear_service_pending();
                                now = t;
                            }
                            None => break,
                        }
                    }
                    ServiceOutcome::Retry(at) => {
                        self.l.clear_service_pending();
                        now = at;
                    }
                    ServiceOutcome::Idle => break,
                }
            }
            out
        }
    }

    #[test]
    fn buffer_size_resolution() {
        // 20 Mbps × 100 ms = 250_000 bytes.
        assert_eq!(
            BufferSize::Time(SimDuration::from_millis(100)).resolve(20_000_000),
            250_000
        );
        assert_eq!(BufferSize::Bytes(50_000).resolve(1), 50_000);
        // Floor of two MTUs.
        assert_eq!(BufferSize::Bytes(10).resolve(1), 3000);
        assert_eq!(
            BufferSize::Time(SimDuration::from_micros(1)).resolve(1_000_000),
            3000
        );
    }

    #[test]
    fn single_packet_arrives_after_tx_plus_prop() {
        // 12 Mbps, 1500 B => 1 ms serialization; 20 ms propagation.
        let cfg = LinkConfig::new(12_000_000, SimDuration::from_millis(20));
        let mut r = Rig::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let out = r.enqueue(pkt(1, 1500), SimTime::ZERO, &mut rng);
        let service_at = match out {
            EnqueueOutcome::Queued {
                schedule_service: true,
                service_at,
            } => service_at,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(service_at, SimTime::ZERO);
        r.l.clear_service_pending();
        match r.l.service(service_at, &mut rng) {
            ServiceOutcome::Deliver {
                arrival,
                next_service,
                ..
            } => {
                assert_eq!(arrival, SimTime::from_millis(21));
                assert!(next_service.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_spaced_by_serialization() {
        // Burst only one MTU so the second packet must wait for tokens.
        let cfg = LinkConfig::new(12_000_000, SimDuration::ZERO).burst(1500);
        let mut r = Rig::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        r.enqueue(pkt(1, 1500), SimTime::ZERO, &mut rng);
        r.enqueue(pkt(2, 1500), SimTime::ZERO, &mut rng);
        r.l.clear_service_pending();
        let first = match r.l.service(SimTime::ZERO, &mut rng) {
            ServiceOutcome::Deliver {
                arrival,
                next_service,
                ..
            } => {
                assert_eq!(next_service, Some(SimTime::from_millis(1)));
                arrival
            }
            other => panic!("unexpected {other:?}"),
        };
        r.l.clear_service_pending();
        // At 1 ms the bucket has regenerated exactly 1500 bytes.
        match r.l.service(SimTime::from_millis(1), &mut rng) {
            ServiceOutcome::Deliver { arrival, .. } => {
                assert!(arrival >= first + SimDuration::from_millis(1));
            }
            ServiceOutcome::Retry(at) => {
                // Floating point token accounting may be a hair short;
                // the retry must be almost immediate.
                assert!(at <= SimTime::from_millis(1) + SimDuration::from_micros(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn token_burst_allows_fast_start() {
        // 10 Mbps shaped but 100 Mbps physical with 5 KB burst: the
        // first ~3 packets serialize at the physical rate.
        let cfg = LinkConfig::new(10_000_000, SimDuration::ZERO)
            .phy_rate(100_000_000)
            .burst(5 * 1024);
        let mut r = Rig::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..3 {
            r.enqueue(pkt(i, 1500), SimTime::ZERO, &mut rng);
        }
        let arrivals: Vec<SimTime> = r
            .drain(&mut rng, SimTime::ZERO)
            .into_iter()
            .map(|(_, at)| at)
            .collect();
        assert_eq!(arrivals.len(), 3);
        // 3 × 1500 = 4500 B fits the 5120 B burst: all three go out at
        // the 100 Mbps physical spacing (120 us apart), far faster than
        // the shaped 1.2 ms spacing.
        let spacing = arrivals[2].saturating_since(arrivals[0]);
        assert!(
            spacing < SimDuration::from_micros(400),
            "burst not honored: {spacing}"
        );
    }

    #[test]
    fn loss_drops_expected_fraction() {
        let cfg = LinkConfig::new(1_000_000_000, SimDuration::ZERO).loss(0.3);
        let mut r = Rig::new(cfg);
        let mut rng = StdRng::seed_from_u64(42);
        let mut dropped = 0;
        for i in 0..10_000 {
            match r.enqueue(pkt(i, 100), SimTime::ZERO, &mut rng) {
                EnqueueOutcome::DroppedLoss => dropped += 1,
                EnqueueOutcome::Queued { .. } => {
                    // drain so the buffer never fills
                    r.drain(&mut rng, SimTime::from_secs(i + 1));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let frac = dropped as f64 / 10_000.0;
        assert!((0.27..0.33).contains(&frac), "loss fraction {frac}");
        assert_eq!(r.l.stats.dropped_loss, dropped);
    }

    #[test]
    fn overflow_drops_counted() {
        let cfg = LinkConfig::new(1_000_000, SimDuration::ZERO).buffer_bytes(3000);
        let mut r = Rig::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..5 {
            r.enqueue(pkt(i, 1500), SimTime::ZERO, &mut rng);
        }
        assert_eq!(r.l.stats.dropped_full, 3);
        assert_eq!(r.l.queued_bytes(), 3000);
        // Only admitted packets occupy the pool.
        assert_eq!(r.pool.live(), 2);
    }

    #[test]
    fn jitter_never_reorders_by_default() {
        let cfg = LinkConfig::new(100_000_000, SimDuration::from_millis(10))
            .jitter(SimDuration::from_millis(5));
        let mut r = Rig::new(cfg);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..50 {
            r.enqueue(pkt(i, 1500), SimTime::ZERO, &mut rng);
        }
        let arrivals = r.drain(&mut rng, SimTime::ZERO);
        assert_eq!(arrivals.len(), 50);
        let mut last = SimTime::ZERO;
        for &(_, arrival) in &arrivals {
            assert!(arrival > last, "reordered");
            last = arrival;
        }
        assert!(last > SimTime::ZERO);
    }

    use crate::fault::{FaultPlan, FaultState, GilbertElliott};
    use crate::rng::stream_rng;

    #[test]
    fn fault_reorder_delivers_out_of_order() {
        let cfg = LinkConfig::new(100_000_000, SimDuration::from_millis(1));
        let mut r = Rig::new(cfg);
        let plan = FaultPlan::new().reorder(0.2, SimDuration::from_millis(10));
        r.l.attach_fault(FaultState::new(plan, stream_rng(3, 0)));
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100 {
            r.enqueue(pkt(i, 1500), SimTime::ZERO, &mut rng);
        }
        let arrivals = r.drain(&mut rng, SimTime::ZERO);
        assert_eq!(arrivals.len(), 100);
        assert!(r.l.stats.reordered > 0);
        // At least one packet arrives after a higher-id packet.
        let out_of_order = arrivals
            .windows(2)
            .any(|w| w[0].0 < w[1].0 && w[0].1 > w[1].1);
        assert!(out_of_order, "no reordering observed");
        assert_eq!(r.l.stats.reordered as usize, r.l.fault_log().len());
    }

    #[test]
    fn fault_down_drops_and_up_recovers() {
        let cfg = LinkConfig::new(100_000_000, SimDuration::ZERO);
        let mut r = Rig::new(cfg);
        r.l.attach_fault(FaultState::new(FaultPlan::new(), stream_rng(3, 0)));
        let mut rng = StdRng::seed_from_u64(1);
        r.l.apply_fault_action(SimTime::ZERO, FaultAction::Down);
        assert!(r.l.is_down());
        assert_eq!(
            r.enqueue(pkt(1, 1500), SimTime::ZERO, &mut rng),
            EnqueueOutcome::DroppedDown
        );
        assert_eq!(r.l.stats.dropped_down, 1);
        assert!(matches!(
            r.l.service(SimTime::ZERO, &mut rng),
            ServiceOutcome::Idle
        ));
        r.l.apply_fault_action(SimTime::from_millis(1), FaultAction::Up);
        assert!(!r.l.is_down());
        assert!(matches!(
            r.enqueue(pkt(2, 1500), SimTime::from_millis(1), &mut rng),
            EnqueueOutcome::Queued { .. }
        ));
        let arrivals = r.drain(&mut rng, SimTime::from_millis(1));
        assert_eq!(arrivals.len(), 1);
    }

    #[test]
    fn fault_duplication_admits_extra_copies() {
        let cfg = LinkConfig::new(1_000_000_000, SimDuration::ZERO).buffer_bytes(10_000_000);
        let mut r = Rig::new(cfg);
        let plan = FaultPlan::new().duplicate(0.25);
        r.l.attach_fault(FaultState::new(plan, stream_rng(3, 0)));
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..1000 {
            r.enqueue(pkt(i, 100), SimTime::ZERO, &mut rng);
        }
        let frac = r.l.stats.duplicated as f64 / 1000.0;
        assert!((0.2..0.3).contains(&frac), "duplication fraction {frac}");
        assert_eq!(
            r.l.queued_bytes(),
            (1000 + r.l.stats.duplicated) * 100,
            "copies occupy the buffer"
        );
        assert_eq!(r.pool.live() as u64, 1000 + r.l.stats.duplicated);
    }

    #[test]
    fn fault_ge_loss_replaces_configured_loss() {
        // Configured loss 0 but GE plan drops ~10%.
        let cfg = LinkConfig::new(1_000_000_000, SimDuration::ZERO).buffer_bytes(10_000_000);
        let mut r = Rig::new(cfg);
        let plan = FaultPlan::new().gilbert_elliott(GilbertElliott::bursty(5.0, 0.1));
        r.l.attach_fault(FaultState::new(plan, stream_rng(3, 0)));
        let mut rng = StdRng::seed_from_u64(1);
        let mut dropped = 0u64;
        for i in 0..20_000 {
            if r.enqueue(pkt(i, 100), SimTime::ZERO, &mut rng) == EnqueueOutcome::DroppedLoss {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / 20_000.0;
        assert!((0.08..0.12).contains(&frac), "GE loss fraction {frac}");
        assert_eq!(r.l.stats.dropped_loss, dropped);
    }

    #[test]
    fn fault_rate_step_changes_drain_speed() {
        let cfg = LinkConfig::new(100_000_000, SimDuration::ZERO).burst(1500);
        let mut r = Rig::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        r.l.apply_fault_action(SimTime::ZERO, FaultAction::Rate(1_000_000));
        assert_eq!(r.l.config().rate_bps, 1_000_000);
        r.enqueue(pkt(1, 1500), SimTime::ZERO, &mut rng);
        let arrivals = r.drain(&mut rng, SimTime::ZERO);
        // Bucket re-seeded empty at 1 Mbps: 1500 B needs ~12 ms of credit.
        assert!(arrivals[0].1 >= SimTime::from_millis(11), "{:?}", arrivals);
    }

    #[test]
    #[should_panic]
    fn phy_below_shaped_rejected() {
        let cfg = LinkConfig::new(1_000_000, SimDuration::ZERO).phy_rate(1);
        let _ = link(cfg);
    }

    #[test]
    fn queue_delay_statistics_accumulate() {
        let cfg = LinkConfig::new(12_000_000, SimDuration::ZERO).burst(1500);
        let mut r = Rig::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        r.enqueue(pkt(1, 1500), SimTime::ZERO, &mut rng);
        r.enqueue(pkt(2, 1500), SimTime::ZERO, &mut rng);
        r.drain(&mut rng, SimTime::ZERO);
        assert_eq!(r.l.stats.delivered_pkts, 2);
        // Second packet waited ~1 ms for tokens.
        assert!(r.l.stats.total_queue_delay >= SimDuration::from_micros(900));
        assert!(r.l.stats.mean_queue_delay() > SimDuration::ZERO);
    }
}
