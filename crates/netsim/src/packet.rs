//! Wire formats.
//!
//! The simulator is packet-level but not byte-level: a [`Packet`] carries
//! structured header fields and a payload *length* rather than payload
//! bytes. This is sufficient for congestion dynamics (which depend only
//! on sizes and sequence numbers) and keeps memory use low.

use crate::ids::{FlowId, NodeId, PacketId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes of IP + TCP header (with timestamp option), mirroring a typical
/// Linux segment: 20 (IP) + 20 (TCP) + 12 (options).
pub const TCP_HEADER_BYTES: u32 = 52;

/// Default maximum segment size used by endpoints. 1500-byte MTU minus
/// [`TCP_HEADER_BYTES`].
pub const DEFAULT_MSS: u32 = 1448;

/// TCP control-bit flags. Only the bits the model uses are defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// Synchronize sequence numbers (connection open).
    pub const SYN: TcpFlags = TcpFlags(0b0000_0001);
    /// Acknowledgment field is valid.
    pub const ACK: TcpFlags = TcpFlags(0b0000_0010);
    /// Sender has finished sending (connection close).
    pub const FIN: TcpFlags = TcpFlags(0b0000_0100);
    /// Abort the connection.
    pub const RST: TcpFlags = TcpFlags(0b0000_1000);

    /// Union of two flag sets.
    #[inline]
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// Does this set contain every bit of `other`?
    #[inline]
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Convenience predicates.
    #[inline]
    pub const fn syn(self) -> bool {
        self.contains(TcpFlags::SYN)
    }
    /// Is the ACK bit set?
    #[inline]
    pub const fn ack(self) -> bool {
        self.contains(TcpFlags::ACK)
    }
    /// Is the FIN bit set?
    #[inline]
    pub const fn fin(self) -> bool {
        self.contains(TcpFlags::FIN)
    }
    /// Is the RST bit set?
    #[inline]
    pub const fn rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (bit, name) in [
            (TcpFlags::SYN, "S"),
            (TcpFlags::ACK, "A"),
            (TcpFlags::FIN, "F"),
            (TcpFlags::RST, "R"),
        ] {
            if self.contains(bit) {
                f.write_str(name)?;
                any = true;
            }
        }
        if !any {
            f.write_str(".")?;
        }
        Ok(())
    }
}

/// SACK option: up to three `[start, end)` blocks in wire sequence
/// space, like the on-the-wire TCP SACK option (RFC 2018).
pub type SackBlocks = [Option<(u32, u32)>; 3];

/// An empty SACK option.
pub const NO_SACK: SackBlocks = [None, None, None];

/// The TCP header fields the model carries on the wire.
///
/// Sequence and acknowledgment numbers are 32-bit and wrap, exactly like
/// real TCP; use `csig_tcp::seq` helpers for comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// First sequence number of the segment payload (or of SYN/FIN).
    pub seq: u32,
    /// Cumulative acknowledgment number (valid when `flags.ack()`).
    pub ack: u32,
    /// Control bits.
    pub flags: TcpFlags,
    /// Payload bytes carried by this segment (0 for pure ACKs).
    pub payload_len: u32,
    /// Advertised receive window in bytes (already scaled).
    pub window: u32,
    /// Selective-acknowledgment blocks (RFC 2018), empty when unused.
    pub sack: SackBlocks,
}

impl TcpHeader {
    /// Sequence number consumed by this segment: payload plus one each
    /// for SYN and FIN.
    pub fn seq_len(&self) -> u32 {
        let mut len = self.payload_len;
        if self.flags.syn() {
            len += 1;
        }
        if self.flags.fin() {
            len += 1;
        }
        len
    }

    /// Sequence number immediately after this segment.
    pub fn seq_end(&self) -> u32 {
        self.seq.wrapping_add(self.seq_len())
    }
}

/// Direction/role of a latency probe packet ([`PacketKind::Probe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Echo request travelling towards the target.
    Request,
    /// Echo reply carrying the request's send timestamp back.
    Reply {
        /// When the corresponding request was sent.
        sent_at: SimTime,
    },
}

/// What a packet *is*, above the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// A TCP segment.
    Tcp(TcpHeader),
    /// An ICMP-like latency probe (used by the TSLP substrate). The
    /// `ident` lets the prober match replies to requests.
    Probe {
        /// Request or reply, with echo timestamp on replies.
        kind: ProbeKind,
        /// Prober-chosen identifier echoed in the reply.
        ident: u64,
    },
    /// Opaque background traffic (constant-bit-rate filler). Consumes
    /// link capacity and buffer space but is simply absorbed at the
    /// destination.
    Background,
}

/// A packet in flight. All fields are plain values, so packets are
/// `Copy` — the hot path moves them by bitwise copy, never by heap
/// allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique per-transmission id (assigned by the simulator).
    pub id: PacketId,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Total size on the wire in bytes (headers + payload).
    pub size: u32,
    /// When the source handed the packet to its first link.
    pub sent_at: SimTime,
    /// Protocol content.
    pub kind: PacketKind,
}

impl Packet {
    /// The TCP header if this is a TCP packet.
    pub fn tcp(&self) -> Option<&TcpHeader> {
        match &self.kind {
            PacketKind::Tcp(h) => Some(h),
            _ => None,
        }
    }
}

/// A packet as constructed by an agent, before the simulator assigns an
/// id and timestamp and routes it. See `Ctx::send`.
#[derive(Debug, Clone)]
pub struct PacketSpec {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Destination host.
    pub dst: NodeId,
    /// Total size on the wire in bytes.
    pub size: u32,
    /// Protocol content.
    pub kind: PacketKind,
}

impl PacketSpec {
    /// A TCP segment spec; wire size is payload + [`TCP_HEADER_BYTES`].
    pub fn tcp(flow: FlowId, dst: NodeId, header: TcpHeader) -> Self {
        PacketSpec {
            flow,
            dst,
            size: header.payload_len + TCP_HEADER_BYTES,
            kind: PacketKind::Tcp(header),
        }
    }

    /// A fixed-size probe packet (64 bytes, like a small ICMP echo).
    pub fn probe(flow: FlowId, dst: NodeId, kind: ProbeKind, ident: u64) -> Self {
        PacketSpec {
            flow,
            dst,
            size: 64,
            kind: PacketKind::Probe { kind, ident },
        }
    }

    /// An opaque background packet of the given wire size.
    pub fn background(flow: FlowId, dst: NodeId, size: u32) -> Self {
        PacketSpec {
            flow,
            dst,
            size,
            kind: PacketKind::Background,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_union_and_contains() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.syn() && f.ack());
        assert!(!f.fin() && !f.rst());
        assert!(f.contains(TcpFlags::SYN));
        assert!(!TcpFlags::SYN.contains(f));
        assert_eq!(f.to_string(), "SA");
        assert_eq!(TcpFlags::default().to_string(), ".");
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut h = TcpHeader {
            seq: 100,
            ack: 0,
            flags: TcpFlags::default(),
            payload_len: 10,
            window: 65535,
            sack: NO_SACK,
        };
        assert_eq!(h.seq_len(), 10);
        assert_eq!(h.seq_end(), 110);
        h.flags = TcpFlags::SYN;
        assert_eq!(h.seq_len(), 11);
        h.flags = TcpFlags::SYN | TcpFlags::FIN;
        assert_eq!(h.seq_len(), 12);
    }

    #[test]
    fn seq_end_wraps() {
        let h = TcpHeader {
            seq: u32::MAX,
            ack: 0,
            flags: TcpFlags::default(),
            payload_len: 2,
            window: 0,
            sack: NO_SACK,
        };
        assert_eq!(h.seq_end(), 1);
    }

    #[test]
    fn tcp_spec_adds_header_bytes() {
        let h = TcpHeader {
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            payload_len: 1448,
            window: 65535,
            sack: NO_SACK,
        };
        let spec = PacketSpec::tcp(FlowId(0), NodeId(1), h);
        assert_eq!(spec.size, 1500);
    }

    #[test]
    fn probe_spec_is_small() {
        let spec = PacketSpec::probe(FlowId(0), NodeId(1), ProbeKind::Request, 42);
        assert_eq!(spec.size, 64);
    }
}
