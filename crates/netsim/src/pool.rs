//! Packet arena: slab storage with generational handles.
//!
//! The hot path used to move full [`Packet`] structs (~80 bytes) through
//! the event queue and link buffers. Instead, packets in flight live in
//! a [`PacketPool`] and everything else carries a small, `Copy`
//! [`PacketHandle`]. Slots are recycled through a free list, so a steady
//! simulation allocates nothing per packet; a generation counter per
//! slot turns use-after-free of a recycled handle into a deterministic
//! panic instead of silent corruption.
//!
//! # Lifetime rules
//!
//! * A handle is created by [`PacketPool::insert`] when a link buffer
//!   admits a packet.
//! * Exactly one owner holds the handle at a time: the link FIFO while
//!   queued, then the in-flight `Deliver` event.
//! * The simulator redeems the handle with [`PacketPool::take`] when the
//!   `Deliver` event fires, freeing the slot. Forwarding through a
//!   router re-inserts (the slot is reused immediately via the free
//!   list).
//! * Dropped packets (loss, RED, buffer overflow, link down) are
//!   rejected *before* insertion and never touch the pool.

use crate::packet::Packet;

/// A small, copyable reference to a packet stored in a [`PacketPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle {
    idx: u32,
    gen: u32,
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    pkt: Option<Packet>,
}

/// Slab arena holding every packet currently queued or in flight.
#[derive(Debug, Default)]
pub struct PacketPool {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        PacketPool::default()
    }

    /// Number of packets currently stored.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Highest number of simultaneously stored packets ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Store `pkt`, returning its handle.
    pub fn insert(&mut self, pkt: Packet) -> PacketHandle {
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.pkt.is_none(), "free-list slot still occupied");
                slot.pkt = Some(pkt);
                PacketHandle { idx, gen: slot.gen }
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    pkt: Some(pkt),
                });
                PacketHandle { idx, gen: 0 }
            }
        }
    }

    /// Read a stored packet.
    ///
    /// # Panics
    /// Panics if the handle is stale (its packet was already taken).
    pub fn get(&self, h: PacketHandle) -> &Packet {
        match self.slots.get(h.idx as usize) {
            Some(slot) if slot.gen == h.gen => match &slot.pkt {
                Some(pkt) => pkt,
                None => panic!("stale packet handle (slot empty)"),
            },
            _ => panic!("stale packet handle (generation mismatch)"),
        }
    }

    /// Remove and return a stored packet, freeing its slot.
    ///
    /// # Panics
    /// Panics if the handle is stale (double free).
    pub fn take(&mut self, h: PacketHandle) -> Packet {
        let slot = match self.slots.get_mut(h.idx as usize) {
            Some(slot) if slot.gen == h.gen => slot,
            _ => panic!("stale packet handle (generation mismatch)"),
        };
        let Some(pkt) = slot.pkt.take() else {
            panic!("stale packet handle (double free)")
        };
        slot.gen = slot.gen.wrapping_add(1);
        self.live -= 1;
        self.free.push(h.idx);
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, NodeId, PacketId};
    use crate::packet::PacketKind;
    use crate::time::SimTime;

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 100,
            sent_at: SimTime::ZERO,
            kind: PacketKind::Background,
        }
    }

    #[test]
    fn insert_get_take_roundtrip() {
        let mut pool = PacketPool::new();
        let h = pool.insert(pkt(7));
        assert_eq!(pool.get(h).id, PacketId(7));
        assert_eq!(pool.live(), 1);
        let p = pool.take(h);
        assert_eq!(p.id, PacketId(7));
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut pool = PacketPool::new();
        for i in 0..100 {
            let h = pool.insert(pkt(i));
            pool.take(h);
        }
        assert_eq!(pool.high_water(), 1);
        assert_eq!(pool.slots.len(), 1);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn stale_handle_panics() {
        let mut pool = PacketPool::new();
        let h = pool.insert(pkt(1));
        pool.take(h);
        // The slot was recycled with a bumped generation.
        let h2 = pool.insert(pkt(2));
        assert_ne!(h, h2);
        let _ = pool.get(h);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn double_take_panics() {
        let mut pool = PacketPool::new();
        let h = pool.insert(pkt(1));
        pool.take(h);
        let _ = pool.take(h);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut pool = PacketPool::new();
        let hs: Vec<_> = (0..10).map(|i| pool.insert(pkt(i))).collect();
        for h in hs {
            pool.take(h);
        }
        assert_eq!(pool.high_water(), 10);
        assert_eq!(pool.live(), 0);
    }
}
