//! Buffer management (queue disciplines) at the head of a link.
//!
//! The classifier studied by the paper depends on how the bottleneck
//! buffer absorbs a ramping flow, so the queue model is explicit: a FIFO
//! with a byte-denominated capacity, fronted by an admission policy —
//! classic drop-tail, or RED (Random Early Detection) for the §6
//! robustness experiments ("it will still work on other queuing
//! mechanisms such as RED as long as there is an increase in RTT").
//!
//! The FIFO stores [`QueuedPacket`] descriptors — a [`PacketHandle`]
//! into the simulator's [`crate::pool::PacketPool`] plus the few fields
//! service decisions need — rather than full packets. Admission is
//! split from insertion ([`LinkQueue::try_admit`] then
//! [`LinkQueue::push`]) so a dropped packet is rejected before a pool
//! slot is ever allocated.

use crate::ids::PacketId;
use crate::pool::PacketHandle;
use crate::time::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Admission policy selector for a link buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum QueueKind {
    /// Plain drop-tail: admit while total queued bytes stay within
    /// capacity, else drop.
    #[default]
    DropTail,
    /// Random Early Detection with the given parameters.
    Red(RedParams),
}

/// RED parameters (Floyd & Jacobson 1993), with thresholds expressed as
/// fractions of the queue's byte capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedParams {
    /// Average-occupancy fraction below which no packet is dropped.
    pub min_th: f64,
    /// Average-occupancy fraction above which every packet is dropped.
    pub max_th: f64,
    /// Drop probability as the average reaches `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub weight: f64,
}

impl Default for RedParams {
    fn default() -> Self {
        RedParams {
            min_th: 0.25,
            max_th: 0.75,
            max_p: 0.1,
            weight: 0.002,
        }
    }
}

/// Outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// The packet was admitted; the caller must [`LinkQueue::push`] it.
    Queued,
    /// The packet was dropped because the buffer was full.
    DroppedFull,
    /// The packet was dropped by early detection (RED).
    DroppedEarly,
}

/// A buffered packet: its pool handle plus the fields link service
/// needs without a pool lookup.
#[derive(Debug, Clone, Copy)]
pub struct QueuedPacket {
    /// Where the full packet lives.
    pub handle: PacketHandle,
    /// The packet's id (for impairment logging).
    pub id: PacketId,
    /// Wire size in bytes.
    pub size: u32,
    /// When the packet entered the buffer (for delay statistics).
    pub enqueued_at: SimTime,
}

/// A byte-capacitated FIFO buffer with a pluggable admission policy.
#[derive(Debug)]
pub struct LinkQueue {
    kind: QueueKind,
    capacity_bytes: u64,
    queued_bytes: u64,
    fifo: VecDeque<QueuedPacket>,
    /// RED state: EWMA of occupancy (bytes) and count of packets since
    /// the last early drop.
    red_avg: f64,
    red_count: i64,
    /// High-water mark of queued bytes, for diagnostics.
    max_occupancy: u64,
}

impl LinkQueue {
    /// Create a queue holding at most `capacity_bytes` of packets.
    ///
    /// # Panics
    /// Panics if `capacity_bytes` is zero — a zero buffer would drop
    /// every packet on a busy link and is never what an experiment means.
    pub fn new(kind: QueueKind, capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        if let QueueKind::Red(p) = &kind {
            assert!(
                0.0 <= p.min_th && p.min_th < p.max_th && p.max_th <= 1.0,
                "RED thresholds must satisfy 0 <= min_th < max_th <= 1"
            );
            assert!(0.0 < p.max_p && p.max_p <= 1.0, "RED max_p in (0,1]");
        }
        LinkQueue {
            kind,
            capacity_bytes,
            queued_bytes: 0,
            fifo: VecDeque::new(),
            red_avg: 0.0,
            red_count: -1,
            max_occupancy: 0,
        }
    }

    /// Byte capacity the queue was built with.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// The admission policy.
    pub fn kind(&self) -> QueueKind {
        self.kind
    }

    /// Change the byte capacity (already-queued packets are kept even
    /// if they exceed the new capacity; the limit applies to future
    /// admissions).
    pub fn set_capacity(&mut self, capacity_bytes: u64) {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        self.capacity_bytes = capacity_bytes;
    }

    /// Change the admission policy in place.
    pub fn set_kind(&mut self, kind: QueueKind) {
        self.kind = kind;
        self.red_avg = 0.0;
        self.red_count = -1;
    }

    /// Bytes currently buffered.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently buffered.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// `true` if no packet is buffered.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Highest byte occupancy ever observed.
    pub fn max_occupancy(&self) -> u64 {
        self.max_occupancy
    }

    /// Admission decision for a packet of `size` bytes. On
    /// [`EnqueueResult::Queued`] the caller must follow up with
    /// [`LinkQueue::push`]; on a drop the packet never enters the
    /// buffer (and need never enter the pool).
    pub fn try_admit<R: Rng>(&mut self, size: u32, rng: &mut R) -> EnqueueResult {
        if let QueueKind::Red(params) = self.kind {
            // Update EWMA of the instantaneous occupancy.
            self.red_avg += params.weight * (self.queued_bytes as f64 - self.red_avg);
            let min_b = params.min_th * self.capacity_bytes as f64;
            let max_b = params.max_th * self.capacity_bytes as f64;
            if self.red_avg >= max_b {
                self.red_count = 0;
                return EnqueueResult::DroppedEarly;
            }
            if self.red_avg > min_b {
                self.red_count += 1;
                let pb = params.max_p * (self.red_avg - min_b) / (max_b - min_b);
                // Spread drops: pa = pb / (1 - count * pb), per the RED paper.
                let denom = 1.0 - self.red_count as f64 * pb;
                let pa = if denom <= 0.0 {
                    1.0
                } else {
                    (pb / denom).min(1.0)
                };
                if rng.gen::<f64>() < pa {
                    self.red_count = 0;
                    return EnqueueResult::DroppedEarly;
                }
            } else {
                self.red_count = -1;
            }
        }
        if self.queued_bytes + size as u64 > self.capacity_bytes {
            return EnqueueResult::DroppedFull;
        }
        EnqueueResult::Queued
    }

    /// Append an admitted packet to the FIFO. Must follow a
    /// [`LinkQueue::try_admit`] that returned [`EnqueueResult::Queued`]
    /// for the same size.
    pub fn push(&mut self, qp: QueuedPacket) {
        debug_assert!(
            self.queued_bytes + qp.size as u64 <= self.capacity_bytes,
            "push without successful try_admit"
        );
        self.queued_bytes += qp.size as u64;
        self.max_occupancy = self.max_occupancy.max(self.queued_bytes);
        self.fifo.push_back(qp);
    }

    /// The head-of-line packet descriptor, if any.
    pub fn head(&self) -> Option<QueuedPacket> {
        self.fifo.front().copied()
    }

    /// Size in bytes of the head-of-line packet, if any.
    pub fn head_size(&self) -> Option<u32> {
        self.fifo.front().map(|p| p.size)
    }

    /// Remove and return the head-of-line packet descriptor.
    pub fn dequeue(&mut self) -> Option<QueuedPacket> {
        let qp = self.fifo.pop_front()?;
        self.queued_bytes -= qp.size as u64;
        Some(qp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, NodeId, PacketId};
    use crate::packet::{Packet, PacketKind};
    use crate::pool::PacketPool;
    use crate::time::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pkt(id: u64, size: u32) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            sent_at: SimTime::ZERO,
            kind: PacketKind::Background,
        }
    }

    /// Admit-then-push, as the link does.
    fn offer<R: Rng>(
        q: &mut LinkQueue,
        pool: &mut PacketPool,
        p: Packet,
        rng: &mut R,
    ) -> EnqueueResult {
        let r = q.try_admit(p.size, rng);
        if r == EnqueueResult::Queued {
            q.push(QueuedPacket {
                handle: pool.insert(p),
                id: p.id,
                size: p.size,
                enqueued_at: SimTime::ZERO,
            });
        }
        r
    }

    #[test]
    fn droptail_admits_to_capacity_then_drops() {
        let mut q = LinkQueue::new(QueueKind::DropTail, 3000);
        let mut pool = PacketPool::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1, 1500), &mut rng),
            EnqueueResult::Queued
        );
        assert_eq!(
            offer(&mut q, &mut pool, pkt(2, 1500), &mut rng),
            EnqueueResult::Queued
        );
        assert_eq!(
            offer(&mut q, &mut pool, pkt(3, 1), &mut rng),
            EnqueueResult::DroppedFull
        );
        assert_eq!(q.queued_bytes(), 3000);
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_occupancy(), 3000);
        // Drops never reached the pool.
        assert_eq!(pool.live(), 2);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = LinkQueue::new(QueueKind::DropTail, 10_000);
        let mut pool = PacketPool::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..4 {
            offer(&mut q, &mut pool, pkt(i, 100), &mut rng);
        }
        for i in 0..4 {
            let Some(qp) = q.dequeue() else {
                panic!("queue ran dry")
            };
            assert_eq!(qp.id, PacketId(i));
            assert_eq!(pool.take(qp.handle).id, PacketId(i));
        }
        assert!(q.dequeue().is_none());
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn head_size_matches_front() {
        let mut q = LinkQueue::new(QueueKind::DropTail, 10_000);
        let mut pool = PacketPool::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(q.head_size(), None);
        offer(&mut q, &mut pool, pkt(1, 777), &mut rng);
        offer(&mut q, &mut pool, pkt(2, 888), &mut rng);
        assert_eq!(q.head_size(), Some(777));
        q.dequeue();
        assert_eq!(q.head_size(), Some(888));
    }

    #[test]
    fn red_drops_early_under_sustained_load() {
        let mut q = LinkQueue::new(
            QueueKind::Red(RedParams {
                min_th: 0.1,
                max_th: 0.5,
                max_p: 0.5,
                weight: 0.5, // aggressive EWMA so the test converges fast
            }),
            15_000,
        );
        let mut pool = PacketPool::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut early = 0;
        let mut full = 0;
        // Never dequeue: occupancy climbs, RED must start dropping before
        // the buffer is physically full.
        for i in 0..200 {
            match offer(&mut q, &mut pool, pkt(i, 1500), &mut rng) {
                EnqueueResult::DroppedEarly => early += 1,
                EnqueueResult::DroppedFull => full += 1,
                EnqueueResult::Queued => {}
            }
        }
        assert!(early > 0, "RED produced no early drops");
        // Early detection should keep average below the hard limit most
        // of the time; some full drops may still occur but queued bytes
        // must never exceed capacity.
        assert!(q.queued_bytes() <= q.capacity_bytes());
        let _ = full;
    }

    #[test]
    fn red_idle_queue_drops_nothing() {
        let mut q = LinkQueue::new(QueueKind::Red(RedParams::default()), 100_000);
        let mut pool = PacketPool::new();
        let mut rng = StdRng::seed_from_u64(3);
        // One packet at a time with immediate dequeue: average stays ~0.
        for i in 0..100 {
            assert_eq!(
                offer(&mut q, &mut pool, pkt(i, 1500), &mut rng),
                EnqueueResult::Queued
            );
            let Some(qp) = q.dequeue() else {
                panic!("just queued")
            };
            pool.take(qp.handle);
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = LinkQueue::new(QueueKind::DropTail, 0);
    }

    #[test]
    #[should_panic]
    fn bad_red_thresholds_rejected() {
        let _ = LinkQueue::new(
            QueueKind::Red(RedParams {
                min_th: 0.9,
                max_th: 0.5,
                ..RedParams::default()
            }),
            1000,
        );
    }
}
