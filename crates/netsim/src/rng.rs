//! Deterministic random-number plumbing.
//!
//! Every simulation is seeded by a single `u64`. Each component (link,
//! host agent, …) receives its own independent PRNG stream derived from
//! the master seed and a stream id, so adding a host or reordering link
//! creation does not perturb unrelated components' randomness.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a strong 64-bit mixing function used to derive
/// independent stream seeds from `(master, stream)` pairs.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derive the seed for stream `stream` of master seed `master`.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// A `StdRng` for the given component stream.
pub fn stream_rng(master: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream_rng(42, 7);
        let mut b = stream_rng(42, 7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = stream_rng(42, 7);
        let mut b = stream_rng(42, 8);
        let same = (0..100)
            .filter(|_| a.gen::<u64>() == b.gen::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_masters_differ() {
        let mut a = stream_rng(1, 0);
        let mut b = stream_rng(2, 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_bits() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
        // Hamming distance between outputs of adjacent inputs should be
        // substantial (avalanche).
        let d = (splitmix64(100) ^ splitmix64(101)).count_ones();
        assert!(d > 16, "weak avalanche: {d}");
    }
}
