//! The simulator: topology construction, routing, and the event loop.
//!
//! # Model
//!
//! A topology is a set of **nodes** (hosts carrying an [`Agent`], or
//! routers that only forward) connected by unidirectional **links**
//! ([`Link`]). Routing is static: each node holds a `destination →
//! outgoing link` table, either set explicitly or computed by
//! [`Simulator::compute_routes`] (BFS, minimum hop count, deterministic
//! tie-break by link id).
//!
//! # Determinism
//!
//! All state evolves through a single time-ordered event queue with
//! FIFO tie-breaking, and all randomness derives from the master seed
//! via per-component streams — running the same configuration twice
//! produces identical captures.

use crate::agent::{Agent, Command, Ctx};
use crate::capture::{
    Capture, CaptureHandle, Direction, NullSink, PacketRecord, PacketSink, SinkHandle,
};
use crate::event::{EventKind, EventQueue, TimerToken};
use crate::fault::{FaultPlan, FaultState, ImpairmentRecord};
use crate::ids::{LinkId, NodeId, PacketId};
use crate::link::{EnqueueOutcome, Link, LinkConfig, ServiceOutcome};
use crate::packet::{Packet, PacketSpec};
use crate::pool::{PacketHandle, PacketPool};
use crate::rng::stream_rng;
use crate::stats::LinkStats;
use crate::time::{SimDuration, SimTime};
use csig_obs::{Counter, Gauge, Histogram, MetricsRegistry, TraceBuffer, TraceEvent};
use rand::rngs::StdRng;
use std::any::Any;
use std::collections::VecDeque;

/// Metric handles the simulator updates while running (see
/// [`Simulator::attach_obs`]). All counters and the gauge are
/// deterministic — they reflect simulation state only; the event-loop
/// timer is wall-clock and registered as non-deterministic.
struct SimObs {
    /// `sim.events` — events processed.
    events: Counter,
    /// `sim.packets_sent` — packets originated by agents.
    packets_sent: Counter,
    /// `sim.packets_delivered` — packets delivered to their final
    /// destination node.
    packets_delivered: Counter,
    /// `sim.packets_dropped` — enqueue-time drops of any kind (loss,
    /// buffer full, early drop, link down).
    packets_dropped: Counter,
    /// `sim.queue_hwm_bytes` — high-water mark of any link queue.
    queue_hwm_bytes: Gauge,
    /// `time.sim_event_loop_us` — wall-clock time spent inside
    /// [`Simulator::run_until`].
    loop_timer: Histogram,
}

impl SimObs {
    fn register(reg: &MetricsRegistry) -> Self {
        SimObs {
            events: reg.counter("sim.events"),
            packets_sent: reg.counter("sim.packets_sent"),
            packets_delivered: reg.counter("sim.packets_delivered"),
            packets_dropped: reg.counter("sim.packets_dropped"),
            queue_hwm_bytes: reg.gauge("sim.queue_hwm_bytes"),
            loop_timer: reg.timer("time.sim_event_loop_us"),
        }
    }
}

/// Node role.
enum NodeSlot {
    /// Forwards packets according to the routing table.
    Router,
    /// Runs an agent. The box is temporarily taken out while its
    /// callback runs (to satisfy the borrow checker); `None` only
    /// transiently. The host's RNG lives in `Simulator::host_rngs`,
    /// which the callback borrows disjointly.
    Host { agent: Option<Box<dyn Agent>> },
}

/// One packet tap: a node and the sink observing its traffic.
struct Tap {
    node: NodeId,
    sink: Box<dyn PacketSink>,
}

/// Why [`Simulator::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    Drained,
    /// The configured horizon was reached with events still pending.
    Horizon,
    /// The event budget was exhausted (runaway-protection).
    EventBudget,
}

/// Discrete-event network simulator.
pub struct Simulator {
    now: SimTime,
    events: EventQueue,
    /// Arena holding every packet currently buffered or in flight.
    pool: PacketPool,
    nodes: Vec<NodeSlot>,
    /// Per-node RNG streams, parallel to `nodes` (router slots hold an
    /// unused placeholder).
    host_rngs: Vec<StdRng>,
    links: Vec<Link>,
    link_rngs: Vec<StdRng>,
    /// `routes[node][dst] = link` (dense table; `None` = unreachable).
    routes: Vec<Vec<Option<LinkId>>>,
    taps: Vec<Tap>,
    /// Per-node count of attached taps, parallel to `nodes` — lets the
    /// hot path skip capture bookkeeping for untapped nodes in O(1).
    tap_counts: Vec<u32>,
    next_packet_id: u64,
    seed: u64,
    events_processed: u64,
    /// Safety valve against runaway simulations (default: practically
    /// unlimited).
    event_budget: u64,
    cmd_buf: Vec<Command>,
    obs: Option<SimObs>,
    trace: Option<TraceBuffer>,
}

impl Simulator {
    /// A fresh simulator; all randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            events: EventQueue::new(),
            pool: PacketPool::new(),
            nodes: Vec::new(),
            host_rngs: Vec::new(),
            links: Vec::new(),
            link_rngs: Vec::new(),
            routes: Vec::new(),
            taps: Vec::new(),
            tap_counts: Vec::new(),
            next_packet_id: 0,
            seed,
            events_processed: 0,
            event_budget: u64::MAX,
            cmd_buf: Vec::new(),
            obs: None,
            trace: None,
        }
    }

    /// Register the simulator's metrics (`sim.events`,
    /// `sim.packets_sent`, `sim.packets_delivered`,
    /// `sim.packets_dropped`, the `sim.queue_hwm_bytes` gauge, and the
    /// wall-clock `time.sim_event_loop_us` timer) into `reg` and update
    /// them while running. All except the timer are deterministic
    /// functions of the seed and topology.
    pub fn attach_obs(&mut self, reg: &MetricsRegistry) {
        self.obs = Some(SimObs::register(reg));
    }

    /// Emit structured trace events (scope `"sim"`: packet drops, link
    /// fault actions) into `buf` while running.
    pub fn attach_trace_buffer(&mut self, buf: TraceBuffer) {
        self.trace = Some(buf);
    }

    /// Cap the number of processed events (safety valve for tests).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Add a forwarding-only router node.
    pub fn add_router(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot::Router);
        // Routers never sample randomness; the slot keeps the vectors
        // parallel.
        self.host_rngs.push(stream_rng(self.seed, 0));
        self.tap_counts.push(0);
        id
    }

    /// Add a host running `agent`, activated at time zero.
    pub fn add_host(&mut self, agent: Box<dyn Agent>) -> NodeId {
        self.add_host_at(agent, SimTime::ZERO)
    }

    /// Add a host running `agent`, activated at `start`.
    pub fn add_host_at(&mut self, agent: Box<dyn Agent>, start: SimTime) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot::Host { agent: Some(agent) });
        self.host_rngs
            .push(stream_rng(self.seed, 0x1000_0000 + id.0 as u64));
        self.tap_counts.push(0);
        self.events.push(start, EventKind::Start(id));
        id
    }

    /// Add a unidirectional link `from → to`.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(from.index() < self.nodes.len(), "unknown from node");
        assert!(to.index() < self.nodes.len(), "unknown to node");
        assert_ne!(from, to, "self-loop link");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, from, to, cfg));
        self.link_rngs
            .push(stream_rng(self.seed, 0x2000_0000 + id.0 as u64));
        id
    }

    /// Add a pair of links `a → b` and `b → a` with the same config.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, cfg.clone());
        let ba = self.add_link(b, a, cfg);
        (ab, ba)
    }

    /// Add an asymmetric duplex: `cfg` for `a → b`, `rev` for `b → a`.
    pub fn add_duplex_link_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        cfg: LinkConfig,
        rev: LinkConfig,
    ) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, cfg);
        let ba = self.add_link(b, a, rev);
        (ab, ba)
    }

    /// Explicitly route traffic for `dst` leaving `node` over `link`.
    pub fn set_route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        self.ensure_route_table();
        assert_eq!(
            self.links[link.index()].from,
            node,
            "link does not leave node"
        );
        self.routes[node.index()][dst.index()] = Some(link);
    }

    fn ensure_route_table(&mut self) {
        let n = self.nodes.len();
        if self.routes.len() != n || self.routes.first().map(|r| r.len()) != Some(n) {
            self.routes = vec![vec![None; n]; n];
        }
    }

    /// Compute shortest-path (hop count) routes for every node pair.
    /// Deterministic: among equal-length paths the smallest link id wins.
    /// Call after the topology is complete; explicit `set_route` entries
    /// made *after* this call override it.
    pub fn compute_routes(&mut self) {
        let n = self.nodes.len();
        self.routes = vec![vec![None; n]; n];
        // Outgoing adjacency, sorted by link id for determinism.
        let mut out: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for l in &self.links {
            out[l.from.index()].push(l.id);
        }
        // BFS from every destination over *reversed* links: we want, for
        // each node, the first hop towards dst.
        let mut rin: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for l in &self.links {
            rin[l.to.index()].push(l.id);
        }
        for dst in 0..n {
            let mut dist = vec![u32::MAX; n];
            dist[dst] = 0;
            let mut q = VecDeque::new();
            q.push_back(dst);
            while let Some(v) = q.pop_front() {
                // Links arriving at v originate at candidate predecessors.
                for &lid in &rin[v] {
                    let u = self.links[lid.index()].from.index();
                    if dist[u] == u32::MAX {
                        dist[u] = dist[v] + 1;
                        self.routes[u][dst] = Some(lid);
                        q.push_back(u);
                    } else if dist[u] == dist[v] + 1 {
                        // Equal-length alternative: keep the smaller link id.
                        if let Some(cur) = self.routes[u][dst] {
                            if lid < cur {
                                self.routes[u][dst] = Some(lid);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The route (outgoing link) from `node` towards `dst`, if any.
    pub fn route(&self, node: NodeId, dst: NodeId) -> Option<LinkId> {
        self.routes
            .get(node.index())
            .and_then(|r| r.get(dst.index()))
            .copied()
            .flatten()
    }

    /// Attach a streaming packet sink to `node`. The sink sees every
    /// packet the node sends or receives, one [`PacketRecord`] at a
    /// time, in event order.
    pub fn attach_sink(&mut self, node: NodeId, sink: Box<dyn PacketSink>) -> SinkHandle {
        assert!(node.index() < self.nodes.len(), "unknown node");
        self.taps.push(Tap { node, sink });
        self.tap_counts[node.index()] += 1;
        SinkHandle(self.taps.len() - 1)
    }

    /// Read an attached sink back as its concrete type (`None` if the
    /// handle's sink is of a different type).
    pub fn sink<T: PacketSink>(&self, h: SinkHandle) -> Option<&T> {
        (self.taps[h.0].sink.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to an attached sink as its concrete type.
    pub fn sink_mut<T: PacketSink>(&mut self, h: SinkHandle) -> Option<&mut T> {
        (self.taps[h.0].sink.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Detach and return a sink; the tap stops observing from then on.
    pub fn take_sink(&mut self, h: SinkHandle) -> Box<dyn PacketSink> {
        self.detach_tap(h.0);
        std::mem::replace(&mut self.taps[h.0].sink, Box::new(NullSink))
    }

    /// Stop a tap from observing (idempotent) and keep the per-node
    /// fast-path count in sync.
    fn detach_tap(&mut self, tap: usize) {
        let node = self.taps[tap].node;
        if node != NodeId(u32::MAX) {
            self.tap_counts[node.index()] -= 1;
            self.taps[tap].node = NodeId(u32::MAX);
        }
    }

    /// Attach a buffering capture tap to `node` — shorthand for
    /// [`Simulator::attach_sink`] with a [`Capture`] sink.
    pub fn attach_capture(&mut self, node: NodeId) -> CaptureHandle {
        CaptureHandle(self.attach_sink(node, Box::new(Capture::new(node))).0)
    }

    /// Read a capture.
    ///
    /// # Panics
    /// Panics if the handle's tap does not hold a [`Capture`] sink.
    pub fn capture(&self, h: CaptureHandle) -> &Capture {
        match self.sink::<Capture>(SinkHandle(h.0)) {
            Some(c) => c,
            None => panic!("handle is not a capture tap"),
        }
    }

    /// Remove and return a capture (e.g. to hand to trace analysis).
    ///
    /// # Panics
    /// Panics if the handle's tap does not hold a [`Capture`] sink.
    pub fn take_capture(&mut self, h: CaptureHandle) -> Capture {
        let Some(sink) = self.sink_mut::<Capture>(SinkHandle(h.0)) else {
            panic!("handle is not a capture tap")
        };
        let cap = std::mem::replace(sink, Capture::new(NodeId(u32::MAX)));
        self.detach_tap(h.0);
        cap
    }

    /// Link statistics.
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.links[link.index()].stats
    }

    /// The link object (read-only).
    pub fn link(&self, link: LinkId) -> &Link {
        &self.links[link.index()]
    }

    /// Downcast a host's agent to its concrete type.
    pub fn agent<T: Agent>(&self, node: NodeId) -> Option<&T> {
        match &self.nodes[node.index()] {
            NodeSlot::Host { agent: Some(agent) } => {
                (agent.as_ref() as &dyn Any).downcast_ref::<T>()
            }
            _ => None,
        }
    }

    /// Downcast a host's agent to its concrete type, mutably.
    pub fn agent_mut<T: Agent>(&mut self, node: NodeId) -> Option<&mut T> {
        match &mut self.nodes[node.index()] {
            NodeSlot::Host { agent: Some(agent) } => {
                (agent.as_mut() as &mut dyn Any).downcast_mut::<T>()
            }
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Run until the queue drains or `horizon` is reached.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        let events_before = self.events_processed;
        // The guard records wall time into `time.sim_event_loop_us` on
        // every exit path; the event-count delta is added on drop of
        // this scope too (see below).
        let _loop_timer = self.obs.as_ref().map(|o| o.loop_timer.start_timer());
        let stop = self.run_until_inner(horizon);
        if let Some(o) = &self.obs {
            o.events.add(self.events_processed - events_before);
        }
        stop
    }

    fn run_until_inner(&mut self, horizon: SimTime) -> StopReason {
        self.ensure_route_table();
        loop {
            if self.events_processed >= self.event_budget {
                return StopReason::EventBudget;
            }
            match self.events.peek_time() {
                None => return StopReason::Drained,
                Some(t) if t > horizon => {
                    self.now = horizon;
                    return StopReason::Horizon;
                }
                Some(_) => {}
            }
            let Some(ev) = self.events.pop() else {
                unreachable!("peek_time just returned Some")
            };
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.events_processed += 1;
            self.dispatch(ev.kind);
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) -> StopReason {
        self.run_until(SimTime::MAX)
    }

    /// Run to `horizon`, invoking `observe` every `interval` of
    /// simulated time (first at the current time). Lets harnesses
    /// sample link/queue state as the simulation progresses — e.g.
    /// recording buffer occupancy while a flow's slow start fills it.
    pub fn run_sampled<F: FnMut(&Simulator)>(
        &mut self,
        horizon: SimTime,
        interval: SimDuration,
        mut observe: F,
    ) -> StopReason {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        let mut next = self.now;
        loop {
            observe(self);
            next += interval;
            if next >= horizon {
                return self.run_until(horizon);
            }
            match self.run_until(next) {
                StopReason::Horizon => {}
                other => return other,
            }
        }
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// High-water mark of simultaneously pending events (diagnostics
    /// and benchmark reporting).
    pub fn peak_pending_events(&self) -> usize {
        self.events.high_water()
    }

    /// High-water mark of packets simultaneously buffered or in flight
    /// (the packet pool's peak occupancy).
    pub fn peak_pool_packets(&self) -> usize {
        self.pool.high_water()
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start(node) => self.agent_callback(node, AgentCall::Start),
            EventKind::Timer(node, token) => self.agent_callback(node, AgentCall::Timer(token)),
            EventKind::Deliver(node, handle) => self.deliver(node, handle),
            EventKind::LinkService(link) => self.link_service(link),
            EventKind::LinkReconfig(link, cfg) => {
                let now = self.now;
                self.links[link.index()].reconfigure(now, *cfg);
                self.wake_link(link, now);
            }
            EventKind::LinkFault(link, action) => {
                let now = self.now;
                if let Some(trace) = &self.trace {
                    trace.push(
                        TraceEvent::new(now.as_nanos(), "sim", "fault")
                            .field("link", u64::from(link.0))
                            .field("action", format!("{action:?}")),
                    );
                }
                self.links[link.index()].apply_fault_action(now, action);
                // An Up (or rate step) may make a parked backlog
                // serviceable again.
                if !self.links[link.index()].is_down() {
                    self.wake_link(link, now);
                }
            }
        }
    }

    fn deliver(&mut self, node: NodeId, handle: PacketHandle) {
        // Redeem the handle: the pool slot is freed here; forwarding
        // re-inserts into the (just-recycled) slot.
        let pkt = self.pool.take(handle);
        self.record_capture(node, Direction::In, &pkt);
        if pkt.dst == node {
            if let Some(o) = &self.obs {
                o.packets_delivered.inc();
            }
            match &self.nodes[node.index()] {
                NodeSlot::Host { .. } => self.agent_callback(node, AgentCall::Packet(pkt)),
                NodeSlot::Router => {
                    // Routers answer latency probes like real routers
                    // answer ICMP echo; all other packets addressed to a
                    // router are absorbed.
                    if let crate::packet::PacketKind::Probe {
                        kind: crate::packet::ProbeKind::Request,
                        ident,
                    } = pkt.kind
                    {
                        let reply = Packet {
                            id: PacketId(self.next_packet_id),
                            flow: pkt.flow,
                            src: node,
                            dst: pkt.src,
                            size: pkt.size,
                            sent_at: self.now,
                            kind: crate::packet::PacketKind::Probe {
                                kind: crate::packet::ProbeKind::Reply {
                                    sent_at: pkt.sent_at,
                                },
                                ident,
                            },
                        };
                        self.next_packet_id += 1;
                        if let Some(link) = self.route(node, reply.dst) {
                            self.enqueue_on_link(link, reply);
                        }
                    }
                }
            }
        } else {
            // Forward.
            match self.route(node, pkt.dst) {
                Some(link) => self.enqueue_on_link(link, pkt),
                None => {
                    // No route: packet silently dropped (counts nowhere —
                    // misconfiguration is surfaced by tests/assertions in
                    // experiment code).
                    debug_assert!(false, "no route from {node} to {}", pkt.dst);
                }
            }
        }
    }

    fn link_service(&mut self, link: LinkId) {
        let l = &mut self.links[link.index()];
        l.clear_service_pending();
        let rng = &mut self.link_rngs[link.index()];
        match l.service(self.now, rng) {
            ServiceOutcome::Idle => {}
            ServiceOutcome::Retry(at) => {
                self.events.push(at, EventKind::LinkService(link));
            }
            ServiceOutcome::Deliver {
                pkt,
                arrival,
                next_service,
            } => {
                let to = l.to;
                if let Some(t) = next_service {
                    self.events.push(t, EventKind::LinkService(link));
                }
                self.events.push(arrival, EventKind::Deliver(to, pkt));
            }
        }
    }

    fn enqueue_on_link(&mut self, link: LinkId, pkt: Packet) {
        let l = &mut self.links[link.index()];
        let rng = &mut self.link_rngs[link.index()];
        let outcome = l.enqueue(pkt, self.now, &mut self.pool, rng);
        if let Some(o) = &self.obs {
            o.queue_hwm_bytes.record(l.queued_bytes());
        }
        match outcome {
            EnqueueOutcome::Queued {
                schedule_service: true,
                service_at,
            } => {
                self.events.push(service_at, EventKind::LinkService(link));
            }
            EnqueueOutcome::Queued { .. } => {}
            // Drops are counted in link stats (and, when attached, the
            // metrics registry and trace ring).
            EnqueueOutcome::DroppedLoss
            | EnqueueOutcome::DroppedFull
            | EnqueueOutcome::DroppedEarly
            | EnqueueOutcome::DroppedDown => {
                if let Some(o) = &self.obs {
                    o.packets_dropped.inc();
                }
                if let Some(trace) = &self.trace {
                    let reason = match outcome {
                        EnqueueOutcome::DroppedLoss => "loss",
                        EnqueueOutcome::DroppedFull => "full",
                        EnqueueOutcome::DroppedEarly => "early",
                        EnqueueOutcome::DroppedDown => "down",
                        EnqueueOutcome::Queued { .. } => unreachable!("drop arm"),
                    };
                    trace.push(
                        TraceEvent::new(self.now.as_nanos(), "sim", "drop")
                            .field("link", u64::from(link.0))
                            .field("reason", reason),
                    );
                }
            }
        }
    }

    /// Re-arm service for a link whose backlog may have become
    /// serviceable (after a reconfiguration or fault action).
    fn wake_link(&mut self, link: LinkId, now: SimTime) {
        let l = &mut self.links[link.index()];
        if !l.service_pending() && l.queued_bytes() > 0 {
            l.force_service_pending();
            self.events.push(now, EventKind::LinkService(link));
        }
    }

    fn record_capture(&mut self, node: NodeId, dir: Direction, pkt: &Packet) {
        // O(1) fast path: untapped nodes (the overwhelming majority in
        // large campaigns) pay a single indexed load per delivery.
        if self.tap_counts[node.index()] == 0 {
            return;
        }
        let rec = PacketRecord {
            time: self.now,
            dir,
            pkt: *pkt,
        };
        for t in &mut self.taps {
            if t.node == node {
                t.sink.on_record(&rec);
            }
        }
    }

    fn agent_callback(&mut self, node: NodeId, call: AgentCall) {
        // Take the agent box out so we can hand `self`-derived context
        // in; the RNG stays put (host_rngs is a disjoint field).
        let mut agent = match &mut self.nodes[node.index()] {
            NodeSlot::Host { agent } => {
                let Some(agent) = agent.take() else {
                    unreachable!("agent call re-entered while the agent was checked out")
                };
                agent
            }
            NodeSlot::Router => return,
        };
        let mut cmds = std::mem::take(&mut self.cmd_buf);
        debug_assert!(cmds.is_empty());
        {
            let rng = &mut self.host_rngs[node.index()];
            let mut ctx = Ctx::new(self.now, node, &mut cmds, rng);
            match call {
                AgentCall::Start => agent.on_start(&mut ctx),
                AgentCall::Timer(token) => agent.on_timer(&mut ctx, token),
                AgentCall::Packet(pkt) => agent.on_packet(&mut ctx, pkt),
            }
        }
        // Put the agent back before applying commands (commands may
        // deliver packets only via events, so no re-entrancy).
        match &mut self.nodes[node.index()] {
            NodeSlot::Host { agent: slot } => *slot = Some(agent),
            NodeSlot::Router => unreachable!(),
        }
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Send(spec) => self.send_from(node, spec),
                Command::SetTimer(delay, token) => {
                    self.events
                        .push(self.now + delay, EventKind::Timer(node, token));
                }
            }
        }
        self.cmd_buf = cmds;
    }

    fn send_from(&mut self, node: NodeId, spec: PacketSpec) {
        let pkt = Packet {
            id: PacketId(self.next_packet_id),
            flow: spec.flow,
            src: node,
            dst: spec.dst,
            size: spec.size,
            sent_at: self.now,
            kind: spec.kind,
        };
        self.next_packet_id += 1;
        if let Some(o) = &self.obs {
            o.packets_sent.inc();
        }
        self.record_capture(node, Direction::Out, &pkt);
        match self.route(node, pkt.dst) {
            Some(link) => self.enqueue_on_link(link, pkt),
            None => {
                debug_assert!(false, "no route from {node} to {}", pkt.dst);
            }
        }
    }

    /// Schedule an extra `Start` activation for a host at `time` — used
    /// by harnesses to kick an agent that was added with a start far in
    /// the future, or to wake it for a new phase.
    pub fn schedule_start(&mut self, node: NodeId, time: SimTime) {
        self.events.push(time, EventKind::Start(node));
    }

    /// Schedule a timer for a host from outside (harness-driven phase
    /// changes).
    pub fn schedule_timer(&mut self, node: NodeId, at: SimTime, token: TimerToken) {
        self.events.push(at, EventKind::Timer(node, token));
    }

    /// Schedule a link-parameter change at `at` (time-varying paths:
    /// congestion windows, capacity changes).
    pub fn schedule_link_reconfig(&mut self, at: SimTime, link: LinkId, cfg: LinkConfig) {
        assert!(link.index() < self.links.len(), "unknown link");
        self.events
            .push(at, EventKind::LinkReconfig(link, Box::new(cfg)));
    }

    /// Attach a fault plan to a link: its loss model replaces the link's
    /// i.i.d. loss, reorder/duplication impairments activate, and every
    /// scheduled [`crate::fault::FaultEvent`] is queued. Impairment
    /// decisions draw from a dedicated per-link stream of the master
    /// seed (`0x4000_0000 + link id`), so the sequence is reproducible
    /// regardless of other configuration and of how many scenarios run
    /// in parallel.
    pub fn attach_fault_plan(&mut self, link: LinkId, plan: FaultPlan) {
        assert!(link.index() < self.links.len(), "unknown link");
        for ev in &plan.events {
            self.events
                .push(ev.at, EventKind::LinkFault(link, ev.action));
        }
        let rng = stream_rng(self.seed, 0x4000_0000 + link.0 as u64);
        self.links[link.index()].attach_fault(FaultState::new(plan, rng));
    }

    /// The impairment log of a link (empty without an attached plan).
    pub fn fault_log(&self, link: LinkId) -> &[ImpairmentRecord] {
        self.links[link.index()].fault_log()
    }
}

enum AgentCall {
    Start,
    Timer(TimerToken),
    Packet(Packet),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::SinkAgent;
    use crate::fault::GilbertElliott;
    use crate::ids::FlowId;
    use crate::packet::{PacketKind, PacketSpec};

    /// Sends `count` background packets of `size` to `dst`, one per
    /// `interval`, starting immediately.
    struct Blaster {
        dst: NodeId,
        count: u32,
        size: u32,
        interval: SimDuration,
        sent: u32,
        received: u32,
    }

    impl Blaster {
        fn new(dst: NodeId, count: u32, size: u32, interval: SimDuration) -> Self {
            Blaster {
                dst,
                count,
                size,
                interval,
                sent: 0,
                received: 0,
            }
        }
    }

    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {
            self.received += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx, _token: TimerToken) {
            if self.sent < self.count {
                ctx.send(PacketSpec::background(FlowId(1), self.dst, self.size));
                self.sent += 1;
                ctx.set_timer(self.interval, 0);
            }
        }
    }

    fn two_hosts_one_router(seed: u64) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_host(Box::new(Blaster::new(
            NodeId(2),
            10,
            1000,
            SimDuration::from_millis(1),
        )));
        let r = sim.add_router();
        let b = sim.add_host(Box::new(SinkAgent::default()));
        let cfg = LinkConfig::new(100_000_000, SimDuration::from_millis(5));
        sim.add_duplex_link(a, r, cfg.clone());
        sim.add_duplex_link(r, b, cfg);
        sim.compute_routes();
        (sim, a, b)
    }

    #[test]
    fn packets_flow_end_to_end_through_router() {
        let (mut sim, _a, b) = two_hosts_one_router(1);
        assert_eq!(sim.run(), StopReason::Drained);
        let sink: &SinkAgent = sim.agent(b).unwrap();
        assert_eq!(sink.packets, 10);
        assert_eq!(sink.bytes, 10_000);
        // 2 hops × 5 ms prop: last packet sent at 9 ms arrives > 19 ms.
        assert!(sim.now() >= SimTime::from_millis(19));
    }

    #[test]
    fn captures_see_both_directions() {
        let mut sim = Simulator::new(3);
        let a = sim.add_host(Box::new(Blaster::new(
            NodeId(1),
            5,
            500,
            SimDuration::from_millis(1),
        )));
        let b = sim.add_host(Box::new(SinkAgent::default()));
        sim.add_duplex_link(
            a,
            b,
            LinkConfig::new(10_000_000, SimDuration::from_millis(2)),
        );
        sim.compute_routes();
        let cap_a = sim.attach_capture(a);
        let cap_b = sim.attach_capture(b);
        sim.run();
        let ca = sim.capture(cap_a);
        assert_eq!(ca.records.len(), 5);
        assert!(ca.records.iter().all(|r| r.dir == Direction::Out));
        let cb = sim.capture(cap_b);
        assert_eq!(cb.records.len(), 5);
        assert!(cb.records.iter().all(|r| r.dir == Direction::In));
        // Timestamps at the receiver trail the sender by at least prop.
        assert!(cb.records[0].time >= ca.records[0].time + SimDuration::from_millis(2));
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let (mut s1, _, b1) = two_hosts_one_router(42);
        let (mut s2, _, b2) = two_hosts_one_router(42);
        let c1 = s1.attach_capture(b1);
        let c2 = s2.attach_capture(b2);
        s1.run();
        s2.run();
        assert_eq!(s1.capture(c1).records, s2.capture(c2).records);
        assert_eq!(s1.events_processed(), s2.events_processed());
    }

    #[test]
    fn fault_plan_flap_drops_midstream_then_recovers() {
        // 20 packets, one per ms; link down during [4 ms, 8 ms).
        let mut sim = Simulator::new(7);
        let a = sim.add_host(Box::new(Blaster::new(
            NodeId(1),
            20,
            1000,
            SimDuration::from_millis(1),
        )));
        let b = sim.add_host(Box::new(SinkAgent::default()));
        let (ab, _) = sim.add_duplex_link(
            a,
            b,
            LinkConfig::new(100_000_000, SimDuration::from_micros(100)),
        );
        sim.compute_routes();
        sim.attach_fault_plan(
            ab,
            FaultPlan::new().down_between(SimTime::from_millis(4), SimTime::from_millis(8)),
        );
        assert_eq!(sim.run(), StopReason::Drained);
        let sink: &SinkAgent = sim.agent(b).unwrap();
        // Packets sent at t = 4..8 ms (4 of them) died at the down link.
        assert_eq!(sim.link_stats(ab).dropped_down, 4);
        assert_eq!(sink.packets, 16);
        assert_eq!(
            sim.fault_log(ab).len(),
            4,
            "each down-drop logged: {:?}",
            sim.fault_log(ab)
        );
    }

    #[test]
    fn fault_plan_impairments_reproducible_from_seed() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let a = sim.add_host(Box::new(Blaster::new(
                NodeId(1),
                200,
                1000,
                SimDuration::from_micros(200),
            )));
            let b = sim.add_host(Box::new(SinkAgent::default()));
            let (ab, _) = sim.add_duplex_link(
                a,
                b,
                LinkConfig::new(20_000_000, SimDuration::from_millis(2)),
            );
            sim.compute_routes();
            sim.attach_fault_plan(
                ab,
                FaultPlan::new()
                    .gilbert_elliott(GilbertElliott::bursty(6.0, 0.05))
                    .reorder(0.05, SimDuration::from_millis(4))
                    .duplicate(0.02),
            );
            sim.run();
            sim.fault_log(ab).to_vec()
        };
        let log = run(1234);
        assert!(!log.is_empty(), "impairments occurred");
        assert_eq!(log, run(1234), "same seed, same impairment sequence");
        assert_ne!(log, run(5678), "different seed diverges");
    }

    #[test]
    fn horizon_stops_early() {
        let (mut sim, _, b) = two_hosts_one_router(1);
        let stop = sim.run_until(SimTime::from_millis(3));
        assert_eq!(stop, StopReason::Horizon);
        assert_eq!(sim.now(), SimTime::from_millis(3));
        let sink: &SinkAgent = sim.agent(b).unwrap();
        assert!(sink.packets < 10);
        // Resume to completion.
        assert_eq!(sim.run(), StopReason::Drained);
        let sink: &SinkAgent = sim.agent(b).unwrap();
        assert_eq!(sink.packets, 10);
    }

    #[test]
    fn attached_metrics_are_deterministic_and_drops_are_traced() {
        let run = |seed: u64| {
            let reg = MetricsRegistry::new();
            let trace = TraceBuffer::with_capacity(4096);
            // The blaster overruns a tiny buffer, so drops occur.
            let mut sim = Simulator::new(seed);
            let a = sim.add_host(Box::new(Blaster::new(
                NodeId(1),
                100,
                1500,
                SimDuration::ZERO,
            )));
            let b = sim.add_host(Box::new(SinkAgent::default()));
            sim.add_duplex_link(
                a,
                b,
                LinkConfig::new(1_000_000, SimDuration::from_millis(1)).buffer_ms(100),
            );
            sim.compute_routes();
            sim.attach_obs(&reg);
            sim.attach_trace_buffer(trace.clone());
            sim.run();
            (reg.snapshot(), trace.snapshot(), sim.events_processed())
        };
        let (snap, events, processed) = run(5);
        assert_eq!(snap.counter("sim.events"), Some(processed));
        assert_eq!(snap.counter("sim.packets_sent"), Some(100));
        let delivered = snap.counter("sim.packets_delivered").unwrap();
        let dropped = snap.counter("sim.packets_dropped").unwrap();
        assert_eq!(delivered + dropped, 100);
        assert!(dropped > 0, "tiny buffer must overflow");
        assert!(snap.gauge("sim.queue_hwm_bytes").unwrap() > 0);
        // The wall-clock loop timer exists but is non-deterministic.
        assert!(snap.histogram("time.sim_event_loop_us").is_some());
        assert!(snap
            .deterministic()
            .histogram("time.sim_event_loop_us")
            .is_none());
        // One trace event per drop, in time order, rendering as JSONL.
        assert_eq!(events.len(), dropped as usize);
        assert!(events.iter().all(|e| e.scope == "sim" && e.kind == "drop"));
        // Same seed → byte-identical deterministic snapshot and trace.
        let (snap2, events2, _) = run(5);
        assert_eq!(snap.deterministic(), snap2.deterministic());
        assert_eq!(
            snap.deterministic().to_json(),
            snap2.deterministic().to_json()
        );
        assert_eq!(events, events2);
    }

    #[test]
    fn event_budget_guards_runaway() {
        let (mut sim, _, _) = two_hosts_one_router(1);
        sim.set_event_budget(5);
        assert_eq!(sim.run(), StopReason::EventBudget);
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn compute_routes_prefers_short_paths() {
        // a → r1 → b and a → r1 → r2 → b; route a→b must use r1→b.
        let mut sim = Simulator::new(1);
        let a = sim.add_host(Box::new(SinkAgent::default()));
        let r1 = sim.add_router();
        let r2 = sim.add_router();
        let b = sim.add_host(Box::new(SinkAgent::default()));
        let cfg = LinkConfig::new(1_000_000, SimDuration::from_millis(1));
        let a_r1 = sim.add_link(a, r1, cfg.clone());
        let r1_b = sim.add_link(r1, b, cfg.clone());
        let _r1_r2 = sim.add_link(r1, r2, cfg.clone());
        let _r2_b = sim.add_link(r2, b, cfg);
        sim.compute_routes();
        assert_eq!(sim.route(a, b), Some(a_r1));
        assert_eq!(sim.route(r1, b), Some(r1_b));
        assert_eq!(sim.route(b, a), None); // no reverse links exist
    }

    #[test]
    fn explicit_route_overrides() {
        let mut sim = Simulator::new(1);
        let a = sim.add_host(Box::new(SinkAgent::default()));
        let r1 = sim.add_router();
        let r2 = sim.add_router();
        let b = sim.add_host(Box::new(SinkAgent::default()));
        let cfg = LinkConfig::new(1_000_000, SimDuration::from_millis(1));
        let _a_r1 = sim.add_link(a, r1, cfg.clone());
        let a_r2 = sim.add_link(a, r2, cfg.clone());
        let _r1_b = sim.add_link(r1, b, cfg.clone());
        let _r2_b = sim.add_link(r2, b, cfg);
        sim.compute_routes();
        sim.set_route(a, b, a_r2);
        assert_eq!(sim.route(a, b), Some(a_r2));
    }

    #[test]
    fn queueing_delay_emerges_under_load() {
        // Blast 100 × 1500 B at a 1 Mbps link: transmission is 12 ms per
        // packet, so the sink receives them 12 ms apart, and the link's
        // buffer fills (100 ms buffer = ~8 packets; the rest drop).
        let mut sim = Simulator::new(5);
        let a = sim.add_host(Box::new(Blaster::new(
            NodeId(1),
            100,
            1500,
            SimDuration::ZERO, // all at once
        )));
        let b = sim.add_host(Box::new(SinkAgent::default()));
        let (ab, _) = sim.add_duplex_link(
            a,
            b,
            LinkConfig::new(1_000_000, SimDuration::from_millis(1)).buffer_ms(100),
        );
        sim.compute_routes();
        sim.run();
        let stats = sim.link_stats(ab);
        assert!(stats.dropped_full > 0, "buffer never overflowed");
        let sink: &SinkAgent = sim.agent(b).unwrap();
        assert_eq!(sink.packets + stats.dropped_full, 100);
        assert!(stats.mean_queue_delay() > SimDuration::from_millis(5));
    }

    #[test]
    fn run_sampled_observes_at_interval() {
        let (mut sim, _, _) = two_hosts_one_router(1);
        let mut seen = Vec::new();
        let stop = sim.run_sampled(SimTime::from_millis(10), SimDuration::from_millis(2), |s| {
            seen.push(s.now())
        });
        assert_eq!(stop, StopReason::Horizon);
        // Observations at 0, 2, 4, 6, 8 ms.
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[1], SimTime::from_millis(2));
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn link_reconfigure_takes_effect_mid_run() {
        // Blast packets at a slow link, then reconfigure it 10× faster
        // mid-queue: the backlog must drain at the new rate.
        let mut sim = Simulator::new(8);
        let a = sim.add_host(Box::new(Blaster::new(
            NodeId(1),
            20,
            1500,
            SimDuration::ZERO,
        )));
        let b = sim.add_host(Box::new(SinkAgent::default()));
        let slow = LinkConfig::new(1_000_000, SimDuration::ZERO).buffer_bytes(100_000);
        let (ab, _) = sim.add_duplex_link(a, b, slow);
        sim.compute_routes();
        // At 1 Mbps a 1500 B packet takes 12 ms; 20 packets = 240 ms.
        // Reconfigure to 10 Mbps at t = 24 ms (after ~2 packets).
        sim.schedule_link_reconfig(
            SimTime::from_millis(24),
            ab,
            LinkConfig::new(10_000_000, SimDuration::ZERO).buffer_bytes(100_000),
        );
        sim.run();
        let sink: &SinkAgent = sim.agent(b).unwrap();
        assert_eq!(sink.packets, 20, "packets lost across reconfig");
        // 2 packets at 12 ms + 18 packets at 1.2 ms ≈ 46 ms ≪ 240 ms.
        assert!(
            sim.now() < SimTime::from_millis(80),
            "drain did not speed up: {}",
            sim.now()
        );
    }

    #[test]
    fn timer_tokens_roundtrip() {
        struct TimerEcho {
            got: Vec<TimerToken>,
        }
        impl Agent for TimerEcho {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(SimDuration::from_millis(2), 7);
                ctx.set_timer(SimDuration::from_millis(1), 9);
            }
            fn on_packet(&mut self, _: &mut Ctx, _: Packet) {}
            fn on_timer(&mut self, _: &mut Ctx, token: TimerToken) {
                self.got.push(token);
            }
        }
        let mut sim = Simulator::new(1);
        let a = sim.add_host(Box::new(TimerEcho { got: vec![] }));
        sim.run();
        let agent: &TimerEcho = sim.agent(a).unwrap();
        assert_eq!(agent.got, vec![9, 7]);
    }

    #[test]
    fn router_echoes_probe_requests() {
        use crate::packet::{PacketKind, PacketSpec, ProbeKind};
        struct Prober {
            target: NodeId,
            rtt_ns: Option<u64>,
        }
        impl Agent for Prober {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send(PacketSpec::probe(
                    FlowId(1),
                    self.target,
                    ProbeKind::Request,
                    7,
                ));
            }
            fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
                if let PacketKind::Probe {
                    kind: ProbeKind::Reply { sent_at },
                    ident: 7,
                } = pkt.kind
                {
                    self.rtt_ns = Some(ctx.now().saturating_since(sent_at).as_nanos());
                }
            }
            fn on_timer(&mut self, _: &mut Ctx, _: TimerToken) {}
        }
        let mut sim = Simulator::new(1);
        let p = sim.add_host(Box::new(Prober {
            target: NodeId(1),
            rtt_ns: None,
        }));
        let r = sim.add_router();
        sim.add_duplex_link(
            p,
            r,
            LinkConfig::new(100_000_000, SimDuration::from_millis(5)),
        );
        sim.compute_routes();
        sim.run();
        let prober: &Prober = sim.agent(p).unwrap();
        let rtt = prober.rtt_ns.expect("router reply");
        // ~2 × 5 ms plus serialization.
        assert!(rtt > 10_000_000 && rtt < 11_000_000, "rtt {rtt}");
    }

    #[test]
    fn background_packet_to_router_is_absorbed() {
        let mut sim = Simulator::new(1);
        let a = sim.add_host(Box::new(Blaster::new(NodeId(1), 1, 100, SimDuration::ZERO)));
        let r = sim.add_router();
        sim.add_duplex_link(
            a,
            r,
            LinkConfig::new(1_000_000, SimDuration::from_millis(1)),
        );
        sim.compute_routes();
        // Blaster targets NodeId(1) == the router.
        sim.run();
        // Nothing to assert beyond "did not panic / did not loop".
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn take_capture_removes_records() {
        let mut sim = Simulator::new(3);
        let a = sim.add_host(Box::new(Blaster::new(
            NodeId(1),
            2,
            100,
            SimDuration::from_millis(1),
        )));
        let b = sim.add_host(Box::new(SinkAgent::default()));
        sim.add_duplex_link(
            a,
            b,
            LinkConfig::new(10_000_000, SimDuration::from_millis(1)),
        );
        sim.compute_routes();
        let h = sim.attach_capture(a);
        sim.run();
        let cap = sim.take_capture(h);
        assert_eq!(cap.records.len(), 2);
        assert!(sim.capture(h).is_empty());
    }

    #[test]
    fn streaming_sink_sees_what_a_capture_sees() {
        /// Counts records without retaining them.
        #[derive(Default)]
        struct CountSink {
            records: usize,
            bytes: u64,
            out_of_order: bool,
            last: SimTime,
        }
        impl crate::capture::PacketSink for CountSink {
            fn on_record(&mut self, rec: &PacketRecord) {
                self.records += 1;
                self.bytes += rec.pkt.size as u64;
                if rec.time < self.last {
                    self.out_of_order = true;
                }
                self.last = rec.time;
            }
        }

        let (mut sim, _, b) = two_hosts_one_router(42);
        let cap = sim.attach_capture(b);
        let sink = sim.attach_sink(b, Box::new(CountSink::default()));
        sim.run();
        let capture = sim.take_capture(cap);
        let counted = sim.sink::<CountSink>(sink).unwrap();
        assert_eq!(counted.records, capture.len());
        assert_eq!(
            counted.bytes,
            capture
                .records
                .iter()
                .map(|r| r.pkt.size as u64)
                .sum::<u64>()
        );
        assert!(!counted.out_of_order, "records not in time order");
        // Wrong-type downcasts are None, right-type takes round-trip.
        assert!(sim.sink::<Capture>(sink).is_none());
        let boxed = sim.take_sink(sink);
        let taken = (boxed as Box<dyn Any>).downcast::<CountSink>().unwrap();
        assert_eq!(taken.records, capture.len());
    }

    #[test]
    fn probe_packet_kind_is_preserved() {
        use crate::packet::ProbeKind;
        struct Prober {
            dst: NodeId,
            reply_seen: bool,
        }
        impl Agent for Prober {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send(PacketSpec::probe(
                    FlowId(0),
                    self.dst,
                    ProbeKind::Request,
                    5,
                ));
            }
            fn on_packet(&mut self, _: &mut Ctx, pkt: Packet) {
                if let PacketKind::Probe {
                    kind: ProbeKind::Reply { .. },
                    ident,
                } = pkt.kind
                {
                    assert_eq!(ident, 5);
                    self.reply_seen = true;
                }
            }
            fn on_timer(&mut self, _: &mut Ctx, _: TimerToken) {}
        }
        struct Responder;
        impl Agent for Responder {
            fn on_start(&mut self, _: &mut Ctx) {}
            fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
                if let PacketKind::Probe {
                    kind: ProbeKind::Request,
                    ident,
                } = pkt.kind
                {
                    ctx.send(PacketSpec::probe(
                        pkt.flow,
                        pkt.src,
                        ProbeKind::Reply {
                            sent_at: pkt.sent_at,
                        },
                        ident,
                    ));
                }
            }
            fn on_timer(&mut self, _: &mut Ctx, _: TimerToken) {}
        }
        let mut sim = Simulator::new(1);
        let p = sim.add_host(Box::new(Prober {
            dst: NodeId(1),
            reply_seen: false,
        }));
        let q = sim.add_host(Box::new(Responder));
        sim.add_duplex_link(
            p,
            q,
            LinkConfig::new(1_000_000, SimDuration::from_millis(3)),
        );
        sim.compute_routes();
        sim.run();
        let prober: &Prober = sim.agent(p).unwrap();
        assert!(prober.reply_seen);
    }
}
