//! Per-link counters used by tests and experiment reports.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Counters a [`crate::link::Link`] accumulates over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets offered to the link (before loss/queue admission).
    pub offered_pkts: u64,
    /// Bytes offered to the link.
    pub offered_bytes: u64,
    /// Packets that departed onto the wire.
    pub delivered_pkts: u64,
    /// Bytes that departed onto the wire.
    pub delivered_bytes: u64,
    /// Packets dropped by i.i.d. random loss.
    pub dropped_loss: u64,
    /// Packets dropped because the buffer was full.
    pub dropped_full: u64,
    /// Packets dropped by early detection (RED).
    pub dropped_early: u64,
    /// Packets dropped because the link was down (fault injection).
    pub dropped_down: u64,
    /// Packets duplicated by fault injection (extra copies admitted).
    pub duplicated: u64,
    /// Packets deliberately delivered out of order by fault injection.
    pub reordered: u64,
    /// Sum of per-packet queueing delay (enqueue → departure).
    pub total_queue_delay: SimDuration,
}

impl LinkStats {
    /// Record a departure.
    pub(crate) fn record_delivery(&mut self, bytes: u64, queue_delay: SimDuration) {
        self.delivered_pkts += 1;
        self.delivered_bytes += bytes;
        self.total_queue_delay += queue_delay;
    }

    /// All drops regardless of cause.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_loss + self.dropped_full + self.dropped_early + self.dropped_down
    }

    /// Mean queueing delay of delivered packets.
    pub fn mean_queue_delay(&self) -> SimDuration {
        if self.delivered_pkts == 0 {
            SimDuration::ZERO
        } else {
            self.total_queue_delay / self.delivered_pkts
        }
    }

    /// Fraction of offered packets that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.offered_pkts == 0 {
            0.0
        } else {
            self.dropped_total() as f64 / self.offered_pkts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let mut s = LinkStats {
            offered_pkts: 10,
            dropped_loss: 1,
            dropped_full: 2,
            ..Default::default()
        };
        s.record_delivery(1500, SimDuration::from_millis(2));
        s.record_delivery(1500, SimDuration::from_millis(4));
        assert_eq!(s.dropped_total(), 3);
        assert_eq!(s.delivered_pkts, 2);
        assert_eq!(s.mean_queue_delay(), SimDuration::from_millis(3));
        assert!((s.drop_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = LinkStats::default();
        assert_eq!(s.mean_queue_delay(), SimDuration::ZERO);
        assert_eq!(s.drop_rate(), 0.0);
    }
}
