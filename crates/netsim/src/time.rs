//! Simulated time.
//!
//! The simulator uses a 64-bit nanosecond clock starting at zero. All
//! scheduling, queueing and protocol timers are expressed in [`SimTime`]
//! (an absolute instant) and [`SimDuration`] (a span). Both are thin
//! wrappers over `u64` nanoseconds so arithmetic is exact and the entire
//! simulation is reproducible bit-for-bit from a seed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Instant expressed as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Instant expressed as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is actually later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span (used as an "infinite" sentinel).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond;
    /// negative values clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span expressed as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span expressed as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` for the zero-length span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition of two spans.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction of two spans.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale by a non-negative float (rounds to nearest nanosecond).
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration scale");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        debug_assert!(lo <= hi);
        self.max(lo).min(hi)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Nanoseconds needed to serialize `bytes` onto a link of `rate_bps`
/// bits per second, rounded up so that a nonzero packet never takes
/// zero time on a finite-rate link.
///
/// # Panics
/// Panics if `rate_bps` is zero.
#[inline]
pub fn transmission_time(bytes: u64, rate_bps: u64) -> SimDuration {
    assert!(rate_bps > 0, "link rate must be positive");
    let bits = (bytes as u128) * 8;
    let ns = (bits * 1_000_000_000).div_ceil(rate_bps as u128);
    SimDuration(ns.min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1000.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!((t + d).as_nanos(), 15_000_000);
        assert_eq!((t - d).as_nanos(), 5_000_000);
        assert_eq!(((t + d) - t).as_nanos(), d.as_nanos());
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn duration_clamp_and_ordering() {
        let lo = SimDuration::from_millis(1);
        let hi = SimDuration::from_millis(10);
        assert_eq!(
            SimDuration::from_millis(5).clamp(lo, hi),
            SimDuration::from_millis(5)
        );
        assert_eq!(SimDuration::ZERO.clamp(lo, hi), lo);
        assert_eq!(SimDuration::from_secs(1).clamp(lo, hi), hi);
    }

    #[test]
    fn transmission_time_exact() {
        // 1500 bytes at 12 Mbps = 1 ms exactly.
        assert_eq!(
            transmission_time(1500, 12_000_000),
            SimDuration::from_millis(1)
        );
        // 1 byte at 8 Gbps = 1 ns.
        assert_eq!(
            transmission_time(1, 8_000_000_000),
            SimDuration::from_nanos(1)
        );
    }

    #[test]
    fn transmission_time_rounds_up() {
        // 1 byte at 9 Gbps is slightly under 1 ns; must round up to 1.
        assert_eq!(
            transmission_time(1, 9_000_000_000),
            SimDuration::from_nanos(1)
        );
        assert_eq!(transmission_time(0, 1_000), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn transmission_time_zero_rate_panics() {
        let _ = transmission_time(100, 0);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(2)), "2ns");
    }
}
