//! Property-based invariants of the simulator's core machinery.

use csig_netsim::{
    transmission_time, FlowId, LinkConfig, NodeId, Packet, PacketId, PacketKind, QueueKind,
    SimDuration, SimTime, Simulator, SinkAgent,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pkt(id: u64, size: u32) -> Packet {
    Packet {
        id: PacketId(id),
        flow: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        size,
        sent_at: SimTime::ZERO,
        kind: PacketKind::Background,
    }
}

proptest! {
    /// Queue byte accounting: queued_bytes equals the sum of admitted
    /// minus dequeued packet sizes, never exceeds capacity, and FIFO
    /// order is preserved — under arbitrary interleavings.
    #[test]
    fn queue_accounting_invariant(
        ops in proptest::collection::vec((any::<bool>(), 40u32..3000), 1..200),
        capacity in 3000u64..50_000,
    ) {
        use csig_netsim::queue::{EnqueueResult, LinkQueue, QueuedPacket};
        use csig_netsim::PacketPool;
        let mut q = LinkQueue::new(QueueKind::DropTail, capacity);
        let mut pool = PacketPool::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut expected: std::collections::VecDeque<(u64, u32)> = Default::default();
        let mut next_id = 0u64;
        for (enq, size) in ops {
            if enq {
                let id = next_id;
                next_id += 1;
                match q.try_admit(size, &mut rng) {
                    EnqueueResult::Queued => {
                        let p = pkt(id, size);
                        q.push(QueuedPacket {
                            handle: pool.insert(p),
                            id: p.id,
                            size: p.size,
                            enqueued_at: SimTime::ZERO,
                        });
                        expected.push_back((id, size));
                    }
                    EnqueueResult::DroppedFull => {
                        // Must actually have been over capacity.
                        let queued: u64 = expected.iter().map(|&(_, s)| s as u64).sum();
                        prop_assert!(queued + size as u64 > capacity);
                    }
                    EnqueueResult::DroppedEarly => unreachable!("drop-tail"),
                }
            } else if let Some(got) = q.dequeue() {
                let (id, size) = expected.pop_front().expect("model agrees");
                let p = pool.take(got.handle);
                prop_assert_eq!(got.id, PacketId(id));
                prop_assert_eq!(got.size, size);
                prop_assert_eq!(p.id, PacketId(id));
            } else {
                prop_assert!(expected.is_empty());
            }
            let queued: u64 = expected.iter().map(|&(_, s)| s as u64).sum();
            prop_assert_eq!(q.queued_bytes(), queued);
            prop_assert!(q.queued_bytes() <= capacity);
            prop_assert_eq!(q.len(), expected.len());
        }
    }

    /// Long-run link throughput never exceeds the shaped rate (plus one
    /// burst), for any rate/size combination.
    #[test]
    fn token_bucket_honors_rate(
        rate_mbps in 1u64..200,
        pkt_size in 200u32..1500,
        n_packets in 50u32..300,
    ) {
        struct Blast {
            dst: NodeId,
            n: u32,
            size: u32,
        }
        impl csig_netsim::Agent for Blast {
            fn on_start(&mut self, ctx: &mut csig_netsim::Ctx) {
                for _ in 0..self.n {
                    ctx.send(csig_netsim::PacketSpec::background(FlowId(1), self.dst, self.size));
                }
            }
            fn on_packet(&mut self, _: &mut csig_netsim::Ctx, _: Packet) {}
            fn on_timer(&mut self, _: &mut csig_netsim::Ctx, _: u64) {}
        }
        let rate = rate_mbps * 1_000_000;
        let mut sim = Simulator::new(5);
        let src = sim.add_host(Box::new(Blast { dst: NodeId(1), n: n_packets, size: pkt_size }));
        let dst = sim.add_host(Box::new(SinkAgent::default()));
        // Buffer big enough to hold everything: no drops.
        sim.add_link(
            src,
            dst,
            LinkConfig::new(rate, SimDuration::ZERO)
                .buffer_bytes(n_packets as u64 * pkt_size as u64 + 3000),
        );
        sim.add_link(dst, src, LinkConfig::new(rate, SimDuration::ZERO));
        sim.compute_routes();
        sim.run();
        let sink: &SinkAgent = sim.agent(dst).unwrap();
        prop_assert_eq!(sink.packets, n_packets as u64, "packets lost");
        let bytes = n_packets as u64 * pkt_size as u64;
        // All bytes minus one initial burst must take at least their
        // serialization time at the shaped rate.
        let min_time = transmission_time(bytes.saturating_sub(5 * 1024), rate);
        prop_assert!(
            sim.now().as_nanos() + 1 >= min_time.as_nanos(),
            "finished in {} < {}",
            sim.now(),
            min_time
        );
    }

    /// End-to-end conservation: over a lossless path, every packet sent
    /// is delivered exactly once, regardless of topology depth.
    #[test]
    fn lossless_paths_conserve_packets(
        hops in 1usize..5,
        n_packets in 1u32..100,
        rate_mbps in 5u64..500,
    ) {
        struct Blast {
            dst: NodeId,
            n: u32,
        }
        impl csig_netsim::Agent for Blast {
            fn on_start(&mut self, ctx: &mut csig_netsim::Ctx) {
                for _ in 0..self.n {
                    ctx.send(csig_netsim::PacketSpec::background(FlowId(1), self.dst, 1000));
                }
            }
            fn on_packet(&mut self, _: &mut csig_netsim::Ctx, _: Packet) {}
            fn on_timer(&mut self, _: &mut csig_netsim::Ctx, _: u64) {}
        }
        let mut sim = Simulator::new(9);
        let dst_id = NodeId(1 + hops as u32);
        let src = sim.add_host(Box::new(Blast { dst: dst_id, n: n_packets }));
        let mut prev = src;
        for _ in 0..hops {
            let r = sim.add_router();
            sim.add_duplex_link(
                prev,
                r,
                LinkConfig::new(rate_mbps * 1_000_000, SimDuration::from_micros(100))
                    .buffer_bytes(1_000_000),
            );
            prev = r;
        }
        let dst = sim.add_host(Box::new(SinkAgent::default()));
        assert_eq!(dst, dst_id);
        sim.add_duplex_link(
            prev,
            dst,
            LinkConfig::new(rate_mbps * 1_000_000, SimDuration::from_micros(100))
                .buffer_bytes(1_000_000),
        );
        sim.compute_routes();
        sim.set_event_budget(10_000_000);
        sim.run();
        let sink: &SinkAgent = sim.agent(dst).unwrap();
        prop_assert_eq!(sink.packets, n_packets as u64);
        prop_assert_eq!(sink.bytes, n_packets as u64 * 1000);
    }
}
