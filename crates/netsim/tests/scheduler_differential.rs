//! Differential property test: the calendar-queue scheduler must pop the
//! exact `(time, seq, kind)` stream a reference binary heap produces,
//! under arbitrary interleaved push/pop workloads — including same-tick
//! ties (FIFO by seq) and far-future times that route through the
//! overflow tier.

use csig_netsim::{
    EventEntry, EventKind, EventQueue, LinkId, NodeId, SimDuration, SimTime, TimerToken,
};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem::discriminant;

/// Cycle through the hot-path event kinds so discriminants vary.
fn kind_for(i: usize) -> EventKind {
    match i % 3 {
        0 => EventKind::Start(NodeId(i as u32)),
        1 => EventKind::Timer(NodeId(i as u32), i as TimerToken),
        _ => EventKind::LinkService(LinkId(i as u32)),
    }
}

/// Map an op's class byte and raw entropy to a push offset that lands in
/// a specific scheduler tier.
fn offset_nanos(class: u8, raw: u32) -> u64 {
    match class {
        // Same-tick tie: must pop FIFO among equal times.
        0 => 0,
        // Sub-bucket: collides inside one calendar slot.
        1 | 2 => (raw % 1000) as u64,
        // Service/delivery horizon: the dominant regime.
        3..=8 => (raw % 2_000_000) as u64,
        // Beyond the wheel window: exercises the overflow heap and its
        // drain-back-into-the-wheel path.
        9 | 10 => 300_000_000 + (raw as u64 % 2_000_000_000),
        // Anywhere within 20 simulated seconds.
        _ => (raw as u64) % 20_000_000_000,
    }
}

proptest! {
    #[test]
    fn calendar_queue_matches_reference_heap(
        ops in proptest::collection::vec((0u8..4, 0u8..12, any::<u32>()), 1..600),
    ) {
        let mut q = EventQueue::new();
        let mut reference: BinaryHeap<Reverse<EventEntry>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = SimTime::ZERO;
        let mut i = 0usize;

        let check_pop = |q: &mut EventQueue,
                             reference: &mut BinaryHeap<Reverse<EventEntry>>,
                             now: &mut SimTime|
         -> bool {
            let got = q.pop();
            let want = reference.pop().map(|r| r.0);
            match (got, want) {
                (None, None) => false,
                (Some(g), Some(w)) => {
                    prop_assert_eq!(g.time, w.time);
                    prop_assert_eq!(g.seq, w.seq);
                    prop_assert!(
                        discriminant(&g.kind) == discriminant(&w.kind),
                        "kind mismatch at seq {}: {:?} vs {:?}",
                        g.seq,
                        g.kind,
                        w.kind
                    );
                    *now = g.time;
                    true
                }
                (g, w) => {
                    panic!("pop mismatch: {:?} vs {:?}", g, w);
                }
            }
        };

        for (op, class, raw) in ops {
            if op == 0 {
                check_pop(&mut q, &mut reference, &mut now);
            } else {
                let t = now + SimDuration::from_nanos(offset_nanos(class, raw));
                q.push(t, kind_for(i));
                reference.push(Reverse(EventEntry { time: t, seq, kind: kind_for(i) }));
                seq += 1;
                i += 1;
            }
            prop_assert_eq!(q.len(), reference.len());
        }
        // Drain both to the end: tails must agree too.
        while check_pop(&mut q, &mut reference, &mut now) {}
        prop_assert!(q.is_empty());
    }
}
