//! Zero-dependency observability layer for the congestion-signature
//! stack.
//!
//! Every component between a packet entering `csig-netsim` and a
//! verdict leaving `csig-core` registers into the two primitives here:
//!
//! * [`MetricsRegistry`] — named counters, high-water-mark gauges and
//!   fixed log-scale-bucket histograms. Updates are plain atomic
//!   operations (no lock on the write *or* read path; a mutex guards
//!   only registration, which happens once per metric). A
//!   [`Snapshot`] freezes every metric for rendering or comparison.
//! * [`TraceBuffer`] — a bounded ring of structured
//!   [`TraceEvent`]s (`time`, `scope`, `kind`, `fields`) with JSONL
//!   rendering, for after-the-fact inspection of what the measurement
//!   path actually did.
//!
//! # Determinism contract
//!
//! Metrics registered through [`MetricsRegistry::counter`],
//! [`MetricsRegistry::gauge`] and [`MetricsRegistry::histogram`] are
//! **deterministic**: fed from simulation state only, so the same seed
//! produces bit-identical values regardless of worker count or
//! wall-clock. Wall-clock profiling timers must instead be registered
//! through [`MetricsRegistry::timer`], which marks them
//! non-deterministic; [`Snapshot::deterministic`] strips them, and that
//! stripped snapshot is the cross-run correctness oracle the
//! integration tests compare.
//!
//! The crate deliberately depends on nothing (not even the vendored
//! `serde`): JSON is rendered by hand, and the only `std::time` use is
//! inside the explicit wall-clock timers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod metrics;
mod trace;

pub use metrics::{
    bucket_index, bucket_lower_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry,
    MetricValue, MetricsRegistry, Snapshot, TimerGuard, HISTOGRAM_BUCKETS,
};
pub use trace::{FieldValue, TraceBuffer, TraceEvent};

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes and control characters).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
