//! The metrics registry: counters, gauges, histograms, snapshots.

use crate::json_escape;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`. 64 power-of-two buckets
/// cover the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in (`0` for zero, else `floor(log2 v) + 1`).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (`0` for bucket 0, else
/// `2^(i-1)`).
///
/// # Panics
/// Panics if `i >= HISTOGRAM_BUCKETS`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Monotonically increasing counter. Cheap to clone (an `Arc` over one
/// atomic); increments are relaxed atomic adds.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// High-water-mark gauge: [`Gauge::record`] keeps the maximum of all
/// recorded values (queue depths, occupancy peaks).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Record an observation; the gauge keeps the maximum.
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current high-water mark.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Histogram over `u64` values with fixed log-scale (power-of-two)
/// buckets; also tracks count and sum for mean computation.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// Record one value.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Start a wall-clock scope; elapsed **microseconds** are recorded
    /// into this histogram when the returned guard drops.
    pub fn start_timer(&self) -> TimerGuard {
        TimerGuard {
            hist: self.clone(),
            started: Instant::now(),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Scoped wall-clock timer: records elapsed microseconds into its
/// histogram on drop. Obtained from [`Histogram::start_timer`].
#[derive(Debug)]
pub struct TimerGuard {
    hist: Histogram,
    started: Instant,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        self.hist.record(self.started.elapsed().as_micros() as u64);
    }
}

/// One registered metric plus its determinism marking.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Registered {
    metric: Metric,
    deterministic: bool,
}

/// Registry of named metrics shared by every instrumented component of
/// one scenario (or one process).
///
/// Cloning the registry clones a handle to the same underlying metrics.
/// Registration is idempotent: asking for an existing name returns a
/// handle to the same cell, so independent components may register the
/// same metric (e.g. `rtt.samples`) and their updates aggregate.
///
/// # Panics
/// Registering an existing name as a *different* metric kind (or with a
/// different determinism marking) panics — that is a programming error,
/// not a runtime condition.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Registered>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, deterministic: bool, make: impl FnOnce() -> Metric) -> Metric {
        let Ok(mut map) = self.inner.lock() else {
            unreachable!("metrics registry lock poisoned")
        };
        if let Some(existing) = map.get(name) {
            let fresh = make();
            assert_eq!(
                existing.metric.kind_name(),
                fresh.kind_name(),
                "metric `{name}` re-registered as a different kind"
            );
            assert_eq!(
                existing.deterministic, deterministic,
                "metric `{name}` re-registered with a different determinism marking"
            );
            return existing.metric.clone();
        }
        let metric = make();
        map.insert(
            name.to_string(),
            Registered {
                metric: metric.clone(),
                deterministic,
            },
        );
        metric
    }

    /// Register (or look up) a deterministic counter.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, true, || {
            Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or look up) a deterministic high-water-mark gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, true, || {
            Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or look up) a deterministic histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, true, || {
            Metric::Histogram(Histogram(Arc::new(HistCore::default())))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or look up) a **wall-clock** (non-deterministic) timing
    /// histogram, in microseconds. Excluded from
    /// [`Snapshot::deterministic`].
    pub fn timer(&self, name: &str) -> Histogram {
        match self.register(name, false, || {
            Metric::Histogram(Histogram(Arc::new(HistCore::default())))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Freeze every registered metric into a [`Snapshot`] (entries in
    /// name order, so equal registries render identical snapshots).
    pub fn snapshot(&self) -> Snapshot {
        let Ok(map) = self.inner.lock() else {
            unreachable!("metrics registry lock poisoned")
        };
        let entries = map
            .iter()
            .map(|(name, reg)| MetricEntry {
                name: name.clone(),
                deterministic: reg.deterministic,
                value: match &reg.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { entries }
    }

    /// Merge a snapshot into this registry: counters add, gauges take
    /// the max, histograms add bucket-wise. Used to aggregate
    /// per-scenario snapshots into a campaign-level registry. Timing
    /// entries keep their non-deterministic marking.
    pub fn absorb(&self, snap: &Snapshot) {
        for e in &snap.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    let c = if e.deterministic {
                        self.counter(&e.name)
                    } else {
                        unreachable!("counters are always deterministic")
                    };
                    c.add(*v);
                }
                MetricValue::Gauge(v) => self.gauge(&e.name).record(*v),
                MetricValue::Histogram(h) => {
                    let dst = if e.deterministic {
                        self.histogram(&e.name)
                    } else {
                        self.timer(&e.name)
                    };
                    for &(lower, n) in &h.buckets {
                        dst.0.buckets[bucket_index(lower)].fetch_add(n, Ordering::Relaxed);
                    }
                    dst.0.count.fetch_add(h.count, Ordering::Relaxed);
                    dst.0.sum.fetch_add(h.sum, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Frozen histogram state: only non-empty buckets, as
/// `(bucket lower bound, count)` in ascending bound order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// `(inclusive lower bound, count)` of each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One frozen metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// Registered name.
    pub name: String,
    /// Whether the metric is part of the deterministic contract.
    pub deterministic: bool,
    /// Frozen value.
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge high-water mark.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A frozen, name-ordered view of a registry — comparable, filterable
/// and renderable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Frozen metrics in ascending name order.
    pub entries: Vec<MetricEntry>,
}

impl Snapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry named `name`, if registered.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Counter value by name (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge high-water mark by name (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state by name (`None` if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The deterministic subset (wall-clock timers stripped) — the view
    /// that must be byte-identical across worker counts and reruns of
    /// the same seed.
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|e| e.deterministic)
                .cloned()
                .collect(),
        }
    }

    /// Render as a stable, human-diffable JSON object keyed by metric
    /// name. Counters/gauges render as integers; histograms as
    /// `{"count", "sum", "buckets": [[lower, n], …]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  \"{}\": ", json_escape(&e.name)));
            match &e.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"buckets\": [",
                        h.count, h.sum
                    ));
                    for (j, (lower, n)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{lower}, {n}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact() {
        // 0 is its own bucket; each power of two starts a new bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for k in 0..63u32 {
            let v = 1u64 << k;
            // A value exactly on a bucket edge opens the next bucket…
            assert_eq!(bucket_index(v), k as usize + 1, "v = 2^{k}");
            // …and the value just below it stays in the previous one.
            if v > 1 {
                assert_eq!(bucket_index(v - 1), k as usize, "v = 2^{k} - 1");
            }
            assert_eq!(bucket_lower_bound(k as usize + 1), v);
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_lower_bound(0), 0);
    }

    #[test]
    fn histogram_counts_land_in_declared_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        for v in [0, 1, 2, 3, 4, 1024, 1025] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 2 + 3 + 4 + 1024 + 1025);
        let snap = reg.snapshot();
        let hs = snap.histogram("h").unwrap();
        // Buckets: {0}, {1}, {2,3}, {4}, {1024,1025}.
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2, 2), (4, 1), (1024, 2)]);
        assert!((hs.mean() - h.mean()).abs() < 1e-12);
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same underlying cell");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.gauge("x")));
        assert!(r.is_err(), "kind mismatch must panic");
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter("z.last").add(5);
            reg.gauge("a.first").record(9);
            reg.gauge("a.first").record(3); // HWM keeps 9
            reg.histogram("m.mid").record(100);
            reg.snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        assert_eq!(s1.to_json(), s2.to_json());
        let names: Vec<&str> = s1.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"], "name-ordered");
        assert_eq!(s1.gauge("a.first"), Some(9));
        assert_eq!(s1.counter("z.last"), Some(5));
        assert_eq!(s1.counter("a.first"), None, "kind-checked accessor");
    }

    #[test]
    fn deterministic_subset_strips_timers() {
        let reg = MetricsRegistry::new();
        reg.counter("det").inc();
        let t = reg.timer("time.wall_us");
        t.record(123);
        let snap = reg.snapshot();
        assert_eq!(snap.entries.len(), 2);
        let det = snap.deterministic();
        assert_eq!(det.entries.len(), 1);
        assert_eq!(det.entries[0].name, "det");
        assert!(!snap.to_json().is_empty());
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let reg = MetricsRegistry::new();
        let t = reg.timer("time.scope_us");
        assert_eq!(t.count(), 0);
        {
            let _guard = t.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(t.count(), 1);
        assert!(t.sum() >= 1_000, "at least ~1ms recorded, got {}", t.sum());
    }

    #[test]
    fn absorb_merges_counters_gauges_histograms() {
        let mk = |c: u64, g: u64, h: u64| {
            let reg = MetricsRegistry::new();
            reg.counter("c").add(c);
            reg.gauge("g").record(g);
            reg.histogram("h").record(h);
            reg.timer("t").record(h);
            reg.snapshot()
        };
        let total = MetricsRegistry::new();
        total.absorb(&mk(1, 10, 4));
        total.absorb(&mk(2, 7, 5));
        let s = total.snapshot();
        assert_eq!(s.counter("c"), Some(3));
        assert_eq!(s.gauge("g"), Some(10));
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 9);
        assert_eq!(h.buckets, vec![(4, 2)]);
        // Timers stay non-deterministic through a merge.
        assert!(s.deterministic().histogram("t").is_none());
        assert_eq!(s.histogram("t").unwrap().count, 2);
    }

    #[test]
    fn updates_are_atomic_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
