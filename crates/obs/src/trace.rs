//! Structured trace events and the bounded ring buffer holding them.

use crate::json_escape;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A single trace-event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// String field.
    Str(String),
}

impl FieldValue {
    fn render_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    // JSON has no NaN/Inf; degrade to null.
                    out.push_str("null");
                }
            }
            FieldValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured trace event: where and when something happened, what
/// kind of thing it was, and a small bag of typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event time in simulation nanoseconds (deterministic — never
    /// wall-clock).
    pub time_ns: u64,
    /// Emitting component (`"sim"`, `"link"`, `"tcp"`, `"live"`,
    /// `"exec"`, …).
    pub scope: &'static str,
    /// Event kind within the scope (`"drop"`, `"fault"`, `"skip"`, …).
    pub kind: &'static str,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// Build an event with no fields.
    pub fn new(time_ns: u64, scope: &'static str, kind: &'static str) -> Self {
        Self {
            time_ns,
            scope,
            kind,
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Render as one JSONL line (no trailing newline). Key order is
    /// fixed — `time_ns`, `scope`, `kind`, then fields in insertion
    /// order — so identical events render identical lines.
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"time_ns\": {}, \"scope\": \"{}\", \"kind\": \"{}\"",
            self.time_ns,
            json_escape(self.scope),
            json_escape(self.kind)
        );
        for (key, value) in &self.fields {
            out.push_str(&format!(", \"{}\": ", json_escape(key)));
            value.render_json(&mut out);
        }
        out.push('}');
        out
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s. Cloning yields another
/// handle to the same ring, so every component of one scenario can push
/// into one shared buffer. When full, the **oldest** event is evicted
/// and the dropped count incremented — tracing never blocks or grows
/// without bound.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    inner: Arc<Mutex<Ring>>,
}

impl TraceBuffer {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A ring holding up to `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Ring {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// A ring with [`Self::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        let Ok(ring) = self.inner.lock() else {
            unreachable!("trace ring lock poisoned")
        };
        ring
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let mut ring = self.lock();
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Copy out the current contents, oldest first, without draining.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Remove and return all events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.lock().events.drain(..).collect()
    }

    /// Render the current contents as JSONL (one event per line,
    /// trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.lock().events.iter() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_renders_stable_jsonl() {
        let e = TraceEvent::new(42, "sim", "drop")
            .field("link", 3u64)
            .field("reason", "full")
            .field("delta", -1i64)
            .field("frac", 0.5f64);
        assert_eq!(
            e.to_json_line(),
            "{\"time_ns\": 42, \"scope\": \"sim\", \"kind\": \"drop\", \
             \"link\": 3, \"reason\": \"full\", \"delta\": -1, \"frac\": 0.5}"
        );
        let nan = TraceEvent::new(0, "s", "k").field("x", f64::NAN);
        assert!(nan.to_json_line().ends_with("\"x\": null}"));
    }

    #[test]
    fn ring_wraps_dropping_oldest() {
        let buf = TraceBuffer::with_capacity(3);
        for i in 0..5u64 {
            buf.push(TraceEvent::new(i, "t", "e"));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let times: Vec<u64> = buf.snapshot().iter().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![2, 3, 4], "oldest evicted first");
        // JSONL renders the survivors in order.
        let jsonl = buf.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.starts_with("{\"time_ns\": 2"));
        // Drain empties the ring but keeps the dropped count.
        let drained = buf.drain();
        assert_eq!(drained.len(), 3);
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 2);
    }

    #[test]
    fn handles_share_one_ring() {
        let a = TraceBuffer::with_capacity(8);
        let b = a.clone();
        a.push(TraceEvent::new(1, "x", "y"));
        b.push(TraceEvent::new(2, "x", "y"));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }
}
