//! Liveness soak: random path parameters, assert every transfer drains.
use csig_netsim::*;
use csig_tcp::*;
use rand::{Rng, SeedableRng};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x50A6);
    let mut stalls = 0;
    for i in 0..n {
        let size = rng.gen_range(5_000u64..800_000);
        let rate = rng.gen_range(1u64..80);
        let delay = rng.gen_range(1u64..80);
        let buf = rng.gen_range(5u64..200);
        let loss = rng.gen_range(0u32..50); // up to 5%
        let jitter = rng.gen_range(0u64..4);
        let cc = match i % 3 {
            0 => CcKind::NewReno,
            1 => CcKind::Cubic,
            _ => CcKind::BbrLite,
        };
        let sack = i % 2 == 0;
        let mut cfg = TcpConfig {
            cc,
            sack,
            ..TcpConfig::default()
        };
        cfg.delayed_ack = i % 5 == 0;
        let mut sim = Simulator::new(i);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            cfg.clone(),
            ServerSendPolicy::Fixed(size),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            cfg,
            ClientBehavior::Once,
            42,
        )));
        sim.add_duplex_link(
            server,
            client,
            LinkConfig::new(rate * 1_000_000, SimDuration::from_millis(delay))
                .buffer_ms(buf)
                .loss(loss as f64 / 1000.0)
                .jitter(SimDuration::from_millis(jitter)),
        );
        sim.compute_routes();
        sim.set_event_budget(200_000_000);
        let mut stop = sim.run_until(SimTime::from_secs(180));
        if stop == StopReason::Horizon {
            // Give pending (possibly stale) timers a chance to drain;
            // only a transfer still stuck afterwards is a real stall.
            stop = sim.run_until(SimTime::from_secs(600));
        }
        let got = sim.agent::<TcpClientAgent>(client).unwrap().total_bytes;
        if stop != StopReason::Drained || got != size {
            stalls += 1;
            println!("STALL i={i} size={size} rate={rate} delay={delay} buf={buf} loss={loss} jitter={jitter} cc={cc:?} sack={sack} stop={stop:?} got={got}");
            let s = sim.agent::<TcpServerAgent>(server).unwrap();
            match s.connection(FlowId(42)) {
                Some(c) => println!("  server: {}", c.debug_state()),
                None => println!("  server done: {}", s.completed.len()),
            }
            let cl = sim.agent::<TcpClientAgent>(client).unwrap();
            match cl.connection() {
                Some(c) => println!("  client: {}", c.debug_state()),
                None => println!("  client conn gone"),
            }
        }
    }
    println!("{n} runs, {stalls} stalls");
}
