//! BBR-lite: a window-based approximation of BBR (Cardwell et al. 2016).
//!
//! Real BBR is rate-paced; this simulator's senders are window-clocked,
//! so BbrLite approximates the model: it maintains a windowed-max
//! estimate of delivery rate and a windowed-min estimate of RTT and
//! sets `cwnd = gain × bandwidth × min_rtt`. Startup uses a 2/ln2 gain
//! and exits when bandwidth stops growing; a brief drain then returns
//! the queue to baseline. Loss does not reduce the window (the defining
//! property that §6 of the paper flags as a confounder for the
//! signature technique).

use super::{AckInfo, CongestionControl};
use csig_netsim::{SimDuration, SimTime};

/// High gain used while searching for the bottleneck bandwidth.
const STARTUP_GAIN: f64 = 2.885;
/// Gain used to drain the startup queue.
const DRAIN_GAIN: f64 = 0.5;
/// Steady-state cwnd gain over the estimated BDP.
const CRUISE_GAIN: f64 = 2.0;
/// Bandwidth filter window, in "rounds" (RTTs).
const BW_WINDOW_ROUNDS: usize = 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Startup,
    Drain,
    Cruise,
}

/// Simplified BBR state.
#[derive(Debug)]
pub struct BbrLite {
    mss: u64,
    cwnd: u64,
    phase: Phase,
    /// (round index, bytes/sec) samples for the max filter.
    bw_samples: Vec<(u64, f64)>,
    min_rtt: Option<SimDuration>,
    /// Delivered bytes in the current round.
    round_delivered: u64,
    round_start: Option<SimTime>,
    round_index: u64,
    /// Best bandwidth seen, for startup plateau detection.
    full_bw: f64,
    full_bw_rounds: u32,
    drain_round: u64,
}

impl BbrLite {
    /// New instance with `init_cwnd_segments × mss` window.
    pub fn new(mss: u32, init_cwnd_segments: u32) -> Self {
        let mss = mss as u64;
        BbrLite {
            mss,
            cwnd: mss * init_cwnd_segments as u64,
            phase: Phase::Startup,
            bw_samples: Vec::new(),
            min_rtt: None,
            round_delivered: 0,
            round_start: None,
            round_index: 0,
            full_bw: 0.0,
            full_bw_rounds: 0,
            drain_round: 0,
        }
    }

    fn max_bw(&self) -> f64 {
        self.bw_samples
            .iter()
            .map(|&(_, bw)| bw)
            .fold(0.0, f64::max)
    }

    fn bdp_bytes(&self) -> Option<f64> {
        let bw = self.max_bw();
        let rtt = self.min_rtt?;
        if bw <= 0.0 {
            return None;
        }
        Some(bw * rtt.as_secs_f64())
    }

    fn end_round(&mut self, now: SimTime) {
        let Some(start) = self.round_start else {
            unreachable!("end_round called with no round in progress")
        };
        let dur = now.saturating_since(start).as_secs_f64();
        if dur > 0.0 && self.round_delivered > 0 {
            let bw = self.round_delivered as f64 / dur;
            self.bw_samples.push((self.round_index, bw));
            let cutoff = self.round_index.saturating_sub(BW_WINDOW_ROUNDS as u64);
            self.bw_samples.retain(|&(r, _)| r >= cutoff);

            // Startup plateau detection: bandwidth grew < 25%?
            if self.phase == Phase::Startup {
                if bw > self.full_bw * 1.25 {
                    self.full_bw = bw.max(self.full_bw);
                    self.full_bw_rounds = 0;
                } else {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= 3 {
                        self.phase = Phase::Drain;
                        self.drain_round = self.round_index + 1;
                    }
                }
            } else if self.phase == Phase::Drain && self.round_index > self.drain_round {
                self.phase = Phase::Cruise;
            }
        }
        self.round_index += 1;
        self.round_start = Some(now);
        self.round_delivered = 0;
    }

    fn gain(&self) -> f64 {
        match self.phase {
            Phase::Startup => STARTUP_GAIN,
            Phase::Drain => DRAIN_GAIN,
            Phase::Cruise => CRUISE_GAIN,
        }
    }
}

impl CongestionControl for BbrLite {
    fn on_ack(&mut self, info: &AckInfo) {
        if let Some(rtt) = info.rtt_sample {
            self.min_rtt = Some(match self.min_rtt {
                Some(m) => m.min(rtt),
                None => rtt,
            });
        }
        self.round_delivered += info.bytes_acked;
        match (self.round_start, info.srtt) {
            (None, _) => self.round_start = Some(info.now),
            (Some(start), Some(srtt)) if info.now.saturating_since(start) >= srtt => {
                self.end_round(info.now);
            }
            _ => {}
        }
        if let Some(bdp) = self.bdp_bytes() {
            let target = (self.gain() * bdp) as u64;
            self.cwnd = target.max(4 * self.mss);
        } else {
            // No model yet: exponential probe like slow start.
            self.cwnd += info.bytes_acked.min(self.mss);
        }
    }

    fn on_fast_retransmit(&mut self, _flight: u64, _now: SimTime) {
        // BBR does not back off on isolated loss; cap mildly to avoid
        // pathological inflation while the model adapts.
        self.cwnd = self.cwnd.max(4 * self.mss);
    }

    fn on_retransmission_timeout(&mut self, _flight: u64, _now: SimTime) {
        // Conservative: restart the model.
        self.cwnd = 4 * self.mss;
        self.bw_samples.clear();
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.phase = Phase::Startup;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        u64::MAX / 2
    }

    fn in_slow_start(&self) -> bool {
        self.phase == Phase::Startup
    }

    fn name(&self) -> &'static str {
        "bbr-lite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1448;

    fn ack(now_ms: u64, bytes: u64, rtt_ms: u64) -> AckInfo {
        AckInfo {
            now: SimTime::from_millis(now_ms),
            bytes_acked: bytes,
            rtt_sample: Some(SimDuration::from_millis(rtt_ms)),
            srtt: Some(SimDuration::from_millis(rtt_ms)),
            flight: 0,
            in_recovery: false,
        }
    }

    #[test]
    fn grows_without_model_then_tracks_bdp() {
        let mut cc = BbrLite::new(MSS as u32, 10);
        assert!(cc.in_slow_start());
        // Feed a steady 10 Mbps, 40 ms path: 50 KB per 40 ms round.
        let mut t = 0;
        for _ in 0..100 {
            t += 4;
            cc.on_ack(&ack(t, 5_000, 40));
        }
        // BDP = 1.25e6 B/s × 0.04 s = 50_000 B; cwnd ≈ gain × BDP.
        let bdp = 50_000.0;
        let w = cc.cwnd() as f64;
        assert!(w > 0.4 * bdp, "cwnd {w} far below BDP {bdp}");
        assert!(w < 8.0 * bdp, "cwnd {w} absurdly above BDP {bdp}");
    }

    #[test]
    fn startup_exits_on_bandwidth_plateau() {
        let mut cc = BbrLite::new(MSS as u32, 10);
        let mut t = 0;
        // Constant delivery rate: bandwidth never grows, so startup
        // should end within a handful of rounds.
        for _ in 0..400 {
            t += 4;
            cc.on_ack(&ack(t, 5_000, 40));
        }
        assert!(!cc.in_slow_start(), "still in startup after 40 rounds");
    }

    #[test]
    fn loss_does_not_collapse_window() {
        let mut cc = BbrLite::new(MSS as u32, 10);
        let mut t = 0;
        for _ in 0..100 {
            t += 4;
            cc.on_ack(&ack(t, 5_000, 40));
        }
        let before = cc.cwnd();
        cc.on_fast_retransmit(before, SimTime::from_millis(t));
        assert_eq!(cc.cwnd(), before, "BBR-lite must ignore isolated loss");
    }

    #[test]
    fn timeout_restarts_model() {
        let mut cc = BbrLite::new(MSS as u32, 10);
        let mut t = 0;
        for _ in 0..100 {
            t += 4;
            cc.on_ack(&ack(t, 5_000, 40));
        }
        cc.on_retransmission_timeout(cc.cwnd(), SimTime::from_millis(t));
        assert_eq!(cc.cwnd(), 4 * MSS);
        assert!(cc.in_slow_start());
    }
}
