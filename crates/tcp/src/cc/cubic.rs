//! CUBIC congestion control (RFC 8312).
//!
//! Window growth in congestion avoidance follows the cubic function
//! `W(t) = C·(t − K)³ + W_max` anchored at the window before the last
//! loss, with a TCP-friendly floor so CUBIC never does worse than
//! Reno on short-RTT paths. Slow start and recovery entry/exit follow
//! the standard loss-based template.

use super::{AckInfo, CongestionControl};
use csig_netsim::SimTime;

/// RFC 8312 constants.
const C: f64 = 0.4;
const BETA: f64 = 0.7;

/// CUBIC state. Window arithmetic is done in MSS units internally.
#[derive(Debug)]
pub struct Cubic {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Window size (MSS) just before the last reduction.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Time offset at which W(t) crosses w_max again.
    k: f64,
    /// Reno-equivalent estimate for the TCP-friendly region.
    w_est: f64,
}

impl Cubic {
    /// New instance with `init_cwnd_segments × mss` window.
    pub fn new(mss: u32, init_cwnd_segments: u32) -> Self {
        let mss = mss as u64;
        Cubic {
            mss,
            cwnd: mss * init_cwnd_segments as u64,
            ssthresh: u64::MAX / 2,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
        }
    }

    fn cwnd_mss(&self) -> f64 {
        self.cwnd as f64 / self.mss as f64
    }

    fn enter_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        let w = self.cwnd_mss();
        if self.w_max < w {
            // Fast convergence off: anchor at current window.
            self.w_max = w;
        }
        self.k = ((self.w_max * (1.0 - BETA)) / C).cbrt();
        self.w_est = w;
    }

    fn reduce(&mut self, now: SimTime) {
        let w = self.cwnd_mss();
        self.w_max = w;
        let new = (w * BETA).max(2.0);
        self.cwnd = (new * self.mss as f64) as u64;
        self.ssthresh = self.cwnd.max(2 * self.mss);
        self.epoch_start = Some(now);
        self.k = ((self.w_max * (1.0 - BETA)) / C).cbrt();
        self.w_est = new;
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, info: &AckInfo) {
        if info.in_recovery {
            return;
        }
        if self.in_slow_start() {
            self.cwnd += info.bytes_acked.min(self.mss);
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(info.now);
        }
        let Some(epoch_start) = self.epoch_start else {
            unreachable!("epoch entered above")
        };
        let t = info.now.saturating_since(epoch_start).as_secs_f64();
        let target = C * (t - self.k).powi(3) + self.w_max;
        let w = self.cwnd_mss();
        // TCP-friendly Reno estimate: grows ~1 MSS per RTT.
        if info.srtt.is_some() {
            // Per-ACK increment ≈ friendly-rate share.
            self.w_est += (3.0 * (1.0 - BETA) / (1.0 + BETA))
                * (info.bytes_acked as f64 / self.mss as f64)
                / (w.max(1.0));
        }
        let goal = target.max(self.w_est);
        if goal > w {
            // Approach the target over roughly one RTT of ACKs.
            let incr = ((goal - w) / w).min(0.5) * (info.bytes_acked as f64 / self.mss as f64);
            self.cwnd += (incr * self.mss as f64) as u64;
        } else {
            // Plateau region: creep forward slowly.
            self.cwnd += (info.bytes_acked as f64 * 0.01) as u64;
        }
    }

    fn on_dupack_in_recovery(&mut self) {
        self.cwnd += self.mss;
    }

    fn on_partial_ack(&mut self, bytes_acked: u64) {
        self.cwnd = self.cwnd.saturating_sub(bytes_acked) + self.mss;
        self.cwnd = self.cwnd.max(self.mss);
    }

    fn on_fast_retransmit(&mut self, _flight: u64, now: SimTime) {
        self.reduce(now);
        // Dupack inflation entry, as with NewReno.
        self.cwnd = self.ssthresh + 3 * self.mss;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn on_retransmission_timeout(&mut self, _flight: u64, now: SimTime) {
        self.reduce(now);
        self.cwnd = self.mss;
        self.epoch_start = None;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_netsim::SimDuration;

    const MSS: u64 = 1448;

    fn ack_at(ms: u64) -> AckInfo {
        AckInfo {
            now: SimTime::from_millis(ms),
            bytes_acked: MSS,
            rtt_sample: Some(SimDuration::from_millis(40)),
            srtt: Some(SimDuration::from_millis(40)),
            flight: 50 * MSS,
            in_recovery: false,
        }
    }

    #[test]
    fn slow_start_grows_exponentially() {
        let mut cc = Cubic::new(MSS as u32, 10);
        let w0 = cc.cwnd();
        for _ in 0..10 {
            cc.on_ack(&ack_at(1));
        }
        assert_eq!(cc.cwnd(), w0 + 10 * MSS);
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut cc = Cubic::new(MSS as u32, 100);
        let w = cc.cwnd();
        cc.on_fast_retransmit(w, SimTime::from_millis(100));
        cc.on_recovery_exit();
        let expect = (w as f64 * BETA) as u64;
        let got = cc.cwnd();
        assert!(
            (got as f64 - expect as f64).abs() < 2.0 * MSS as f64,
            "got {got}, expect ~{expect}"
        );
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn cubic_growth_accelerates_past_k() {
        let mut cc = Cubic::new(MSS as u32, 100);
        cc.on_fast_retransmit(100 * MSS, SimTime::from_millis(0));
        cc.on_recovery_exit();
        // Feed ACKs over simulated time; record the window trajectory.
        // K = cbrt(w_max·(1−β)/C) = cbrt(100·0.3/0.4) ≈ 4.2 s: the window
        // must plateau near w_max and only exceed it well after K.
        let w_at = |cc: &Cubic| cc.cwnd() / MSS;
        let before = w_at(&cc) as i64;
        let mut early_growth = 0i64;
        for ms in (10..10_000).step_by(10) {
            cc.on_ack(&ack_at(ms));
            if ms == 500 {
                early_growth = w_at(&cc) as i64 - before;
            }
        }
        let late_growth = w_at(&cc) as i64 - before - early_growth;
        assert!(early_growth >= 0);
        assert!(late_growth > 0, "no late growth: {late_growth}");
        // Window eventually exceeds w_max again (cubic probing past K).
        assert!(w_at(&cc) > 100, "cwnd {} never re-probed", w_at(&cc));
    }

    #[test]
    fn timeout_resets_to_one_mss() {
        let mut cc = Cubic::new(MSS as u32, 64);
        cc.on_retransmission_timeout(64 * MSS, SimTime::from_millis(5));
        assert_eq!(cc.cwnd(), MSS);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn window_floor_is_two_mss_on_reduce() {
        let mut cc = Cubic::new(MSS as u32, 2);
        cc.on_fast_retransmit(2 * MSS, SimTime::from_millis(1));
        cc.on_recovery_exit();
        assert!(cc.cwnd() >= 2 * MSS);
    }
}
