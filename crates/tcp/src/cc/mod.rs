//! Congestion-control algorithms.
//!
//! The sender state machine delegates window management to a
//! [`CongestionControl`] implementation. Three are provided:
//!
//! * [`NewReno`](reno::NewReno) — the loss-based algorithm the paper's
//!   2014-era testbed effectively exercised, with classic slow start,
//!   AIMD congestion avoidance and NewReno recovery inflation.
//! * [`Cubic`](cubic::Cubic) — the Linux default since 2.6.19.
//! * [`BbrLite`](bbr::BbrLite) — a window-based approximation of BBR's
//!   model (max-bandwidth × min-RTT), included because §6 of the paper
//!   calls out latency-controlling TCPs as a potential confounder.

pub mod bbr;
pub mod cubic;
pub mod reno;

use csig_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Everything an algorithm may want to know about an arriving ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckInfo {
    /// Arrival time of the ACK.
    pub now: SimTime,
    /// Bytes newly acknowledged by this ACK.
    pub bytes_acked: u64,
    /// RTT sample attributable to this ACK (Karn-filtered).
    pub rtt_sample: Option<SimDuration>,
    /// Smoothed RTT after processing this sample.
    pub srtt: Option<SimDuration>,
    /// Bytes still in flight after this ACK.
    pub flight: u64,
    /// Whether the sender is in fast recovery.
    pub in_recovery: bool,
}

/// A pluggable congestion controller. All quantities are in bytes.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Process an ACK that advanced `snd_una` (not a duplicate).
    fn on_ack(&mut self, info: &AckInfo);

    /// A duplicate ACK arrived while already in recovery (NewReno
    /// window inflation). Default: no-op.
    fn on_dupack_in_recovery(&mut self) {}

    /// A partial ACK during recovery acknowledged `bytes_acked` new
    /// bytes (NewReno deflation). Default: no-op.
    fn on_partial_ack(&mut self, _bytes_acked: u64) {}

    /// Loss detected via triple duplicate ACK; `flight` is bytes
    /// outstanding at detection.
    fn on_fast_retransmit(&mut self, flight: u64, now: SimTime);

    /// Recovery completed (the recovery point was acknowledged).
    fn on_recovery_exit(&mut self) {}

    /// The retransmission timer fired.
    fn on_retransmission_timeout(&mut self, flight: u64, now: SimTime);

    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> u64;

    /// Is the algorithm in its exponential-growth phase?
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// Algorithm label.
    fn name(&self) -> &'static str;
}

/// Algorithm selector carried in `TcpConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CcKind {
    /// Classic NewReno.
    NewReno,
    /// CUBIC (RFC 8312).
    Cubic,
    /// Simplified BBR.
    BbrLite,
}

impl CcKind {
    /// Instantiate the algorithm with the given MSS and initial window
    /// (in segments).
    pub fn build(self, mss: u32, init_cwnd_segments: u32) -> Box<dyn CongestionControl> {
        match self {
            CcKind::NewReno => Box::new(reno::NewReno::new(mss, init_cwnd_segments)),
            CcKind::Cubic => Box::new(cubic::Cubic::new(mss, init_cwnd_segments)),
            CcKind::BbrLite => Box::new(bbr::BbrLite::new(mss, init_cwnd_segments)),
        }
    }

    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::NewReno => "newreno",
            CcKind::Cubic => "cubic",
            CcKind::BbrLite => "bbr-lite",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        for (kind, name) in [
            (CcKind::NewReno, "newreno"),
            (CcKind::Cubic, "cubic"),
            (CcKind::BbrLite, "bbr-lite"),
        ] {
            let cc = kind.build(1448, 10);
            assert_eq!(cc.name(), name);
            assert_eq!(kind.name(), name);
            assert_eq!(cc.cwnd(), 10 * 1448);
            assert!(cc.in_slow_start());
        }
    }
}
