//! NewReno congestion control (RFC 5681 + RFC 6582 window management).

use super::{AckInfo, CongestionControl};
use csig_netsim::SimTime;

/// Classic slow start / AIMD with NewReno fast-recovery inflation.
#[derive(Debug)]
pub struct NewReno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Fractional byte accumulator for congestion avoidance so small
    /// ACKs still make progress.
    ca_acc: u64,
}

impl NewReno {
    /// New instance with `init_cwnd_segments × mss` initial window and
    /// an effectively infinite initial threshold.
    pub fn new(mss: u32, init_cwnd_segments: u32) -> Self {
        let mss = mss as u64;
        NewReno {
            mss,
            cwnd: mss * init_cwnd_segments as u64,
            ssthresh: u64::MAX / 2,
            ca_acc: 0,
        }
    }

    fn halve_reference(&self, flight: u64) -> u64 {
        // RFC 5681 §3.1: ssthresh = max(FlightSize / 2, 2·SMSS).
        (flight / 2).max(2 * self.mss)
    }
}

impl CongestionControl for NewReno {
    fn on_ack(&mut self, info: &AckInfo) {
        if info.in_recovery {
            return; // partial-ACK handling adjusts the window instead
        }
        if self.in_slow_start() {
            // RFC 3465 appropriate byte counting, L=1.
            self.cwnd += info.bytes_acked.min(self.mss);
        } else {
            // Congestion avoidance: one MSS per window of ACKed data.
            self.ca_acc += info.bytes_acked;
            if self.ca_acc >= self.cwnd {
                self.ca_acc -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_dupack_in_recovery(&mut self) {
        // Window inflation: each dupack signals a departed segment.
        self.cwnd += self.mss;
    }

    fn on_partial_ack(&mut self, bytes_acked: u64) {
        // Deflate by the amount acknowledged, then add back one MSS
        // (RFC 6582 §3.2 step 5).
        self.cwnd = self.cwnd.saturating_sub(bytes_acked) + self.mss;
        self.cwnd = self.cwnd.max(self.mss);
    }

    fn on_fast_retransmit(&mut self, flight: u64, _now: SimTime) {
        self.ssthresh = self.halve_reference(flight);
        // Enter recovery inflated by the three dupacks that signalled loss.
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.ca_acc = 0;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn on_retransmission_timeout(&mut self, flight: u64, _now: SimTime) {
        self.ssthresh = self.halve_reference(flight);
        self.cwnd = self.mss;
        self.ca_acc = 0;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "newreno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_netsim::SimDuration;

    const MSS: u64 = 1448;

    fn ack(bytes: u64, flight: u64) -> AckInfo {
        AckInfo {
            now: SimTime::ZERO,
            bytes_acked: bytes,
            rtt_sample: Some(SimDuration::from_millis(50)),
            srtt: Some(SimDuration::from_millis(50)),
            flight,
            in_recovery: false,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new(MSS as u32, 10);
        let start = cc.cwnd();
        // ACK a full window: cwnd should roughly double.
        let mut acked = 0;
        while acked < start {
            cc.on_ack(&ack(MSS, start));
            acked += MSS;
        }
        assert!(cc.cwnd() >= 2 * start - MSS, "cwnd {}", cc.cwnd());
        assert!(cc.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_adds_one_mss_per_window() {
        let mut cc = NewReno::new(MSS as u32, 10);
        cc.on_fast_retransmit(20 * MSS, SimTime::ZERO);
        cc.on_recovery_exit();
        let w = cc.cwnd();
        assert_eq!(w, cc.ssthresh());
        assert!(!cc.in_slow_start());
        // ACK one window worth of bytes.
        let mut acked = 0;
        while acked < w {
            cc.on_ack(&ack(MSS, w));
            acked += MSS;
        }
        assert!(cc.cwnd() >= w + MSS, "{} vs {}", cc.cwnd(), w + MSS);
        assert!(cc.cwnd() <= w + 2 * MSS);
    }

    #[test]
    fn fast_retransmit_halves_flight() {
        let mut cc = NewReno::new(MSS as u32, 10);
        let flight = 100 * MSS;
        cc.on_fast_retransmit(flight, SimTime::ZERO);
        assert_eq!(cc.ssthresh(), 50 * MSS);
        assert_eq!(cc.cwnd(), 53 * MSS); // +3 dupack inflation
        cc.on_dupack_in_recovery();
        assert_eq!(cc.cwnd(), 54 * MSS);
        cc.on_recovery_exit();
        assert_eq!(cc.cwnd(), 50 * MSS);
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut cc = NewReno::new(MSS as u32, 10);
        cc.on_fast_retransmit(MSS, SimTime::ZERO);
        assert_eq!(cc.ssthresh(), 2 * MSS);
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut cc = NewReno::new(MSS as u32, 10);
        cc.on_retransmission_timeout(40 * MSS, SimTime::ZERO);
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), 20 * MSS);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn partial_ack_deflates() {
        let mut cc = NewReno::new(MSS as u32, 10);
        cc.on_fast_retransmit(100 * MSS, SimTime::ZERO);
        let before = cc.cwnd();
        cc.on_partial_ack(5 * MSS);
        assert_eq!(cc.cwnd(), before - 5 * MSS + MSS);
    }

    #[test]
    fn acks_ignored_while_in_recovery() {
        let mut cc = NewReno::new(MSS as u32, 10);
        cc.on_fast_retransmit(100 * MSS, SimTime::ZERO);
        let before = cc.cwnd();
        let mut info = ack(MSS, 50 * MSS);
        info.in_recovery = true;
        cc.on_ack(&info);
        assert_eq!(cc.cwnd(), before);
    }
}
