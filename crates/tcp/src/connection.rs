//! The TCP connection state machine.
//!
//! One [`TcpConnection`] instance is one endpoint of one connection. It
//! contains a send half (sequence tracking, retransmission, recovery,
//! RTO) and a receive half (reassembly, cumulative ACK generation),
//! delegates window management to a pluggable
//! [`CongestionControl`](crate::cc::CongestionControl), and exposes
//! Web100-style counters in [`ConnStats`].
//!
//! The model implements: three-way handshake (with handshake
//! retransmission), NewReno loss recovery (triple-dupack fast
//! retransmit, partial ACKs, window inflation/deflation), RFC 6298 RTO
//! with Karn's rule, SACK-based loss recovery (RFC 2018 blocks with a
//! scoreboard), go-back-N slow-start restart after a timeout,
//! receive-window flow control, FIN close, and optional delayed ACKs.
//! It does not implement timestamps, ECN, or urgent data.

use crate::cc::{AckInfo, CcKind, CongestionControl};
use crate::rtt::RttEstimator;
use crate::seq::{offset_of, wire_seq};
use csig_netsim::{
    Ctx, FlowId, NodeId, PacketSpec, SimDuration, SimTime, TcpFlags, TcpHeader, TimerToken, NO_SACK,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Endpoint configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes).
    pub mss: u32,
    /// Initial congestion window in segments (Linux default 10).
    pub init_cwnd_segments: u32,
    /// Receive window advertised to the peer, in bytes.
    pub recv_window: u32,
    /// RTO floor (Linux: 200 ms).
    pub min_rto: SimDuration,
    /// RTO ceiling.
    pub max_rto: SimDuration,
    /// Congestion-control algorithm.
    pub cc: CcKind,
    /// If true, ACK every second in-order segment (with a 40 ms flush
    /// timer); if false, ACK every segment (quickack).
    pub delayed_ack: bool,
    /// Record per-ACK RTT/cwnd sample series in [`ConnStats`]. Disable
    /// for bulk cross-traffic flows to save memory.
    pub record_samples: bool,
    /// Advertise and use selective acknowledgments (RFC 2018). The
    /// paper-era Linux stacks all negotiated SACK; disabling it is an
    /// ablation knob.
    pub sack: bool,
    /// Abort the connection after this many consecutive RTOs (Linux
    /// `tcp_retries2`-style cap), to bound pathological retry loops.
    pub max_consecutive_timeouts: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: csig_netsim::DEFAULT_MSS,
            init_cwnd_segments: 10,
            recv_window: 16 * 1024 * 1024,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            cc: CcKind::NewReno,
            delayed_ack: false,
            record_samples: true,
            sack: true,
            max_consecutive_timeouts: 15,
        }
    }
}

/// Connection lifecycle state (simplified: no TIME_WAIT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnState {
    /// Not yet opened.
    Closed,
    /// Passive endpoint waiting for a SYN.
    Listen,
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent, awaiting ACK.
    SynRcvd,
    /// Data may flow.
    Established,
    /// Both FINs exchanged and acknowledged.
    Done,
}

/// What limited the sender the last time it tried to transmit — the
/// Web100 "limited" triple the M-Lab pipeline filters on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendLimit {
    /// Congestion window was the binding constraint.
    Cwnd,
    /// Peer's receive window was the binding constraint.
    Rwnd,
    /// The application had nothing (more) to send.
    App,
}

/// Web100-style per-connection counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConnStats {
    /// When the three-way handshake completed.
    pub established_at: Option<SimTime>,
    /// When the connection reached [`ConnState::Done`].
    pub closed_at: Option<SimTime>,
    /// Payload bytes sent (first transmissions only).
    pub bytes_sent: u64,
    /// Payload bytes cumulatively acknowledged.
    pub bytes_acked: u64,
    /// Payload bytes received in order.
    pub bytes_received: u64,
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Total retransmitted segments.
    pub retransmits: u64,
    /// Fast-retransmit events (triple dupack).
    pub fast_retransmits: u64,
    /// Retransmission-timeout events.
    pub timeouts: u64,
    /// Time of the first retransmission of any kind — the paper's
    /// slow-start boundary.
    pub first_retransmit_at: Option<SimTime>,
    /// In-stack RTT samples `(ack arrival, rtt)` (Karn-filtered).
    pub rtt_samples: Vec<(SimTime, SimDuration)>,
    /// Congestion-window samples `(time, cwnd bytes)` at each change.
    pub cwnd_samples: Vec<(SimTime, u64)>,
    /// Time spent limited by \[cwnd, rwnd, app\] while established.
    pub limited: [SimDuration; 3],
}

impl ConnStats {
    /// Fraction of established lifetime spent congestion-limited.
    pub fn congestion_limited_fraction(&self) -> f64 {
        let total: f64 = self.limited.iter().map(|d| d.as_secs_f64()).sum();
        if total <= 0.0 {
            0.0
        } else {
            self.limited[0].as_secs_f64() / total
        }
    }

    /// Add this connection's counters into `reg` under the `tcp.*`
    /// namespace (`tcp.segments_sent`, `tcp.retransmits`,
    /// `tcp.fast_retransmits`, `tcp.timeouts`, `tcp.rtt_samples`,
    /// `tcp.bytes_acked`). Registration is idempotent, so exporting
    /// several connections into one registry aggregates them. All of
    /// these are deterministic functions of the simulation seed.
    pub fn export_metrics(&self, reg: &csig_obs::MetricsRegistry) {
        reg.counter("tcp.segments_sent").add(self.segments_sent);
        reg.counter("tcp.retransmits").add(self.retransmits);
        reg.counter("tcp.fast_retransmits")
            .add(self.fast_retransmits);
        reg.counter("tcp.timeouts").add(self.timeouts);
        reg.counter("tcp.rtt_samples")
            .add(self.rtt_samples.len() as u64);
        reg.counter("tcp.bytes_acked").add(self.bytes_acked);
    }
}

/// Metadata for one outstanding (sent, unacked) segment.
#[derive(Debug, Clone, Copy)]
struct SegMeta {
    /// Payload bytes.
    payload: u32,
    /// Sequence space consumed (payload, +1 if FIN).
    seq_len: u32,
    /// FIN flag on this segment.
    fin: bool,
    /// Last transmission time.
    sent_at: SimTime,
    /// Has this segment ever been retransmitted (Karn)?
    retx: bool,
    /// Selectively acknowledged by the peer.
    sacked: bool,
}

/// Local (low-32-bit) token value reserved for the delayed-ACK flush.
const DELACK_TOKEN: u64 = 1 << 31;
const DELACK_FLUSH: SimDuration = SimDuration::from_millis(40);
/// Local token value for retransmission-timer events. Staleness is
/// decided by comparing the fire time against `rto_deadline`, so a
/// single token value suffices.
const RTO_TOKEN: u64 = 1;

/// Extract the flow id a connection embedded in a timer token, so an
/// agent managing many connections can route the firing.
pub fn token_flow(token: TimerToken) -> FlowId {
    FlowId((token >> 32) as u32)
}

/// One endpoint of a TCP connection.
#[derive(Debug)]
pub struct TcpConnection {
    /// Flow id carried on every packet of this connection.
    pub flow: FlowId,
    /// The remote host.
    pub peer: NodeId,
    cfg: TcpConfig,
    state: ConnState,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,

    // ---- send half ----
    iss: u32,
    /// Lowest unacknowledged stream offset (0 = first payload byte).
    snd_una: u64,
    /// Next stream offset to transmit.
    snd_nxt: u64,
    /// Total payload the application will send; `None` = unbounded.
    app_limit: Option<u64>,
    /// Payload made available so far when streaming incrementally.
    app_avail: u64,
    fin_queued: bool,
    fin_sent: bool,
    fin_acked: bool,
    segs: BTreeMap<u64, SegMeta>,
    /// Highest stream offset ever transmitted (for go-back-N marking).
    high_water: u64,
    dupacks: u32,
    /// NewReno recovery point (`snd_nxt` at loss detection).
    recovery: Option<u64>,
    /// Bytes of outstanding segments selectively acknowledged (RFC 6675
    /// pipe accounting).
    sacked_bytes: u64,
    /// Highest stream offset covered by any SACK block (RFC 6675
    /// loss-inference boundary).
    highest_sacked: u64,
    consec_timeouts: u32,
    peer_rwnd: u64,
    rto_armed: bool,
    /// Absolute instant the armed retransmission timer expires. Re-arming
    /// on every ACK only moves this deadline; a physical scheduler event
    /// is pushed lazily (see [`TcpConnection::ensure_rto_event`]).
    rto_deadline: SimTime,
    /// Fire time of the earliest physical RTO event known to be pending,
    /// or `None` when no pending event covers the deadline.
    rto_timer_at: Option<SimTime>,

    // ---- receive half ----
    irs: u32,
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u64>,
    peer_fin_offset: Option<u64>,
    delack_count: u32,
    delack_timer_armed: bool,

    // ---- accounting ----
    last_limit: Option<(SendLimit, SimTime)>,
    /// Public counters.
    pub stats: ConnStats,
}

impl TcpConnection {
    /// A passive (listening) endpoint.
    pub fn listen(flow: FlowId, peer: NodeId, cfg: TcpConfig) -> Self {
        Self::new(flow, peer, cfg, ConnState::Listen)
    }

    /// An active endpoint; call [`TcpConnection::open`] to emit the SYN.
    pub fn active(flow: FlowId, peer: NodeId, cfg: TcpConfig) -> Self {
        Self::new(flow, peer, cfg, ConnState::Closed)
    }

    fn new(flow: FlowId, peer: NodeId, cfg: TcpConfig, state: ConnState) -> Self {
        let cc = cfg.cc.build(cfg.mss, cfg.init_cwnd_segments);
        let rtt = RttEstimator::new(cfg.min_rto, cfg.max_rto);
        // Deterministic ISS derived from flow id; uniqueness per flow is
        // all that matters in the simulator.
        let iss = 0x1000_0000u32.wrapping_add(flow.0.wrapping_mul(2_654_435_761));
        TcpConnection {
            flow,
            peer,
            cfg,
            state,
            cc,
            rtt,
            iss,
            snd_una: 0,
            snd_nxt: 0,
            app_limit: Some(0),
            app_avail: 0,
            fin_queued: false,
            fin_sent: false,
            fin_acked: false,
            segs: BTreeMap::new(),
            high_water: 0,
            dupacks: 0,
            recovery: None,
            sacked_bytes: 0,
            highest_sacked: 0,
            consec_timeouts: 0,
            peer_rwnd: 64 * 1024,
            rto_armed: false,
            rto_deadline: SimTime::ZERO,
            rto_timer_at: None,
            irs: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            peer_fin_offset: None,
            delack_count: 0,
            delack_timer_armed: false,
            last_limit: None,
            stats: ConnStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Handshake complete and not yet closed.
    pub fn is_established(&self) -> bool {
        self.state == ConnState::Established
    }

    /// Fully closed (both FINs acknowledged).
    pub fn is_done(&self) -> bool {
        self.state == ConnState::Done
    }

    /// The peer has finished sending (its FIN was consumed in order).
    pub fn peer_closed(&self) -> bool {
        matches!(self.peer_fin_offset, Some(f) if self.rcv_nxt >= f)
    }

    /// All queued application data (and FIN, if queued) acknowledged.
    pub fn send_complete(&self) -> bool {
        match self.app_limit {
            Some(limit) => self.snd_una >= limit && (!self.fin_queued || self.fin_acked),
            None => false,
        }
    }

    /// In-order payload bytes delivered so far.
    pub fn bytes_received(&self) -> u64 {
        self.rcv_nxt
            .min(self.peer_fin_offset.unwrap_or(self.rcv_nxt))
    }

    /// Diagnostic snapshot of sender-side state (debugging aid).
    pub fn debug_state(&self) -> String {
        format!(
            "state={:?} snd_una={} snd_nxt={} hw={} app_limit={:?} fin(q/s/a)={}{}{} segs={} dupacks={} recovery={:?} rto_armed={} rto={} peer_rwnd={} cwnd={} ssthresh={} rcv_nxt={} ooo={} peer_fin={:?}",
            self.state, self.snd_una, self.snd_nxt, self.high_water, self.app_limit,
            self.fin_queued as u8, self.fin_sent as u8, self.fin_acked as u8,
            self.segs.len(), self.dupacks, self.recovery, self.rto_armed, self.rtt.rto(),
            self.peer_rwnd, self.cc.cwnd(), self.cc.ssthresh(), self.rcv_nxt, self.ooo.len(),
            self.peer_fin_offset,
        )
    }

    /// Out-of-order ranges held by the receive half (debugging aid).
    pub fn debug_ooo(&self) -> Vec<(u64, u64)> {
        self.ooo.iter().map(|(&s, &e)| (s, e)).collect()
    }

    /// The RTT estimator (read-only).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// Whether the congestion controller is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cc.in_slow_start()
    }

    /// Queue `bytes` of application payload for transmission. May be
    /// called repeatedly; has no effect once the FIN is queued.
    pub fn send_data(&mut self, ctx: &mut Ctx, bytes: u64) {
        if self.fin_queued {
            return;
        }
        self.app_avail += bytes;
        if let Some(limit) = &mut self.app_limit {
            *limit += bytes;
        }
        self.try_send(ctx);
    }

    /// Switch to unbounded sending: the connection always has payload
    /// available (netperf-style) until [`TcpConnection::close`].
    pub fn send_unbounded(&mut self, ctx: &mut Ctx) {
        self.app_limit = None;
        self.try_send(ctx);
    }

    /// Queue a FIN after all currently queued data.
    pub fn close(&mut self, ctx: &mut Ctx) {
        if self.fin_queued {
            return;
        }
        // Freeze the limit where it stands for unbounded senders.
        let limit = self.app_limit.unwrap_or(self.snd_nxt.max(self.app_avail));
        self.app_limit = Some(limit);
        self.app_avail = self.app_avail.max(limit);
        self.fin_queued = true;
        self.try_send(ctx);
    }

    /// Abort the connection: send a RST to the peer and move to `Done`
    /// (the model of a client killing a fixed-duration test).
    pub fn abort(&mut self, ctx: &mut Ctx) {
        if matches!(self.state, ConnState::Done | ConnState::Closed) {
            self.state = ConnState::Done;
            return;
        }
        let hdr = TcpHeader {
            seq: wire_seq(self.iss.wrapping_add(1), self.snd_nxt),
            ack: wire_seq(self.irs.wrapping_add(1), self.rcv_nxt),
            flags: TcpFlags::RST | TcpFlags::ACK,
            payload_len: 0,
            window: 0,
            sack: NO_SACK,
        };
        ctx.send(PacketSpec::tcp(self.flow, self.peer, hdr));
        self.state = ConnState::Done;
        self.stats.closed_at.get_or_insert(ctx.now());
    }

    /// Actively open the connection (client side): emit the SYN.
    pub fn open(&mut self, ctx: &mut Ctx) {
        assert_eq!(self.state, ConnState::Closed, "open() on non-closed");
        self.state = ConnState::SynSent;
        self.emit_syn(ctx, false);
        self.arm_rto(ctx);
    }

    fn emit_syn(&mut self, ctx: &mut Ctx, with_ack: bool) {
        let flags = if with_ack {
            TcpFlags::SYN | TcpFlags::ACK
        } else {
            TcpFlags::SYN
        };
        let hdr = TcpHeader {
            seq: self.iss,
            ack: if with_ack {
                wire_seq(self.irs, self.rcv_nxt).wrapping_add(1)
            } else {
                0
            },
            flags,
            payload_len: 0,
            window: self.cfg.recv_window,
            sack: NO_SACK,
        };
        ctx.send(PacketSpec::tcp(self.flow, self.peer, hdr));
    }

    // ------------------------------------------------------------------
    // Segment input
    // ------------------------------------------------------------------

    /// Process an arriving segment addressed to this connection.
    pub fn on_segment(&mut self, ctx: &mut Ctx, hdr: &TcpHeader) {
        if hdr.flags.rst() {
            self.state = ConnState::Done;
            self.stats.closed_at.get_or_insert(ctx.now());
            return;
        }
        match self.state {
            ConnState::Closed | ConnState::Done => {}
            ConnState::Listen => {
                if hdr.flags.syn() && !hdr.flags.ack() {
                    self.irs = hdr.seq;
                    self.rcv_nxt = 0; // offsets start after the SYN
                    self.peer_rwnd = hdr.window as u64;
                    self.state = ConnState::SynRcvd;
                    self.emit_syn(ctx, true);
                    self.arm_rto(ctx);
                }
            }
            ConnState::SynSent => {
                if hdr.flags.syn() && hdr.flags.ack() {
                    self.irs = hdr.seq;
                    self.rcv_nxt = 0;
                    self.peer_rwnd = hdr.window as u64;
                    self.state = ConnState::Established;
                    self.stats.established_at = Some(ctx.now());
                    self.begin_limit_tracking(ctx.now());
                    self.send_ack_now(ctx);
                    self.disarm_rto();
                    self.try_send(ctx);
                }
            }
            ConnState::SynRcvd => {
                if hdr.flags.ack() {
                    self.state = ConnState::Established;
                    self.stats.established_at = Some(ctx.now());
                    self.begin_limit_tracking(ctx.now());
                    self.peer_rwnd = hdr.window as u64;
                    self.disarm_rto();
                    // The ACK may carry data; fall through to data path.
                    self.process_established(ctx, hdr);
                    self.try_send(ctx);
                }
            }
            ConnState::Established => {
                self.process_established(ctx, hdr);
            }
        }
        self.maybe_finish(ctx.now());
    }

    fn process_established(&mut self, ctx: &mut Ctx, hdr: &TcpHeader) {
        if hdr.flags.syn() {
            // A retransmitted SYN-ACK means our handshake ACK was lost:
            // answer with a duplicate ACK (challenge ACK) so the peer
            // can leave SYN-RCVD.
            self.send_ack_now(ctx);
            return;
        }
        if hdr.flags.ack() {
            self.process_ack(ctx, hdr);
        }
        if hdr.payload_len > 0 || hdr.flags.fin() {
            self.process_data(ctx, hdr);
        }
    }

    // ---- sender-side ACK handling -------------------------------------

    fn process_ack(&mut self, ctx: &mut Ctx, hdr: &TcpHeader) {
        self.peer_rwnd = hdr.window as u64;
        // Mark selectively acknowledged segments on the scoreboard.
        let mut sack_advanced = false;
        if self.cfg.sack {
            for block in hdr.sack.iter().flatten() {
                let start = offset_of(self.iss.wrapping_add(1), block.0, self.snd_una);
                let end = offset_of(self.iss.wrapping_add(1), block.1, start);
                if start < end {
                    let mut newly = 0u64;
                    for (_, meta) in self
                        .segs
                        .range_mut(start..end)
                        .filter(|(&s, m)| s + m.seq_len as u64 <= end && !m.sacked)
                    {
                        meta.sacked = true;
                        newly += meta.seq_len as u64;
                    }
                    self.sacked_bytes += newly;
                    if newly > 0 {
                        sack_advanced = true;
                    }
                    self.highest_sacked = self.highest_sacked.max(end);
                }
            }
        }
        // The peer's ack field acknowledges our sequence space: our wire
        // seq for offset k is iss + 1 + k (the +1 is our SYN).
        let ack_off = offset_of(self.iss.wrapping_add(1), hdr.ack, self.snd_una);
        if ack_off > self.high_water + 1 {
            return; // acks data we never sent; ignore
        }
        if ack_off > self.snd_una {
            // An ack one past the application limit can only cover the
            // FIN. Keyed on fin_queued (not fin_sent): after a
            // go-back-N reset, fin_sent may be false while the peer
            // already holds — and acknowledges — the earlier FIN.
            let fin_end = self.app_limit.map(|l| l + 1);
            let fin_extra = if self.fin_queued && Some(ack_off) == fin_end {
                1
            } else {
                0
            };
            let bytes_acked = (ack_off - self.snd_una).saturating_sub(fin_extra);
            self.stats.bytes_acked += bytes_acked;
            let data_off = ack_off - fin_extra;
            if fin_extra == 1 {
                self.fin_acked = true;
                self.fin_sent = true;
            }

            // Retire covered segments; pick up a Karn-valid RTT sample
            // from the newest fully-acked, never-retransmitted segment.
            let mut sample: Option<SimDuration> = None;
            let covered: Vec<u64> = self
                .segs
                .range(..data_off.saturating_add(1))
                .filter(|(&s, m)| s + m.seq_len as u64 <= ack_off)
                .map(|(&s, _)| s)
                .collect();
            for s in covered {
                let Some(meta) = self.segs.remove(&s) else {
                    unreachable!("key was just listed from this map")
                };
                if meta.sacked {
                    self.sacked_bytes -= meta.seq_len as u64;
                }
                if !meta.retx {
                    sample = Some(ctx.now().saturating_since(meta.sent_at));
                }
            }
            if let Some(rtt) = sample {
                self.rtt.on_sample(rtt);
                if self.cfg.record_samples {
                    self.stats.rtt_samples.push((ctx.now(), rtt));
                }
            }
            // snd_una lives in *data* offset space (excludes FIN's byte).
            debug_assert!(
                self.app_limit.is_none() || data_off <= self.app_limit.unwrap_or(u64::MAX),
                "snd_una {} beyond app_limit {:?} (ack_off {}, fin q/s/a {}{}{})",
                data_off,
                self.app_limit,
                ack_off,
                self.fin_queued as u8,
                self.fin_sent as u8,
                self.fin_acked as u8
            );
            self.snd_una = data_off;
            // After a go-back-N restart the cumulative ACK can jump past
            // the rolled-back send point; never let snd_nxt trail it.
            if self.snd_nxt < self.snd_una {
                self.snd_nxt = self.snd_una;
            }
            self.dupacks = 0;
            self.consec_timeouts = 0;

            match self.recovery {
                Some(recover) if ack_off >= recover => {
                    // Full ACK: leave recovery.
                    self.recovery = None;
                    self.cc.on_recovery_exit();
                    self.record_cwnd(ctx.now());
                }
                Some(_) => {
                    // Partial ACK: repair continues.
                    if self.cfg.sack {
                        self.repair_holes(ctx);
                    } else {
                        self.cc.on_partial_ack(bytes_acked);
                        self.retransmit_front(ctx, false);
                    }
                    self.record_cwnd(ctx.now());
                }
                None => {
                    let info = AckInfo {
                        now: ctx.now(),
                        bytes_acked,
                        rtt_sample: sample,
                        srtt: self.rtt.srtt(),
                        flight: self.flight(),
                        in_recovery: false,
                    };
                    self.cc.on_ack(&info);
                    self.record_cwnd(ctx.now());
                }
            }
            // Restart the RTO for remaining data, or disarm.
            if self.outstanding() {
                self.arm_rto(ctx);
            } else {
                self.disarm_rto();
            }
            self.try_send(ctx);
        } else if ack_off == self.snd_una && self.outstanding() && hdr.payload_len == 0 {
            // Duplicate ACK. With SACK, only ACKs that carry *new* SACK
            // information count towards DupThresh (RFC 6675 §4) —
            // otherwise the bare re-ACKs a receiver emits for spurious
            // go-back-N retransmissions would trigger bogus recoveries.
            if self.cfg.sack && !sack_advanced {
                return;
            }
            self.dupacks += 1;
            match self.recovery {
                Some(_) => {
                    if self.cfg.sack {
                        // RFC 6675-lite: no window inflation; repair
                        // holes while the pipe has room, then let
                        // try_send fill remaining room with new data.
                        self.repair_holes(ctx);
                    } else {
                        self.cc.on_dupack_in_recovery();
                    }
                    self.try_send(ctx);
                }
                None if self.dupacks == 3 => {
                    self.enter_fast_recovery(ctx);
                }
                None => {}
            }
        }
    }

    fn enter_fast_recovery(&mut self, ctx: &mut Ctx) {
        self.stats.fast_retransmits += 1;
        self.recovery = Some(self.snd_nxt + if self.fin_sent { 1 } else { 0 });
        let flight = self.flight();
        self.cc.on_fast_retransmit(flight, ctx.now());
        if self.cfg.sack {
            // Pipe accounting replaces NewReno's +3·MSS inflation.
            self.cc.on_recovery_exit(); // collapse cwnd to ssthresh
        }
        self.record_cwnd(ctx.now());
        // The classic third-dupack retransmission of the front segment.
        self.retransmit_front(ctx, true);
        self.arm_rto(ctx);
    }

    // ---- receiver-side data handling -----------------------------------

    fn process_data(&mut self, ctx: &mut Ctx, hdr: &TcpHeader) {
        // The peer's wire seq for its offset k is irs + 1 + k.
        let start = offset_of(self.irs.wrapping_add(1), hdr.seq, self.rcv_nxt);
        let payload_end = start + hdr.payload_len as u64;
        if hdr.flags.fin() {
            self.peer_fin_offset = Some(payload_end);
        }
        let in_order = start <= self.rcv_nxt;
        if payload_end > self.rcv_nxt && hdr.payload_len > 0 {
            self.insert_ooo(start.max(self.rcv_nxt), payload_end);
            self.drain_in_order();
        }
        // FIN consumes its own sequence position once payload is complete.
        let fin_consumed = match self.peer_fin_offset {
            Some(f) => self.rcv_nxt >= f,
            None => false,
        };
        // ACK policy: immediate on out-of-order or FIN; delayed-ack
        // coalescing otherwise when enabled.
        if !in_order || hdr.flags.fin() || fin_consumed || !self.cfg.delayed_ack {
            self.send_ack_now(ctx);
        } else {
            self.delack_count += 1;
            if self.delack_count >= 2 {
                self.send_ack_now(ctx);
            } else if !self.delack_timer_armed {
                self.delack_timer_armed = true;
                ctx.set_timer(DELACK_FLUSH, self.token(DELACK_TOKEN));
            }
        }
    }

    fn insert_ooo(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Merge [start, end) into the out-of-order interval set.
        let mut new_start = start;
        let mut new_end = end;
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=end)
            .filter(|(&_s, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let Some(e) = self.ooo.remove(&s) else {
                unreachable!("key was just listed from this map")
            };
            new_start = new_start.min(s);
            new_end = new_end.max(e);
        }
        self.ooo.insert(new_start, new_end);
    }

    fn drain_in_order(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                self.ooo.pop_first();
                if e > self.rcv_nxt {
                    self.stats.bytes_received += e - self.rcv_nxt;
                    self.rcv_nxt = e;
                }
            } else {
                break;
            }
        }
    }

    fn send_ack_now(&mut self, ctx: &mut Ctx) {
        self.delack_count = 0;
        let fin_bump = match self.peer_fin_offset {
            Some(f) if self.rcv_nxt >= f => 1u32,
            _ => 0,
        };
        let mut sack = NO_SACK;
        if self.cfg.sack {
            for (i, (&s, &e)) in self.ooo.iter().take(3).enumerate() {
                sack[i] = Some((
                    wire_seq(self.irs.wrapping_add(1), s),
                    wire_seq(self.irs.wrapping_add(1), e),
                ));
            }
        }
        let hdr = TcpHeader {
            seq: wire_seq(self.iss.wrapping_add(1), self.snd_nxt),
            ack: wire_seq(self.irs.wrapping_add(1), self.rcv_nxt).wrapping_add(fin_bump),
            flags: TcpFlags::ACK,
            payload_len: 0,
            window: self.adv_window(),
            sack,
        };
        ctx.send(PacketSpec::tcp(self.flow, self.peer, hdr));
        // Receiving the peer's FIN triggers our own close once our data
        // is out (the agents in this model never keep a half-open
        // connection deliberately).
        if fin_bump == 1 && !self.fin_queued {
            self.close(ctx);
        }
    }

    fn adv_window(&self) -> u32 {
        // Static large window: the simulated apps always drain instantly.
        self.cfg.recv_window
    }

    // ---- transmission ---------------------------------------------------

    /// Data available but not yet transmitted.
    fn untransmitted(&self) -> u64 {
        let limit = self.app_limit.unwrap_or(u64::MAX);
        limit.saturating_sub(self.snd_nxt)
    }

    fn flight(&self) -> u64 {
        debug_assert!(self.snd_nxt >= self.snd_una);
        self.snd_nxt.saturating_sub(self.snd_una)
    }

    /// RFC 6675 pipe: bytes believed to be in the network. SACKed bytes
    /// are out; unsacked bytes below the highest SACK are presumed lost
    /// (IsLost) and also out — unless they have been retransmitted, in
    /// which case the retransmission is in flight.
    fn pipe(&self) -> u64 {
        let mut pipe = 0u64;
        for (&off, meta) in &self.segs {
            if meta.sacked {
                continue;
            }
            if meta.retx || off >= self.highest_sacked {
                pipe += meta.seq_len as u64;
            }
        }
        pipe
    }

    /// Bytes counted against the window when deciding to transmit.
    fn effective_flight(&self) -> u64 {
        if self.cfg.sack && self.recovery.is_some() {
            self.pipe()
        } else {
            self.flight()
        }
    }

    fn outstanding(&self) -> bool {
        !self.segs.is_empty()
    }

    /// Transmit as much as the congestion and receive windows allow.
    fn try_send(&mut self, ctx: &mut Ctx) {
        if self.state != ConnState::Established {
            return;
        }
        let mut sent_any = false;
        loop {
            let wnd = self.cc.cwnd().min(self.peer_rwnd);
            let in_flight = self.effective_flight();
            let room = wnd.saturating_sub(in_flight);
            let want = self.untransmitted();
            if want == 0 {
                // Possibly emit the FIN.
                if self.fin_queued && !self.fin_sent {
                    self.emit_fin(ctx);
                    sent_any = true;
                }
                self.note_limit(SendLimit::App, ctx.now());
                break;
            }
            if room == 0 {
                let limit = if self.peer_rwnd < self.cc.cwnd() {
                    SendLimit::Rwnd
                } else {
                    SendLimit::Cwnd
                };
                self.note_limit(limit, ctx.now());
                break;
            }
            // Nagle-free: send a full or partial segment immediately.
            let len = want.min(self.cfg.mss as u64).min(room.max(1)) as u32;
            if (len as u64) < want && (room as u32) < len {
                // Avoid silly small segments when cwnd has sub-MSS room.
                self.note_limit(SendLimit::Cwnd, ctx.now());
                break;
            }
            let offset = self.snd_nxt;
            let is_rexmit = offset < self.high_water;
            let fin_here =
                self.fin_queued && offset + len as u64 == self.app_limit.unwrap_or(u64::MAX);
            let hdr = TcpHeader {
                seq: wire_seq(self.iss.wrapping_add(1), offset),
                ack: wire_seq(self.irs.wrapping_add(1), self.rcv_nxt),
                flags: if fin_here {
                    TcpFlags::ACK | TcpFlags::FIN
                } else {
                    TcpFlags::ACK
                },
                payload_len: len,
                window: self.adv_window(),
                sack: NO_SACK,
            };
            ctx.send(PacketSpec::tcp(self.flow, self.peer, hdr));
            self.segs.insert(
                offset,
                SegMeta {
                    payload: len,
                    seq_len: len + if fin_here { 1 } else { 0 },
                    fin: fin_here,
                    sent_at: ctx.now(),
                    retx: is_rexmit,
                    sacked: false,
                },
            );
            self.snd_nxt += len as u64;
            if is_rexmit {
                self.stats.retransmits += 1;
                self.stats.first_retransmit_at.get_or_insert(ctx.now());
                // A resend after go-back-N can straddle the old mark
                // (boundaries shift when snd_una is not an original
                // segment edge); the mark must still track the true
                // maximum or later acks get rejected as invalid.
                self.stats.bytes_sent += self.snd_nxt.saturating_sub(self.high_water);
            } else {
                self.stats.bytes_sent += len as u64;
            }
            self.high_water = self.high_water.max(self.snd_nxt);
            self.stats.segments_sent += 1;
            if fin_here {
                self.fin_sent = true;
            }
            sent_any = true;
        }
        // RFC 6298: start the timer when data goes out and none is
        // running; ACK processing restarts it separately.
        if sent_any && !self.rto_armed {
            self.arm_rto(ctx);
        }
    }

    fn emit_fin(&mut self, ctx: &mut Ctx) {
        let offset = self.snd_nxt;
        let hdr = TcpHeader {
            seq: wire_seq(self.iss.wrapping_add(1), offset),
            ack: wire_seq(self.irs.wrapping_add(1), self.rcv_nxt),
            flags: TcpFlags::ACK | TcpFlags::FIN,
            payload_len: 0,
            window: self.adv_window(),
            sack: NO_SACK,
        };
        ctx.send(PacketSpec::tcp(self.flow, self.peer, hdr));
        self.segs.insert(
            offset,
            SegMeta {
                payload: 0,
                seq_len: 1,
                fin: true,
                sent_at: ctx.now(),
                retx: self.snd_nxt < self.high_water,
                sacked: false,
            },
        );
        self.fin_sent = true;
        self.stats.segments_sent += 1;
    }

    /// Repair presumed-lost holes while the pipe has room (SACK mode).
    fn repair_holes(&mut self, ctx: &mut Ctx) {
        let cwnd = self.cc.cwnd();
        let mss = self.cfg.mss as u64;
        while self.pipe() + mss <= cwnd {
            if !self.retransmit_front(ctx, false) {
                break;
            }
        }
    }

    /// Retransmit the earliest outstanding segment that the peer has
    /// not selectively acknowledged and that this recovery has not
    /// already retransmitted (the RFC 6675-style "next hole"). Returns
    /// whether a segment was sent.
    fn retransmit_front(&mut self, ctx: &mut Ctx, timeout: bool) -> bool {
        let highest = self.highest_sacked;
        let blind_ok = !self.cfg.sack; // NewReno has no loss inference
        let (&offset, meta) = match self
            .segs
            .iter_mut()
            .find(|(&s, m)| !m.sacked && (timeout || (!m.retx && (blind_ok || s < highest))))
        {
            Some(kv) => kv,
            None => return false,
        };
        meta.retx = true;
        meta.sent_at = ctx.now();
        let payload = meta.payload;
        let fin = meta.fin;
        let hdr = TcpHeader {
            seq: wire_seq(self.iss.wrapping_add(1), offset),
            ack: wire_seq(self.irs.wrapping_add(1), self.rcv_nxt),
            flags: if fin {
                TcpFlags::ACK | TcpFlags::FIN
            } else {
                TcpFlags::ACK
            },
            payload_len: payload,
            window: self.adv_window(),
            sack: NO_SACK,
        };
        ctx.send(PacketSpec::tcp(self.flow, self.peer, hdr));
        self.stats.segments_sent += 1;
        self.stats.retransmits += 1;
        self.stats.first_retransmit_at.get_or_insert(ctx.now());
        true
    }

    // ---- timers ----------------------------------------------------------

    /// Tag a connection-local token with this connection's flow id.
    fn token(&self, local: u64) -> TimerToken {
        ((self.flow.0 as u64) << 32) | (local & 0xFFFF_FFFF)
    }

    fn arm_rto(&mut self, ctx: &mut Ctx) {
        self.rto_armed = true;
        self.rto_deadline = ctx.now() + self.rtt.rto();
        self.ensure_rto_event(ctx);
    }

    /// Push a physical timer event only if no pending event already fires
    /// at or before the current deadline. A covering event that fires
    /// early simply re-arms the remainder, so each RTO period costs one
    /// scheduler event instead of one per advancing ACK.
    fn ensure_rto_event(&mut self, ctx: &mut Ctx) {
        match self.rto_timer_at {
            Some(t) if t <= self.rto_deadline => {}
            _ => {
                ctx.set_timer(self.rto_deadline - ctx.now(), self.token(RTO_TOKEN));
                self.rto_timer_at = Some(self.rto_deadline);
            }
        }
    }

    fn disarm_rto(&mut self) {
        self.rto_armed = false;
    }

    /// Handle a timer token previously passed to `ctx.set_timer` by this
    /// connection.
    pub fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        let local = token & 0xFFFF_FFFF;
        if local == DELACK_TOKEN {
            self.delack_timer_armed = false;
            if self.delack_count > 0 && self.state == ConnState::Established {
                self.send_ack_now(ctx);
            }
            return;
        }
        if self.rto_timer_at == Some(ctx.now()) {
            self.rto_timer_at = None; // the tracked covering event fired
        }
        if !self.rto_armed {
            return;
        }
        if ctx.now() < self.rto_deadline {
            // The deadline moved forward since this event was scheduled;
            // cover the remainder and wait.
            self.ensure_rto_event(ctx);
            return;
        }
        match self.state {
            ConnState::SynSent => {
                self.consec_timeouts += 1;
                if self.consec_timeouts > self.cfg.max_consecutive_timeouts {
                    self.state = ConnState::Done;
                    self.stats.closed_at.get_or_insert(ctx.now());
                    return;
                }
                self.rtt.on_timeout();
                self.emit_syn(ctx, false);
                self.arm_rto(ctx);
            }
            ConnState::SynRcvd => {
                self.consec_timeouts += 1;
                if self.consec_timeouts > self.cfg.max_consecutive_timeouts {
                    self.state = ConnState::Done;
                    self.stats.closed_at.get_or_insert(ctx.now());
                    return;
                }
                self.rtt.on_timeout();
                self.emit_syn(ctx, true);
                self.arm_rto(ctx);
            }
            ConnState::Established => {
                if !self.outstanding() {
                    self.disarm_rto();
                    return;
                }
                self.stats.timeouts += 1;
                self.consec_timeouts += 1;
                if self.consec_timeouts > self.cfg.max_consecutive_timeouts {
                    // Give up, like a real stack exhausting tcp_retries2.
                    self.state = ConnState::Done;
                    self.stats.closed_at.get_or_insert(ctx.now());
                    return;
                }
                let flight = self.flight();
                self.cc.on_retransmission_timeout(flight, ctx.now());
                self.record_cwnd(ctx.now());
                self.rtt.on_timeout();
                self.recovery = None;
                self.dupacks = 0;
                // Go-back-N: roll the send point back to the loss and
                // resend in order under the collapsed window; segments
                // the receiver already holds are re-acked instantly.
                self.snd_nxt = self.snd_una;
                self.segs.clear();
                self.sacked_bytes = 0;
                self.highest_sacked = self.snd_una;
                if self.fin_sent && !self.fin_acked {
                    self.fin_sent = false;
                }
                self.try_send(ctx);
                self.arm_rto(ctx);
            }
            _ => {}
        }
    }

    // ---- bookkeeping ------------------------------------------------------

    fn record_cwnd(&mut self, now: SimTime) {
        if self.cfg.record_samples {
            self.stats.cwnd_samples.push((now, self.cc.cwnd()));
        }
    }

    fn begin_limit_tracking(&mut self, now: SimTime) {
        self.last_limit = Some((SendLimit::App, now));
    }

    fn note_limit(&mut self, limit: SendLimit, now: SimTime) {
        if let Some((prev, since)) = self.last_limit {
            let idx = match prev {
                SendLimit::Cwnd => 0,
                SendLimit::Rwnd => 1,
                SendLimit::App => 2,
            };
            self.stats.limited[idx] += now.saturating_since(since);
        }
        self.last_limit = Some((limit, now));
    }

    fn maybe_finish(&mut self, now: SimTime) {
        if self.state == ConnState::Established
            && self.fin_acked
            && self.peer_closed()
            && self.send_complete()
        {
            self.state = ConnState::Done;
            self.note_limit(SendLimit::App, now);
            self.stats.closed_at = Some(now);
        }
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;

    #[test]
    fn export_metrics_aggregates_across_connections() {
        let reg = csig_obs::MetricsRegistry::new();
        let a = ConnStats {
            segments_sent: 10,
            retransmits: 2,
            rtt_samples: vec![(SimTime::ZERO, SimDuration::from_millis(40)); 3],
            ..Default::default()
        };
        let b = ConnStats {
            segments_sent: 5,
            timeouts: 1,
            bytes_acked: 1000,
            ..Default::default()
        };
        a.export_metrics(&reg);
        b.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("tcp.segments_sent"), Some(15));
        assert_eq!(snap.counter("tcp.retransmits"), Some(2));
        assert_eq!(snap.counter("tcp.timeouts"), Some(1));
        assert_eq!(snap.counter("tcp.rtt_samples"), Some(3));
        assert_eq!(snap.counter("tcp.bytes_acked"), Some(1000));
    }
}
