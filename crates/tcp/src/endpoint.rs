//! Ready-made host agents: a multi-connection TCP server and a TCP
//! download client.
//!
//! These play the roles of the paper's testbed processes:
//!
//! * [`TcpServerAgent`] with [`ServerSendPolicy::Unbounded`] is the
//!   `netperf` server (Server 1) — it streams data downstream for the
//!   whole test.
//! * [`TcpServerAgent`] with [`ServerSendPolicy::Catalog`] is the HTTP
//!   object server behind `TGtrans` — each accepted connection receives
//!   a randomly sized object.
//! * [`TcpClientAgent`] is the downloading side: `netperf`'s client
//!   ([`ClientBehavior::Once`]) or the repeating fetchers of `TGtrans`
//!   and `TGcong` ([`ClientBehavior::Repeat`]).

use crate::connection::{token_flow, ConnStats, TcpConfig, TcpConnection};
use csig_netsim::{
    Agent, Ctx, FlowId, NodeId, Packet, PacketKind, PacketSpec, SimDuration, SimTime, TcpFlags,
    TcpHeader, TimerToken, NO_SACK,
};
use rand::Rng;
use std::collections::HashMap;

/// What a server sends on each accepted connection.
#[derive(Debug, Clone)]
pub enum ServerSendPolicy {
    /// Stream forever (netperf-style); the client or the simulation
    /// horizon ends the transfer.
    Unbounded,
    /// Send exactly this many payload bytes, then FIN.
    Fixed(u64),
    /// Pick an object size per connection: `(size_bytes, weight)` pairs
    /// sampled with probability proportional to weight.
    Catalog(Vec<(u64, f64)>),
}

impl ServerSendPolicy {
    /// The paper's `TGtrans` catalog: objects of 10 KB … 100 MB with
    /// fetch frequency inversely proportional to size.
    pub fn tgtrans_catalog() -> Self {
        let sizes = [10_000u64, 100_000, 1_000_000, 10_000_000, 100_000_000];
        ServerSendPolicy::Catalog(sizes.iter().map(|&s| (s, 1.0 / s as f64)).collect())
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> Option<u64> {
        match self {
            ServerSendPolicy::Unbounded => None,
            ServerSendPolicy::Fixed(n) => Some(*n),
            ServerSendPolicy::Catalog(items) => {
                assert!(!items.is_empty(), "empty catalog");
                let total: f64 = items.iter().map(|(_, w)| w).sum();
                let mut x = rng.gen::<f64>() * total;
                for (size, w) in items {
                    x -= w;
                    if x <= 0.0 {
                        return Some(*size);
                    }
                }
                items.last().map(|last| last.0)
            }
        }
    }
}

struct ServerConn {
    conn: TcpConnection,
    app_started: bool,
}

/// A passive TCP endpoint accepting any number of connections and
/// sending data per its [`ServerSendPolicy`].
pub struct TcpServerAgent {
    cfg: TcpConfig,
    policy: ServerSendPolicy,
    conns: HashMap<FlowId, ServerConn>,
    /// Stats of completed connections, in completion order.
    pub completed: Vec<(FlowId, ConnStats)>,
    /// Keep completed connection stats? Disable for heavy cross-traffic.
    pub keep_completed: bool,
}

impl TcpServerAgent {
    /// A server with the given endpoint config and send policy.
    pub fn new(cfg: TcpConfig, policy: ServerSendPolicy) -> Self {
        TcpServerAgent {
            cfg,
            policy,
            conns: HashMap::new(),
            completed: Vec::new(),
            keep_completed: true,
        }
    }

    /// Access a live connection (e.g. to read in-stack stats mid-run).
    pub fn connection(&self, flow: FlowId) -> Option<&TcpConnection> {
        self.conns.get(&flow).map(|s| &s.conn)
    }

    /// Number of currently live connections.
    pub fn live_connections(&self) -> usize {
        self.conns.len()
    }

    fn reap(&mut self, flow: FlowId) {
        if let Some(slot) = self.conns.get(&flow) {
            if slot.conn.is_done() {
                let Some(slot) = self.conns.remove(&flow) else {
                    unreachable!("presence checked above")
                };
                if self.keep_completed {
                    self.completed.push((flow, slot.conn.stats));
                }
            }
        }
    }
}

impl Agent for TcpServerAgent {
    fn on_start(&mut self, _ctx: &mut Ctx) {}

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        let hdr = match &pkt.kind {
            PacketKind::Tcp(h) => *h,
            _ => return, // background traffic is absorbed
        };
        let flow = pkt.flow;
        if !self.conns.contains_key(&flow) {
            if !hdr.flags.syn() {
                // Stray segment for a finished/unknown connection: answer
                // with RST so a retransmitting peer aborts instead of
                // retrying until its timeout cap (real stacks do this
                // for closed ports/connections).
                if !hdr.flags.rst() {
                    let rst = TcpHeader {
                        seq: hdr.ack,
                        ack: hdr.seq_end(),
                        flags: TcpFlags::RST | TcpFlags::ACK,
                        payload_len: 0,
                        window: 0,
                        sack: NO_SACK,
                    };
                    ctx.send(PacketSpec::tcp(flow, pkt.src, rst));
                }
                return;
            }
            self.conns.insert(
                flow,
                ServerConn {
                    conn: TcpConnection::listen(flow, pkt.src, self.cfg.clone()),
                    app_started: false,
                },
            );
        }
        let Some(slot) = self.conns.get_mut(&flow) else {
            unreachable!("inserted above when absent")
        };
        slot.conn.on_segment(ctx, &hdr);
        if slot.conn.is_established() && !slot.app_started {
            slot.app_started = true;
            match self.policy.sample(ctx.rng()) {
                None => slot.conn.send_unbounded(ctx),
                Some(n) => {
                    slot.conn.send_data(ctx, n);
                    slot.conn.close(ctx);
                }
            }
        }
        self.reap(flow);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        let flow = token_flow(token);
        if let Some(slot) = self.conns.get_mut(&flow) {
            slot.conn.on_timer(ctx, token);
        }
        self.reap(flow);
    }

    fn name(&self) -> &'static str {
        "tcp-server"
    }
}

/// How the client behaves across connections.
#[derive(Debug, Clone)]
pub enum ClientBehavior {
    /// Open one connection and receive until the transfer completes.
    Once,
    /// Re-connect after an exponentially distributed think time with
    /// the given mean; stop opening new connections at `until`.
    Repeat {
        /// Mean think time between fetches.
        mean_think: SimDuration,
        /// Do not start new fetches after this instant.
        until: SimTime,
    },
}

/// Outcome of one client fetch.
#[derive(Debug, Clone)]
pub struct FetchRecord {
    /// Flow id of this fetch.
    pub flow: FlowId,
    /// When the SYN went out.
    pub started: SimTime,
    /// When the transfer finished (connection done), if it did.
    pub finished: Option<SimTime>,
    /// In-order payload bytes received.
    pub bytes: u64,
}

// The client's "open next connection" alarm token is tagged with the
// top flow id of the client's block (`flow_base | 0xFFFF`), which no
// real connection uses as long as a client opens fewer than 65 535
// connections — so composite agents can route the timer back to the
// right client by flow block.

/// A downloading TCP client.
pub struct TcpClientAgent {
    server: NodeId,
    cfg: TcpConfig,
    behavior: ClientBehavior,
    /// Base flow id; connection `n` uses `flow_base + n`. Callers must
    /// space different clients' bases by 2¹⁶ (the top id of the block
    /// is reserved for the think-time alarm).
    flow_base: u32,
    next_conn: u32,
    conn: Option<TcpConnection>,
    /// Delay from agent start to the first connection attempt.
    start_delay: SimDuration,
    /// Abort each fetch this long after it starts (NDT-style
    /// fixed-duration tests against an unbounded sender).
    fetch_timeout: Option<SimDuration>,
    /// Per-fetch results.
    pub fetches: Vec<FetchRecord>,
    /// Total in-order payload bytes across all fetches.
    pub total_bytes: u64,
}

impl TcpClientAgent {
    /// A client downloading from `server`, labelling its connections
    /// starting at `flow_base`.
    pub fn new(server: NodeId, cfg: TcpConfig, behavior: ClientBehavior, flow_base: u32) -> Self {
        TcpClientAgent {
            server,
            cfg,
            behavior,
            flow_base,
            next_conn: 0,
            conn: None,
            start_delay: SimDuration::ZERO,
            fetch_timeout: None,
            fetches: Vec::new(),
            total_bytes: 0,
        }
    }

    /// Delay the first connection attempt by `delay` after agent start
    /// (lets several clients on one host start staggered).
    pub fn with_start_delay(mut self, delay: SimDuration) -> Self {
        self.start_delay = delay;
        self
    }

    /// Abort each fetch `timeout` after it starts, netperf/NDT style.
    pub fn with_fetch_timeout(mut self, timeout: SimDuration) -> Self {
        self.fetch_timeout = Some(timeout);
        self
    }

    /// The flow id of fetch `n`.
    pub fn flow_of(&self, n: u32) -> FlowId {
        FlowId(self.flow_base + n)
    }

    /// The currently open connection, if any.
    pub fn connection(&self) -> Option<&TcpConnection> {
        self.conn.as_ref()
    }

    fn open_next(&mut self, ctx: &mut Ctx) {
        if let ClientBehavior::Repeat { until, .. } = self.behavior {
            if ctx.now() > until {
                return;
            }
        }
        let flow = FlowId(self.flow_base + self.next_conn);
        self.next_conn += 1;
        let mut conn = TcpConnection::active(flow, self.server, self.cfg.clone());
        conn.open(ctx);
        if let Some(timeout) = self.fetch_timeout {
            ctx.set_timer(timeout, Self::timeout_token(flow));
        }
        self.fetches.push(FetchRecord {
            flow,
            started: ctx.now(),
            finished: None,
            bytes: 0,
        });
        self.conn = Some(conn);
    }

    /// The think-time alarm token for this client.
    fn next_fetch_token(&self) -> u64 {
        (((self.flow_base | 0xFFFF) as u64) << 32) | 0xFFFF_FFFF
    }

    /// The fetch-timeout alarm token for connection `flow`.
    fn timeout_token(flow: FlowId) -> u64 {
        ((flow.0 as u64) << 32) | 0xFFFF_FFFE
    }

    fn after_event(&mut self, ctx: &mut Ctx) {
        let done = match &self.conn {
            Some(c) => c.is_done(),
            None => false,
        };
        if !done {
            return;
        }
        let Some(conn) = self.conn.take() else {
            unreachable!("presence checked above")
        };
        let bytes = conn.bytes_received();
        self.total_bytes += bytes;
        if let Some(rec) = self.fetches.last_mut() {
            rec.finished = Some(ctx.now());
            rec.bytes = bytes;
        }
        if let ClientBehavior::Repeat { mean_think, until } = self.behavior {
            if ctx.now() <= until {
                let u: f64 = ctx.rng().gen::<f64>();
                let think = mean_think.mul_f64(-(1.0 - u).ln());
                ctx.set_timer(think, self.next_fetch_token());
            }
        }
    }
}

impl Agent for TcpClientAgent {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.conn.is_some() || !self.fetches.is_empty() {
            return; // already running
        }
        if self.start_delay.is_zero() {
            self.open_next(ctx);
        } else {
            let token = self.next_fetch_token();
            ctx.set_timer(self.start_delay, token);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        let hdr = match &pkt.kind {
            PacketKind::Tcp(h) => *h,
            _ => return,
        };
        match &mut self.conn {
            Some(conn) if conn.flow == pkt.flow => {
                conn.on_segment(ctx, &hdr);
            }
            _ => {
                // A segment for a finished fetch — e.g. a retransmitted
                // FIN whose original ack we sent got lost (there is no
                // TIME_WAIT in the model). Answer with RST so the peer
                // stops retrying, as a real closed socket would.
                if !hdr.flags.rst() {
                    let rst = TcpHeader {
                        seq: hdr.ack,
                        ack: hdr.seq_end(),
                        flags: TcpFlags::RST | TcpFlags::ACK,
                        payload_len: 0,
                        window: 0,
                        sack: NO_SACK,
                    };
                    ctx.send(PacketSpec::tcp(pkt.flow, pkt.src, rst));
                }
            }
        }
        self.after_event(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        if token == self.next_fetch_token() {
            self.open_next(ctx);
            return;
        }
        if let Some(conn) = &mut self.conn {
            if conn.flow == token_flow(token) {
                if token == Self::timeout_token(conn.flow) {
                    conn.abort(ctx);
                } else {
                    conn.on_timer(ctx, token);
                }
            }
        }
        self.after_event(ctx);
    }

    fn name(&self) -> &'static str {
        "tcp-client"
    }
}
