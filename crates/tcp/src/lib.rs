//! # csig-tcp — packet-level TCP endpoint model
//!
//! TCP endpoints for the `csig-netsim` simulator: the protocol
//! machinery whose slow-start dynamics produce the congestion
//! signatures the paper classifies.
//!
//! * [`seq`] — wrapping 32-bit sequence arithmetic and 64-bit
//!   stream-offset unwrapping.
//! * [`rtt`] — RFC 6298 RTT estimation / RTO computation.
//! * [`cc`] — congestion control: NewReno, CUBIC, and a BBR
//!   approximation.
//! * [`connection`] — the endpoint state machine (handshake, NewReno
//!   recovery, RTO, reassembly, delayed ACKs, FIN close) with
//!   Web100-style counters.
//! * [`endpoint`] — ready-made server/client host agents (netperf-style
//!   streaming, object catalogs, repeated fetchers).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cc;
pub mod connection;
pub mod endpoint;
pub mod rtt;
pub mod seq;

pub use cc::{AckInfo, CcKind, CongestionControl};
pub use connection::{token_flow, ConnState, ConnStats, TcpConfig, TcpConnection};
pub use endpoint::{ClientBehavior, FetchRecord, ServerSendPolicy, TcpClientAgent, TcpServerAgent};
pub use rtt::RttEstimator;

#[cfg(test)]
mod integration_tests {
    //! End-to-end connection tests over small simulated networks.

    use super::*;
    use csig_netsim::{
        Direction, FlowId, LinkConfig, PacketKind, SimDuration, SimTime, Simulator, StopReason,
    };

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// One client downloads `size` bytes from a server over a duplex
    /// link; returns (simulator, client node, server node).
    fn transfer_setup(
        size: u64,
        cfg: TcpConfig,
        link: LinkConfig,
        seed: u64,
    ) -> (Simulator, csig_netsim::NodeId, csig_netsim::NodeId) {
        let mut sim = Simulator::new(seed);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            cfg.clone(),
            ServerSendPolicy::Fixed(size),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            cfg,
            ClientBehavior::Once,
            1000,
        )));
        sim.add_duplex_link(server, client, link);
        sim.compute_routes();
        (sim, client, server)
    }

    #[test]
    fn small_transfer_completes() {
        let link = LinkConfig::new(10_000_000, ms(10));
        let (mut sim, client, _) = transfer_setup(50_000, TcpConfig::default(), link, 1);
        assert_eq!(sim.run(), StopReason::Drained);
        let c: &TcpClientAgent = sim.agent(client).unwrap();
        assert_eq!(c.total_bytes, 50_000);
        assert_eq!(c.fetches.len(), 1);
        assert!(c.fetches[0].finished.is_some());
    }

    #[test]
    fn large_transfer_through_small_buffer_retransmits_and_completes() {
        // 5 Mbps with a 20 ms buffer: slow start overshoots and drops.
        let link = LinkConfig::new(5_000_000, ms(20)).buffer_ms(20);
        let (mut sim, client, server) = transfer_setup(2_000_000, TcpConfig::default(), link, 2);
        sim.set_event_budget(50_000_000);
        assert_eq!(sim.run(), StopReason::Drained);
        let c: &TcpClientAgent = sim.agent(client).unwrap();
        assert_eq!(c.total_bytes, 2_000_000, "transfer incomplete");
        let s: &TcpServerAgent = sim.agent(server).unwrap();
        assert_eq!(s.completed.len(), 1);
        let stats = &s.completed[0].1;
        assert!(stats.retransmits > 0, "no losses on an overdriven buffer?");
        assert!(stats.first_retransmit_at.is_some());
        assert_eq!(stats.bytes_acked, 2_000_000);
    }

    #[test]
    fn transfer_survives_random_loss() {
        let link = LinkConfig::new(10_000_000, ms(15)).loss(0.01);
        let (mut sim, client, _) = transfer_setup(1_000_000, TcpConfig::default(), link, 3);
        sim.set_event_budget(50_000_000);
        assert_eq!(sim.run(), StopReason::Drained);
        let c: &TcpClientAgent = sim.agent(client).unwrap();
        assert_eq!(c.total_bytes, 1_000_000);
    }

    #[test]
    fn throughput_matches_bottleneck() {
        // 20 Mbps bottleneck, 20 ms RTT: a 5 MB transfer should take
        // roughly 5e6×8/20e6 = 2 s (plus slow start).
        let link = LinkConfig::new(20_000_000, ms(10)).buffer_ms(100);
        let (mut sim, client, _) = transfer_setup(5_000_000, TcpConfig::default(), link, 4);
        sim.set_event_budget(50_000_000);
        assert_eq!(sim.run(), StopReason::Drained);
        let c: &TcpClientAgent = sim.agent(client).unwrap();
        let done = c.fetches[0].finished.expect("finished");
        let secs = done.as_secs_f64();
        assert!(secs > 2.0, "faster than link capacity: {secs}s");
        assert!(secs < 4.0, "well below link capacity: {secs}s");
    }

    #[test]
    fn rtt_inflates_during_slow_start_on_idle_path() {
        // The core phenomenon: an idle bottleneck's buffer fills during
        // slow start, so in-stack RTT samples grow from ~40 ms towards
        // 40 ms + buffer depth (100 ms).
        let link = LinkConfig::new(20_000_000, ms(20)).buffer_ms(100);
        let (mut sim, _, server) = transfer_setup(6_000_000, TcpConfig::default(), link, 5);
        sim.set_event_budget(50_000_000);
        sim.run();
        let s: &TcpServerAgent = sim.agent(server).unwrap();
        let stats = &s.completed[0].1;
        let first_retx = stats.first_retransmit_at.expect("slow start ended in loss");
        let ss: Vec<_> = stats
            .rtt_samples
            .iter()
            .filter(|(t, _)| *t <= first_retx)
            .map(|(_, r)| r.as_millis_f64())
            .collect();
        assert!(ss.len() >= 10, "too few slow start samples: {}", ss.len());
        let min = ss.iter().cloned().fold(f64::MAX, f64::min);
        let max = ss.iter().cloned().fold(0.0, f64::max);
        assert!(min < 55.0, "baseline RTT inflated: {min}");
        assert!(max > 100.0, "buffer never filled: {max}");
    }

    #[test]
    fn handshake_syn_loss_is_retransmitted() {
        // 30% loss: the handshake will often lose a SYN; the connection
        // must still establish via RTO-driven SYN retransmission.
        let link = LinkConfig::new(10_000_000, ms(5)).loss(0.3);
        let (mut sim, client, _) = transfer_setup(10_000, TcpConfig::default(), link, 7);
        sim.set_event_budget(10_000_000);
        assert_eq!(sim.run(), StopReason::Drained);
        let c: &TcpClientAgent = sim.agent(client).unwrap();
        assert_eq!(c.total_bytes, 10_000);
    }

    #[test]
    fn repeat_client_fetches_multiple_objects() {
        let link = LinkConfig::new(50_000_000, ms(5));
        let mut sim = Simulator::new(11);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig::default(),
            ServerSendPolicy::Fixed(100_000),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Repeat {
                mean_think: ms(20),
                until: SimTime::from_secs(3),
            },
            0,
        )));
        sim.add_duplex_link(server, client, link);
        sim.compute_routes();
        sim.set_event_budget(50_000_000);
        sim.run_until(SimTime::from_secs(5));
        let c: &TcpClientAgent = sim.agent(client).unwrap();
        assert!(c.fetches.len() >= 5, "only {} fetches", c.fetches.len());
        assert!(c.total_bytes >= 5 * 100_000);
        // Distinct flow ids per fetch.
        let mut flows: Vec<u32> = c.fetches.iter().map(|f| f.flow.0).collect();
        flows.dedup();
        assert_eq!(flows.len(), c.fetches.len());
    }

    #[test]
    fn catalog_policy_samples_multiple_sizes() {
        let mut sim = Simulator::new(13);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig {
                record_samples: false,
                ..TcpConfig::default()
            },
            ServerSendPolicy::Catalog(vec![(10_000, 0.5), (50_000, 0.5)]),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Repeat {
                mean_think: ms(5),
                until: SimTime::from_secs(2),
            },
            0,
        )));
        sim.add_duplex_link(server, client, LinkConfig::new(100_000_000, ms(2)));
        sim.compute_routes();
        sim.run_until(SimTime::from_secs(3));
        let c: &TcpClientAgent = sim.agent(client).unwrap();
        let sizes: std::collections::HashSet<u64> = c
            .fetches
            .iter()
            .filter(|f| f.finished.is_some())
            .map(|f| f.bytes)
            .collect();
        assert!(
            sizes.contains(&10_000) && sizes.contains(&50_000),
            "{sizes:?}"
        );
    }

    #[test]
    fn unbounded_sender_is_congestion_limited() {
        let mut sim = Simulator::new(17);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig::default(),
            ServerSendPolicy::Unbounded,
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Once,
            0,
        )));
        sim.add_duplex_link(
            server,
            client,
            LinkConfig::new(10_000_000, ms(10)).buffer_ms(50),
        );
        sim.compute_routes();
        sim.set_event_budget(50_000_000);
        sim.run_until(SimTime::from_secs(3));
        let s: &TcpServerAgent = sim.agent(server).unwrap();
        let conn = s.connection(FlowId(0)).expect("live connection");
        assert!(conn.is_established());
        let frac = conn.stats.congestion_limited_fraction();
        assert!(frac > 0.9, "congestion-limited fraction only {frac}");
        // ~10 Mbps for ~3 s ≈ 3.75 MB acked.
        assert!(conn.stats.bytes_acked > 2_000_000);
        assert!(conn.stats.bytes_acked < 5_000_000);
    }

    #[test]
    fn receiver_limited_flows_are_flagged_as_such() {
        // A tiny advertised window throttles the sender well below the
        // link rate; Web100-style accounting must attribute the time to
        // the receive window, which is how the M-Lab pipeline filters
        // such flows out (they carry no congestion signature).
        let mut sim = Simulator::new(71);
        let server_cfg = TcpConfig::default();
        let client_cfg = TcpConfig {
            recv_window: 8 * 1448, // 8 segments
            ..TcpConfig::default()
        };
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            server_cfg,
            ServerSendPolicy::Unbounded,
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            client_cfg,
            ClientBehavior::Once,
            0,
        )));
        sim.add_duplex_link(
            server,
            client,
            LinkConfig::new(100_000_000, ms(20)).buffer_ms(100),
        );
        sim.compute_routes();
        sim.set_event_budget(50_000_000);
        sim.run_until(SimTime::from_secs(3));
        let s: &TcpServerAgent = sim.agent(server).unwrap();
        let conn = s.connection(FlowId(0)).expect("live");
        let stats = &conn.stats;
        let total: f64 = stats.limited.iter().map(|d| d.as_secs_f64()).sum();
        let rwnd_frac = stats.limited[1].as_secs_f64() / total;
        assert!(rwnd_frac > 0.9, "receiver-limited fraction {rwnd_frac}");
        assert!(stats.congestion_limited_fraction() < 0.1);
        // Throughput pinned at ~rwnd/RTT = 8×1448×8/0.04 ≈ 2.3 Mbps,
        // far below the 100 Mbps link.
        let mbps = stats.bytes_acked as f64 * 8.0 / 3.0 / 1e6;
        assert!(mbps < 5.0, "{mbps} Mbps is not receiver-limited");
    }

    #[test]
    fn delayed_ack_halves_ack_count() {
        let mk = |delayed: bool, seed: u64| {
            let cfg = TcpConfig {
                delayed_ack: delayed,
                ..TcpConfig::default()
            };
            let link = LinkConfig::new(20_000_000, ms(10));
            let (mut sim, client, _) = transfer_setup(500_000, cfg, link, seed);
            let cap = sim.attach_capture(client);
            sim.set_event_budget(20_000_000);
            sim.run();
            sim.capture(cap)
                .records
                .iter()
                .filter(|r| {
                    r.dir == Direction::Out
                        && matches!(&r.pkt.kind, PacketKind::Tcp(h) if h.payload_len == 0)
                })
                .count()
        };
        let eager = mk(false, 21);
        let delayed = mk(true, 21);
        assert!(
            (delayed as f64) < 0.7 * eager as f64,
            "delayed {delayed} vs eager {eager}"
        );
    }

    #[test]
    fn cubic_and_bbr_complete_transfers() {
        for (kind, seed) in [(CcKind::Cubic, 31), (CcKind::BbrLite, 32)] {
            let cfg = TcpConfig {
                cc: kind,
                ..TcpConfig::default()
            };
            let link = LinkConfig::new(10_000_000, ms(15)).buffer_ms(60);
            let (mut sim, client, _) = transfer_setup(1_500_000, cfg, link, seed);
            sim.set_event_budget(50_000_000);
            let stop = sim.run_until(SimTime::from_secs(30));
            assert_eq!(stop, StopReason::Drained, "{kind:?} did not finish");
            let c: &TcpClientAgent = sim.agent(client).unwrap();
            assert_eq!(c.total_bytes, 1_500_000, "{kind:?} lost data");
        }
    }

    #[test]
    fn two_flows_share_a_bottleneck() {
        let mut sim = Simulator::new(41);
        let cfg = TcpConfig::default();
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            cfg.clone(),
            ServerSendPolicy::Fixed(1_000_000),
        )));
        let r = sim.add_router();
        let c1 = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            cfg.clone(),
            ClientBehavior::Once,
            0x10000,
        )));
        let c2 = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            cfg,
            ClientBehavior::Once,
            0x20000,
        )));
        sim.add_duplex_link(server, r, LinkConfig::new(10_000_000, ms(5)).buffer_ms(100));
        sim.add_duplex_link(r, c1, LinkConfig::new(100_000_000, ms(5)));
        sim.add_duplex_link(r, c2, LinkConfig::new(100_000_000, ms(5)));
        sim.compute_routes();
        sim.set_event_budget(50_000_000);
        assert_eq!(sim.run(), StopReason::Drained);
        for node in [c1, c2] {
            let c: &TcpClientAgent = sim.agent(node).unwrap();
            assert_eq!(c.total_bytes, 1_000_000);
        }
    }
}
