//! RTT estimation and retransmission-timeout computation (RFC 6298).
//!
//! Mirrors the Linux-style estimator the paper's testbed ran: SRTT and
//! RTTVAR exponentially-weighted means with `RTO = SRTT + 4·RTTVAR`,
//! a configurable floor (Linux uses 200 ms), a 60 s ceiling, and
//! exponential backoff on timeout. Karn's rule (never sample a
//! retransmitted segment) is enforced by the caller.

use csig_netsim::SimDuration;
use serde::{Deserialize, Serialize};

/// RFC 6298 smoothing parameters.
const ALPHA: f64 = 1.0 / 8.0;
const BETA: f64 = 1.0 / 4.0;

/// RTT estimator state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    backoff: u32,
    min_rto: SimDuration,
    max_rto: SimDuration,
    /// Smallest raw sample ever observed (the flow's propagation floor).
    min_rtt: Option<SimDuration>,
    /// Latest raw sample.
    last_rtt: Option<SimDuration>,
    samples: u64,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(60))
    }
}

impl RttEstimator {
    /// Estimator with the given RTO floor and ceiling; initial RTO is
    /// 1 s per RFC 6298.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: SimDuration::from_secs(1),
            backoff: 0,
            min_rto,
            max_rto,
            min_rtt: None,
            last_rtt: None,
            samples: 0,
        }
    }

    /// Feed one RTT sample (from a never-retransmitted segment).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.samples += 1;
        self.last_rtt = Some(rtt);
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        });
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if rtt >= srtt { rtt - srtt } else { srtt - rtt };
                self.rttvar = SimDuration::from_nanos(
                    ((1.0 - BETA) * self.rttvar.as_nanos() as f64 + BETA * err.as_nanos() as f64)
                        .round() as u64,
                );
                self.srtt = Some(SimDuration::from_nanos(
                    ((1.0 - ALPHA) * srtt.as_nanos() as f64 + ALPHA * rtt.as_nanos() as f64).round()
                        as u64,
                ));
            }
        }
        self.backoff = 0;
        let Some(srtt) = self.srtt else {
            unreachable!("srtt set above on first sample")
        };
        let granularity = SimDuration::from_millis(1);
        self.rto = (srtt + (self.rttvar * 4).max(granularity)).clamp(self.min_rto, self.max_rto);
    }

    /// Double the RTO after a retransmission timeout (Karn backoff).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
        self.rto = self.rto.saturating_mul(2).min(self.max_rto);
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Smoothed RTT (`None` before the first sample).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// Minimum raw sample seen.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Most recent raw sample.
    pub fn last_rtt(&self) -> Option<SimDuration> {
        self.last_rtt
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.on_sample(ms(100));
        assert_eq!(e.srtt(), Some(ms(100)));
        assert_eq!(e.rttvar(), ms(50));
        // RTO = 100 + 4×50 = 300 ms.
        assert_eq!(e.rto(), ms(300));
        assert_eq!(e.min_rtt(), Some(ms(100)));
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn converges_on_stable_rtt() {
        let mut e = RttEstimator::default();
        for _ in 0..100 {
            e.on_sample(ms(50));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 50.0).abs() < 0.5);
        // Variance decays; RTO approaches the floor.
        assert_eq!(e.rto(), ms(200));
    }

    #[test]
    fn rto_floor_and_ceiling() {
        let mut e = RttEstimator::new(ms(200), SimDuration::from_secs(2));
        e.on_sample(ms(1)); // tiny RTT → raw RTO ~3 ms, floored at 200.
        assert_eq!(e.rto(), ms(200));
        for _ in 0..10 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(2));
    }

    #[test]
    fn timeout_backoff_doubles() {
        let mut e = RttEstimator::default();
        e.on_sample(ms(100));
        let r0 = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), r0 * 2);
        e.on_timeout();
        assert_eq!(e.rto(), r0 * 4);
        // A fresh sample resets the backoff.
        e.on_sample(ms(100));
        assert!(e.rto() <= r0 * 2);
    }

    #[test]
    fn min_rtt_tracks_floor() {
        let mut e = RttEstimator::default();
        e.on_sample(ms(80));
        e.on_sample(ms(20));
        e.on_sample(ms(120));
        assert_eq!(e.min_rtt(), Some(ms(20)));
        assert_eq!(e.last_rtt(), Some(ms(120)));
    }

    #[test]
    fn variance_rises_on_jittery_path() {
        let mut stable = RttEstimator::default();
        let mut jittery = RttEstimator::default();
        for i in 0..50 {
            stable.on_sample(ms(50));
            jittery.on_sample(ms(if i % 2 == 0 { 20 } else { 80 }));
        }
        assert!(jittery.rttvar() > stable.rttvar());
        assert!(jittery.rto() >= stable.rto());
    }
}
