//! 32-bit wrapping sequence-number arithmetic (RFC 793 style) and
//! unwrapping to 64-bit stream offsets.
//!
//! Internally the endpoint state machines work with `u64` stream
//! offsets (which never wrap in practice); the wire carries `u32`
//! sequence numbers. [`unwrap_near`] reconstructs the offset closest to
//! a reference, which is exact as long as reordering stays within half
//! the sequence space (2 GiB) — vastly more than any real window.

/// `a < b` in modular sequence space.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in modular sequence space.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// `a > b` in modular sequence space.
#[inline]
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// `a >= b` in modular sequence space.
#[inline]
pub fn seq_ge(a: u32, b: u32) -> bool {
    a == b || seq_gt(a, b)
}

/// Signed distance `a − b` interpreted in modular space.
#[inline]
pub fn seq_diff(a: u32, b: u32) -> i32 {
    a.wrapping_sub(b) as i32
}

/// Reconstruct the 64-bit stream offset whose low 32 bits equal `wire`
/// and which is closest to the reference offset `near`.
#[inline]
pub fn unwrap_near(wire: u32, near: u64) -> u64 {
    let base = near & !0xFFFF_FFFFu64;
    let low = near as u32;
    let delta = wire.wrapping_sub(low) as i32 as i64;
    let candidate = near as i64 + delta;
    let _ = base;
    if candidate < 0 {
        // Cannot go below zero; clamp to the non-negative unwrapping.
        (candidate + (1i64 << 32)) as u64
    } else {
        candidate as u64
    }
}

/// Wire sequence for a 64-bit offset given the connection's initial
/// sequence number.
#[inline]
pub fn wire_seq(iss: u32, offset: u64) -> u32 {
    iss.wrapping_add(offset as u32)
}

/// Offset for a wire sequence given the ISS and a nearby reference
/// offset (typically the highest offset seen so far).
#[inline]
pub fn offset_of(iss: u32, wire: u32, near: u64) -> u64 {
    unwrap_near(wire.wrapping_sub(iss), near)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_comparisons() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 2));
        assert!(seq_le(2, 2));
        assert!(seq_gt(2, 1));
        assert!(seq_ge(2, 2));
    }

    #[test]
    fn comparisons_across_wrap() {
        let a = u32::MAX - 5;
        let b = 5u32;
        assert!(seq_lt(a, b));
        assert!(seq_gt(b, a));
        assert_eq!(seq_diff(b, a), 11);
        assert_eq!(seq_diff(a, b), -11);
    }

    #[test]
    fn unwrap_near_identity_in_range() {
        assert_eq!(unwrap_near(100, 90), 100);
        assert_eq!(unwrap_near(100, 110), 100);
    }

    #[test]
    fn unwrap_near_across_wrap() {
        // Offset just past 2^32; wire has wrapped.
        let near = (1u64 << 32) + 10;
        assert_eq!(unwrap_near(12, near), (1u64 << 32) + 12);
        assert_eq!(unwrap_near(u32::MAX, near), (1u64 << 32) - 1);
    }

    #[test]
    fn wire_and_offset_roundtrip() {
        let iss = 0xDEAD_BEEF;
        for off in [0u64, 1, 1000, (1 << 32) - 1, 1 << 32, (1 << 33) + 7] {
            let w = wire_seq(iss, off);
            assert_eq!(offset_of(iss, w, off), off, "offset {off}");
            // Also resolves correctly from a slightly stale reference.
            assert_eq!(offset_of(iss, w, off.saturating_sub(5000)), off);
        }
    }

    proptest! {
        #[test]
        fn prop_unwrap_roundtrip(off in 0u64..(1 << 40), jitter in -100_000i64..100_000) {
            let iss = 12345u32;
            let near = (off as i64 + jitter).max(0) as u64;
            let w = wire_seq(iss, off);
            prop_assert_eq!(offset_of(iss, w, near), off);
        }

        #[test]
        fn prop_lt_antisymmetric(a: u32, b: u32) {
            if a != b {
                prop_assert!(seq_lt(a, b) != seq_lt(b, a) || seq_diff(a, b) == i32::MIN);
            } else {
                prop_assert!(!seq_lt(a, b) && !seq_lt(b, a));
            }
        }

        #[test]
        fn prop_diff_consistent_with_lt(a: u32, b: u32) {
            if seq_diff(a, b) > 0 {
                prop_assert!(seq_gt(a, b));
            } else if seq_diff(a, b) < 0 {
                prop_assert!(seq_lt(a, b));
            } else {
                prop_assert_eq!(a, b);
            }
        }
    }
}
