//! Property-based tests of the TCP state machine: data integrity and
//! liveness under randomized path adversity.

use csig_netsim::{LinkConfig, SimDuration, SimTime, Simulator, StopReason};
use csig_tcp::{
    CcKind, ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent,
};
use proptest::prelude::*;

/// Build and run a single transfer over one configurable duplex link.
#[allow(clippy::too_many_arguments)]
fn transfer(
    size: u64,
    rate_mbps: u64,
    delay_ms: u64,
    buffer_ms: u64,
    loss: f64,
    jitter_ms: u64,
    cc: CcKind,
    seed: u64,
) -> (u64, csig_tcp::ConnStats, StopReason) {
    let cfg = TcpConfig {
        cc,
        ..TcpConfig::default()
    };
    let mut sim = Simulator::new(seed);
    let server = sim.add_host(Box::new(TcpServerAgent::new(
        cfg.clone(),
        ServerSendPolicy::Fixed(size),
    )));
    let client = sim.add_host(Box::new(TcpClientAgent::new(
        server,
        cfg,
        ClientBehavior::Once,
        42,
    )));
    sim.add_duplex_link(
        server,
        client,
        LinkConfig::new(rate_mbps * 1_000_000, SimDuration::from_millis(delay_ms))
            .buffer_ms(buffer_ms)
            .loss(loss)
            .jitter(SimDuration::from_millis(jitter_ms)),
    );
    sim.compute_routes();
    sim.set_event_budget(100_000_000);
    let stop = sim.run_until(SimTime::from_secs(120));
    let received = sim
        .agent::<TcpClientAgent>(client)
        .expect("client agent")
        .total_bytes;
    let stats = sim
        .agent::<TcpServerAgent>(server)
        .expect("server agent")
        .completed
        .first()
        .map(|(_, s)| s.clone())
        .unwrap_or_default();
    (received, stats, stop)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every transfer over a lossy, jittery, buffer-constrained path
    /// completes with exactly the right byte count — TCP's contract.
    #[test]
    fn prop_transfers_are_reliable(
        size in 10_000u64..600_000,
        rate_mbps in 2u64..60,
        delay_ms in 1u64..60,
        buffer_ms in 10u64..150,
        loss_pm in 0u32..30,            // 0–3 % loss
        jitter_ms in 0u64..3,
        seed in 0u64..10_000,
    ) {
        let (received, stats, stop) = transfer(
            size,
            rate_mbps,
            delay_ms,
            buffer_ms,
            loss_pm as f64 / 1000.0,
            jitter_ms,
            CcKind::NewReno,
            seed,
        );
        prop_assert_eq!(stop, StopReason::Drained, "did not finish");
        prop_assert_eq!(received, size, "byte count mismatch");
        prop_assert_eq!(stats.bytes_acked, size);
        // Liveness bound: finished within the 120 s horizon already
        // implied by Drained; also sanity-check the counters.
        prop_assert!(stats.segments_sent >= size / 1448);
    }

    /// CUBIC obeys the same contract.
    #[test]
    fn prop_cubic_transfers_are_reliable(
        size in 10_000u64..300_000,
        loss_pm in 0u32..20,
        seed in 0u64..1000,
    ) {
        let (received, _, stop) = transfer(
            size, 20, 15, 60, loss_pm as f64 / 1000.0, 1, CcKind::Cubic, seed,
        );
        prop_assert_eq!(stop, StopReason::Drained);
        prop_assert_eq!(received, size);
    }

    /// The connection's own Karn-filtered samples never under-run the
    /// path's physical floor (2 × one-way delay).
    #[test]
    fn prop_rtt_samples_respect_physics(
        delay_ms in 2u64..50,
        seed in 0u64..500,
    ) {
        let (_, stats, stop) = transfer(
            200_000, 20, delay_ms, 80, 0.0, 0, CcKind::NewReno, seed,
        );
        prop_assert_eq!(stop, StopReason::Drained);
        let floor = 2.0 * delay_ms as f64;
        for (_, rtt) in &stats.rtt_samples {
            prop_assert!(
                rtt.as_millis_f64() >= floor - 0.001,
                "sample {} below physical floor {}",
                rtt.as_millis_f64(),
                floor
            );
        }
    }
}

/// Deterministic heavy-adversity regression: 5 % loss both ways plus
/// jitter. Not a proptest because it is slow; three fixed seeds.
#[test]
fn survives_heavy_loss() {
    for seed in [1u64, 2, 3] {
        let (received, stats, stop) = transfer(100_000, 10, 20, 60, 0.05, 2, CcKind::NewReno, seed);
        assert_eq!(stop, StopReason::Drained, "seed {seed} did not finish");
        assert_eq!(received, 100_000, "seed {seed} lost bytes");
        assert!(
            stats.retransmits > 0,
            "seed {seed}: no retransmissions at 5% loss?"
        );
    }
}
