//! Auxiliary host agents for the testbed: a composite agent hosting
//! several TCP clients on one node, and a constant-bit-rate background
//! source for scaled congestion runs.

use csig_netsim::{
    Agent, Ctx, FlowId, NodeId, Packet, PacketSpec, SimDuration, SimTime, TimerToken,
};
use csig_tcp::TcpClientAgent;

/// Hosts several [`TcpClientAgent`]s on a single node — the paper's
/// `TGcong` runs 100 concurrent `curl` processes on one box.
///
/// Children are distinguished by flow-id block: child `i` must be
/// constructed with `flow_base = block_base + (i << 16)`; packets and
/// timers are routed by `flow >> 16`.
pub struct MultiClientAgent {
    block_base: u32,
    clients: Vec<TcpClientAgent>,
}

impl MultiClientAgent {
    /// Wrap clients whose flow bases are `block_base + (i << 16)`.
    pub fn new(block_base: u32, clients: Vec<TcpClientAgent>) -> Self {
        assert!(block_base & 0xFFFF == 0, "block base must be 2^16-aligned");
        MultiClientAgent {
            block_base,
            clients,
        }
    }

    /// The flow base child `i` must use.
    pub fn child_flow_base(block_base: u32, i: usize) -> u32 {
        block_base + ((i as u32) << 16)
    }

    /// Access the child clients (e.g. to collect fetch records).
    pub fn clients(&self) -> &[TcpClientAgent] {
        &self.clients
    }

    fn child_of_flow(&mut self, flow: FlowId) -> Option<&mut TcpClientAgent> {
        let idx = (flow.0.wrapping_sub(self.block_base) >> 16) as usize;
        self.clients.get_mut(idx)
    }
}

impl Agent for MultiClientAgent {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for c in &mut self.clients {
            c.on_start(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        let flow = pkt.flow;
        if let Some(c) = self.child_of_flow(flow) {
            c.on_packet(ctx, pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        let flow = csig_tcp::token_flow(token);
        if let Some(c) = self.child_of_flow(flow) {
            c.on_timer(ctx, token);
        }
    }

    fn name(&self) -> &'static str {
        "multi-client"
    }
}

/// Constant-bit-rate background source: emits fixed-size opaque packets
/// towards `dst` at `rate_bps` between `start` and `stop`. Used by the
/// scaled congestion profile to keep an interconnect buffer pegged at a
/// fraction of the cost of 100 TCP flows.
pub struct CbrAgent {
    dst: NodeId,
    flow: FlowId,
    rate_bps: u64,
    packet_size: u32,
    start: SimTime,
    stop: SimTime,
    /// Packets emitted (for tests).
    pub sent: u64,
}

impl CbrAgent {
    /// A CBR source with the given schedule.
    pub fn new(dst: NodeId, flow: FlowId, rate_bps: u64, start: SimTime, stop: SimTime) -> Self {
        assert!(rate_bps > 0, "CBR rate must be positive");
        CbrAgent {
            dst,
            flow,
            rate_bps,
            packet_size: 1500,
            start,
            stop,
            sent: 0,
        }
    }

    fn interval(&self) -> SimDuration {
        csig_netsim::transmission_time(self.packet_size as u64, self.rate_bps)
    }
}

impl Agent for CbrAgent {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let delay = self.start.saturating_since(ctx.now());
        ctx.set_timer(delay, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx, _token: TimerToken) {
        if ctx.now() > self.stop {
            return;
        }
        ctx.send(PacketSpec::background(
            self.flow,
            self.dst,
            self.packet_size,
        ));
        self.sent += 1;
        ctx.set_timer(self.interval(), 0);
    }

    fn name(&self) -> &'static str {
        "cbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_netsim::{LinkConfig, SimDuration, Simulator, SinkAgent};
    use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpConfig, TcpServerAgent};

    #[test]
    fn cbr_emits_at_configured_rate() {
        let mut sim = Simulator::new(1);
        let src_node_placeholder = 0; // ids assigned in order below
        let _ = src_node_placeholder;
        let src = sim.add_host(Box::new(CbrAgent::new(
            csig_netsim::NodeId(1),
            FlowId(9),
            12_000_000, // 1500 B per ms
            SimTime::ZERO,
            SimTime::from_millis(100),
        )));
        let dst = sim.add_host(Box::new(SinkAgent::default()));
        sim.add_duplex_link(
            src,
            dst,
            LinkConfig::new(100_000_000, SimDuration::from_millis(1)),
        );
        sim.compute_routes();
        sim.run_until(SimTime::from_millis(200));
        let sink: &SinkAgent = sim.agent(dst).unwrap();
        // 12 Mbps for 100 ms = 150 kB = 100 packets (±1 boundary).
        assert!(
            (99..=101).contains(&sink.packets),
            "got {} packets",
            sink.packets
        );
        let cbr: &CbrAgent = sim.agent(src).unwrap();
        assert_eq!(cbr.sent, sink.packets);
    }

    #[test]
    fn multi_client_children_fetch_independently() {
        let mut sim = Simulator::new(2);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig {
                record_samples: false,
                ..TcpConfig::default()
            },
            ServerSendPolicy::Fixed(50_000),
        )));
        let base = 0x10000u32 * 16; // 2^16-aligned
        let clients: Vec<TcpClientAgent> = (0..3)
            .map(|i| {
                TcpClientAgent::new(
                    server,
                    TcpConfig::default(),
                    ClientBehavior::Once,
                    MultiClientAgent::child_flow_base(base, i),
                )
            })
            .collect();
        let multi = sim.add_host(Box::new(MultiClientAgent::new(base, clients)));
        sim.add_duplex_link(
            server,
            multi,
            LinkConfig::new(50_000_000, SimDuration::from_millis(5)),
        );
        sim.compute_routes();
        sim.set_event_budget(10_000_000);
        sim.run();
        let m: &MultiClientAgent = sim.agent(multi).unwrap();
        for c in m.clients() {
            assert_eq!(c.total_bytes, 50_000);
        }
    }

    #[test]
    #[should_panic]
    fn unaligned_block_base_rejected() {
        let _ = MultiClientAgent::new(5, vec![]);
    }
}
