//! Testbed experiment configuration: the knobs of §3.1 of the paper
//! plus a fidelity profile for affordable sweeps.

use csig_netsim::{FaultPlan, QueueKind, SimDuration};
use csig_tcp::TcpConfig;
use serde::{Deserialize, Serialize};

/// Emulated access-link parameters (the paper's `AccessLink` grid).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessParams {
    /// Shaped downstream rate in Mbit/s (paper: 10, 20, 50).
    pub rate_mbps: u64,
    /// I.i.d. loss in percent (paper: 0.02, 0.05).
    pub loss_pct: f64,
    /// Added one-way downstream latency in ms (paper: 20, 40).
    pub latency_ms: u64,
    /// Buffer depth in ms at the shaped rate (paper: 20, 50, 100).
    pub buffer_ms: u64,
}

impl AccessParams {
    /// The illustrative configuration of Figure 1: 20 Mbps, 100 ms
    /// buffer, 20 ms latency, zero loss.
    pub fn figure1() -> Self {
        AccessParams {
            rate_mbps: 20,
            loss_pct: 0.0,
            latency_ms: 20,
            buffer_ms: 100,
        }
    }

    /// Access rate in bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.rate_mbps * 1_000_000
    }
}

/// How (and whether) the interconnect link is congested.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CongestionMode {
    /// No interconnect congestion: the test flow saturates the access
    /// link (the self-induced scenario).
    None,
    /// `TGcong`: this many concurrent bulk TCP fetches saturate the
    /// interconnect (paper: 100; the multiplexing experiment uses 50,
    /// 20, 10).
    TgCong {
        /// Number of concurrent fetch loops.
        flows: u32,
    },
    /// Scaled substitute: a constant-bit-rate source at
    /// `utilization × interconnect rate` keeps the buffer pegged.
    Cbr {
        /// Offered load as a fraction of the interconnect rate (>1
        /// keeps the buffer full).
        utilization: f64,
    },
}

impl CongestionMode {
    /// Does this mode congest the interconnect at all?
    pub fn is_congested(&self) -> bool {
        !matches!(self, CongestionMode::None)
    }
}

/// Full configuration of one testbed throughput test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Access-link emulation parameters.
    pub access: AccessParams,
    /// Interconnect congestion scenario.
    pub congestion: CongestionMode,
    /// Extra bulk flows sharing the access link with the test flow
    /// (the §3.3 multiplexing experiment; paper: 0, 1, 2, 5).
    pub access_cross_flows: u32,
    /// Run the `TGtrans` transient cross-traffic generator (the paper
    /// runs it during *all* experiments).
    pub tgtrans: bool,
    /// netperf test duration (paper: 10 s).
    pub test_duration: SimDuration,
    /// Cross-traffic warm-up before the test starts.
    pub warmup: SimDuration,
    /// Interconnect shaped rate in Mbit/s (paper: 950).
    pub interconnect_mbps: u64,
    /// Interconnect buffer in ms (paper: 50).
    pub interconnect_buffer_ms: u64,
    /// Endpoint TCP configuration for the measured test flow
    /// (congestion control, SACK, …).
    pub tcp: TcpConfig,
    /// TCP configuration for cross traffic (`TGtrans`, `TGcong`,
    /// access cross flows). `None` = same as `tcp`. Ablations vary the
    /// test flow's stack while keeping the background realistic.
    pub cross_tcp: Option<TcpConfig>,
    /// Queue discipline of the access-link buffer.
    pub queue: QueueKind,
    /// Deterministic impairments on the downstream access link: bursty
    /// loss, reordering, duplication and mid-test link events (see
    /// [`FaultPlan`]). `None` (the default) leaves the link clean.
    pub access_fault: Option<FaultPlan>,
    /// Master simulation seed.
    pub seed: u64,
}

impl TestbedConfig {
    /// Full-fidelity paper profile: 950 Mbps interconnect, `TGcong`
    /// with 100 flows for external congestion, 10 s tests, 2 s warm-up.
    pub fn paper(access: AccessParams, seed: u64) -> Self {
        TestbedConfig {
            access,
            congestion: CongestionMode::None,
            access_cross_flows: 0,
            tgtrans: true,
            test_duration: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(2),
            interconnect_mbps: 950,
            interconnect_buffer_ms: 50,
            tcp: TcpConfig {
                record_samples: false,
                ..TcpConfig::default()
            },
            cross_tcp: None,
            queue: QueueKind::DropTail,
            access_fault: None,
            seed,
        }
    }

    /// Scaled profile: one-fifth interconnect rate, 40-flow `TGcong`,
    /// 4 s tests. The warm-up stays at the paper's 2 s: `TGcong` starts
    /// staggered across the first half of it, and every fetch loop
    /// needs ≥1 s of settling before the test or the late starters'
    /// own slow starts contaminate the interconnect queue. Preserves
    /// the access:interconnect rate ordering and all buffer-delay
    /// ratios at a fraction of the event cost; used by default in
    /// sweeps (documented in EXPERIMENTS.md).
    pub fn scaled(access: AccessParams, seed: u64) -> Self {
        TestbedConfig {
            test_duration: SimDuration::from_secs(4),
            interconnect_mbps: 190,
            ..TestbedConfig::paper(access, seed)
        }
    }

    /// Builder: set the congestion scenario.
    pub fn with_congestion(mut self, mode: CongestionMode) -> Self {
        self.congestion = mode;
        self
    }

    /// Builder: impair the downstream access link with a fault plan
    /// (no-op plans are dropped so clean runs stay byte-identical).
    pub fn with_access_fault(mut self, plan: FaultPlan) -> Self {
        self.access_fault = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Builder: use the profile's default external congestion — 100
    /// `TGcong` flows under the paper profile, 20 under the scaled one.
    pub fn externally_congested(self) -> Self {
        let flows = if self.interconnect_mbps >= 900 {
            100
        } else {
            40
        };
        self.with_congestion(CongestionMode::TgCong { flows })
    }

    /// The scenario's ground-truth class (what the experiment *tried*
    /// to create; labeling additionally applies the paper's
    /// throughput-threshold filter).
    pub fn intended_class(&self) -> csig_features::CongestionClass {
        if self.congestion.is_congested() {
            csig_features::CongestionClass::External
        } else {
            csig_features::CongestionClass::SelfInduced
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_in_scale_only() {
        let a = AccessParams::figure1();
        let p = TestbedConfig::paper(a, 1);
        let s = TestbedConfig::scaled(a, 1);
        assert_eq!(p.interconnect_mbps, 950);
        assert_eq!(s.interconnect_mbps, 190);
        assert_eq!(p.access, s.access);
        assert_eq!(p.interconnect_buffer_ms, s.interconnect_buffer_ms);
    }

    #[test]
    fn external_flow_counts_by_profile() {
        let a = AccessParams::figure1();
        let p = TestbedConfig::paper(a, 1).externally_congested();
        assert_eq!(p.congestion, CongestionMode::TgCong { flows: 100 });
        let s = TestbedConfig::scaled(a, 1).externally_congested();
        assert_eq!(s.congestion, CongestionMode::TgCong { flows: 40 });
    }

    #[test]
    fn intended_class_follows_mode() {
        use csig_features::CongestionClass;
        let a = AccessParams::figure1();
        assert_eq!(
            TestbedConfig::scaled(a, 1).intended_class(),
            CongestionClass::SelfInduced
        );
        assert_eq!(
            TestbedConfig::scaled(a, 1)
                .with_congestion(CongestionMode::Cbr { utilization: 1.05 })
                .intended_class(),
            CongestionClass::External
        );
    }

    #[test]
    fn access_rate_conversion() {
        assert_eq!(AccessParams::figure1().rate_bps(), 20_000_000);
    }
}
