//! The paper's parameter grid (§3.1) and sweep runner.

use crate::config::{AccessParams, TestbedConfig};
use crate::runner::{run_test, run_test_observed, TestResult};
use csig_exec::{Campaign, Executor, ProgressEvent, Scenario};
use csig_obs::{MetricsRegistry, Snapshot, TraceBuffer, TraceEvent};
use serde::{Deserialize, Serialize};

/// Canonical §3.1 grid axes. Every grid in the workspace is built from
/// these values; do not restate the literals elsewhere.
pub mod axes {
    /// Access-link rates, Mbit/s.
    pub const RATES_MBPS: [u64; 3] = [10, 20, 50];
    /// Random-loss rates, percent.
    pub const LOSSES_PCT: [f64; 2] = [0.02, 0.05];
    /// Added last-mile latencies, ms.
    pub const LATENCIES_MS: [u64; 2] = [20, 40];
    /// Access buffer depths, ms.
    pub const BUFFERS_MS: [u64; 3] = [20, 50, 100];
}

/// The §3.1 access-link grid: rate {10, 20, 50} Mbps × loss
/// {0.02, 0.05} % × latency {20, 40} ms × buffer {20, 50, 100} ms.
pub fn paper_grid() -> Vec<AccessParams> {
    let mut grid = Vec::new();
    for &rate_mbps in &axes::RATES_MBPS {
        for &loss_pct in &axes::LOSSES_PCT {
            for &latency_ms in &axes::LATENCIES_MS {
                for &buffer_ms in &axes::BUFFERS_MS {
                    grid.push(AccessParams {
                        rate_mbps,
                        loss_pct,
                        latency_ms,
                        buffer_ms,
                    });
                }
            }
        }
    }
    grid
}

/// A compact grid for quick runs and tests: the first loss/latency
/// point of the paper axes, over all rates and buffers.
pub fn small_grid() -> Vec<AccessParams> {
    let mut grid = Vec::new();
    for &rate_mbps in &axes::RATES_MBPS {
        for &buffer_ms in &axes::BUFFERS_MS {
            grid.push(AccessParams {
                rate_mbps,
                loss_pct: axes::LOSSES_PCT[0],
                latency_ms: axes::LATENCIES_MS[0],
                buffer_ms,
            });
        }
    }
    grid
}

/// Fidelity of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// Full paper settings (expensive).
    Paper,
    /// Scaled settings (default; see `TestbedConfig::scaled`).
    Scaled,
}

impl Profile {
    /// The testbed configuration for one grid point at this fidelity.
    pub fn config(&self, access: AccessParams, seed: u64) -> TestbedConfig {
        match self {
            Profile::Paper => TestbedConfig::paper(access, seed),
            Profile::Scaled => TestbedConfig::scaled(access, seed),
        }
    }
}

/// One sweep cell — a grid point in one congestion scenario — as a
/// self-contained [`Scenario`].
#[derive(Debug, Clone, Copy)]
pub struct SweepScenario {
    /// The access-link grid point.
    pub access: AccessParams,
    /// Run with an externally congested interconnect?
    pub external: bool,
    /// Fidelity profile.
    pub profile: Profile,
}

impl SweepScenario {
    /// The testbed configuration this cell runs.
    fn config(&self, seed: u64) -> TestbedConfig {
        let mut cfg = self.profile.config(self.access, seed);
        if self.external {
            cfg = cfg.externally_congested();
        }
        cfg
    }

    /// Run this cell with a **fresh per-scenario** metrics registry and
    /// trace buffer, returning the measurement together with the
    /// scenario's metrics snapshot and trace events.
    ///
    /// Creating the registry inside the scenario — rather than sharing
    /// one across workers — is what makes campaign-level metrics
    /// jobs-invariant: each scenario's counters depend only on its own
    /// seed, and the executor returns artifacts in submission order, so
    /// merged snapshots are byte-identical at any `--jobs`.
    pub fn run_observed(&self, seed: u64) -> (TestResult, Snapshot, Vec<TraceEvent>) {
        let reg = MetricsRegistry::new();
        let trace = TraceBuffer::new();
        let result = run_test_observed(&self.config(seed), &reg, Some(trace.clone()));
        let events = trace.drain();
        (result, reg.snapshot(), events)
    }
}

impl Scenario for SweepScenario {
    type Artifact = TestResult;

    fn run(&self, seed: u64) -> TestResult {
        run_test(&self.config(seed))
    }
}

/// [`SweepScenario`] wrapper whose artifact carries the per-scenario
/// observability alongside the measurement. Used by the `fig*` binaries
/// when `--metrics-out`/`--trace-out` is requested.
#[derive(Debug, Clone, Copy)]
pub struct ObservedSweepScenario(pub SweepScenario);

impl Scenario for ObservedSweepScenario {
    type Artifact = (TestResult, Snapshot, Vec<TraceEvent>);

    fn run(&self, seed: u64) -> Self::Artifact {
        self.0.run_observed(seed)
    }
}

/// Sweep specification.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Access-link grid points.
    pub grid: Vec<AccessParams>,
    /// Repetitions per grid point per scenario (paper: 50).
    pub reps: u32,
    /// Fidelity profile.
    pub profile: Profile,
    /// Base seed; every test derives its own stream from it.
    pub seed: u64,
}

impl Sweep {
    /// The default scaled sweep over the full paper grid.
    pub fn scaled(reps: u32, seed: u64) -> Self {
        Sweep {
            grid: paper_grid(),
            reps,
            profile: Profile::Scaled,
            seed,
        }
    }

    /// Total number of tests this sweep runs (both scenarios).
    pub fn total_tests(&self) -> usize {
        self.grid.len() * self.reps as usize * 2
    }

    /// The sweep as an executable campaign. Scenario order (and thus
    /// each scenario's derived seed) is grid point × rep ×
    /// {self-induced, external} — the same 1-based tag scheme the
    /// original inline loop used, so per-test results are unchanged.
    pub fn campaign(&self) -> Campaign<SweepScenario> {
        let mut campaign = Campaign::new(self.seed);
        for &access in &self.grid {
            for _rep in 0..self.reps {
                for external in [false, true] {
                    campaign.push(SweepScenario {
                        access,
                        external,
                        profile: self.profile,
                    });
                }
            }
        }
        campaign
    }

    /// Run the sweep sequentially. Calls `progress(done, total)` after
    /// each test.
    pub fn run<F: FnMut(usize, usize)>(&self, mut progress: F) -> Vec<TestResult> {
        Executor::sequential().run_with_progress(&self.campaign(), |e| progress(e.done, e.total))
    }

    /// Run the sweep on `jobs` workers (`0` = one per core). Results
    /// are byte-identical to [`Sweep::run`] for any worker count.
    pub fn run_jobs<F: FnMut(ProgressEvent)>(&self, jobs: usize, progress: F) -> Vec<TestResult> {
        self.run_with(&Executor::new(jobs), progress)
    }

    /// Run the sweep on a caller-configured executor (worker count,
    /// per-scenario deadline, …).
    pub fn run_with<F: FnMut(ProgressEvent)>(
        &self,
        exec: &Executor,
        progress: F,
    ) -> Vec<TestResult> {
        exec.run_with_progress(&self.campaign(), progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_36_points() {
        let g = paper_grid();
        assert_eq!(g.len(), 36);
        // All distinct.
        let set: std::collections::HashSet<String> = g.iter().map(|a| format!("{a:?}")).collect();
        assert_eq!(set.len(), 36);
    }

    #[test]
    fn small_grid_subset_of_paper_grid_values() {
        let g = small_grid();
        assert_eq!(g.len(), 9);
        for a in g {
            assert!(axes::RATES_MBPS.contains(&a.rate_mbps));
            assert!(axes::BUFFERS_MS.contains(&a.buffer_ms));
            assert!(axes::LOSSES_PCT.contains(&a.loss_pct));
            assert!(axes::LATENCIES_MS.contains(&a.latency_ms));
        }
    }

    #[test]
    fn sweep_counts() {
        let s = Sweep {
            grid: small_grid(),
            reps: 3,
            profile: Profile::Scaled,
            seed: 1,
        };
        assert_eq!(s.total_tests(), 54);
        assert_eq!(s.campaign().len(), 54);
    }

    #[test]
    fn campaign_seeds_match_the_legacy_tag_scheme() {
        let s = Sweep {
            grid: small_grid(),
            reps: 2,
            profile: Profile::Scaled,
            seed: 0xBEEF,
        };
        for (i, (seed, _)) in s.campaign().iter().enumerate() {
            assert_eq!(*seed, csig_netsim::rng::derive_seed(0xBEEF, i as u64 + 1));
        }
    }

    #[test]
    fn tiny_sweep_produces_balanced_scenarios() {
        let s = Sweep {
            grid: vec![AccessParams::figure1()],
            reps: 2,
            profile: Profile::Scaled,
            seed: 9,
        };
        let mut calls = 0;
        let results = s.run(|_, _| calls += 1);
        assert_eq!(results.len(), 4);
        assert_eq!(calls, 4);
        let self_count = results
            .iter()
            .filter(|r| r.intended == csig_features::CongestionClass::SelfInduced)
            .count();
        assert_eq!(self_count, 2);
    }

    #[test]
    fn observed_scenario_snapshots_are_deterministic() {
        let sc = SweepScenario {
            access: AccessParams::figure1(),
            external: false,
            profile: Profile::Scaled,
        };
        let (r1, s1, t1) = sc.run_observed(0xABCD);
        let (r2, s2, t2) = sc.run_observed(0xABCD);
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
        // Deterministic view is byte-identical; wall-clock timers are
        // present in the raw snapshot but excluded from it.
        assert_eq!(s1.deterministic().to_json(), s2.deterministic().to_json());
        assert!(!s1.deterministic().is_empty());
        assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.iter().zip(&t2) {
            assert_eq!(a.to_json_line(), b.to_json_line());
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let s = Sweep {
            grid: vec![AccessParams::figure1()],
            reps: 2,
            profile: Profile::Scaled,
            seed: 17,
        };
        let seq = s.run(|_, _| {});
        let par = s.run_jobs(4, |_| {});
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}
