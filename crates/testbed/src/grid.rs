//! The paper's parameter grid (§3.1) and sweep runner.

use crate::config::{AccessParams, TestbedConfig};
use crate::runner::{run_test, TestResult};
use csig_exec::{Campaign, Executor, ProgressEvent, Scenario};
use serde::{Deserialize, Serialize};

/// Canonical §3.1 grid axes. Every grid in the workspace is built from
/// these values; do not restate the literals elsewhere.
pub mod axes {
    /// Access-link rates, Mbit/s.
    pub const RATES_MBPS: [u64; 3] = [10, 20, 50];
    /// Random-loss rates, percent.
    pub const LOSSES_PCT: [f64; 2] = [0.02, 0.05];
    /// Added last-mile latencies, ms.
    pub const LATENCIES_MS: [u64; 2] = [20, 40];
    /// Access buffer depths, ms.
    pub const BUFFERS_MS: [u64; 3] = [20, 50, 100];
}

/// The §3.1 access-link grid: rate {10, 20, 50} Mbps × loss
/// {0.02, 0.05} % × latency {20, 40} ms × buffer {20, 50, 100} ms.
pub fn paper_grid() -> Vec<AccessParams> {
    let mut grid = Vec::new();
    for &rate_mbps in &axes::RATES_MBPS {
        for &loss_pct in &axes::LOSSES_PCT {
            for &latency_ms in &axes::LATENCIES_MS {
                for &buffer_ms in &axes::BUFFERS_MS {
                    grid.push(AccessParams {
                        rate_mbps,
                        loss_pct,
                        latency_ms,
                        buffer_ms,
                    });
                }
            }
        }
    }
    grid
}

/// A compact grid for quick runs and tests: the first loss/latency
/// point of the paper axes, over all rates and buffers.
pub fn small_grid() -> Vec<AccessParams> {
    let mut grid = Vec::new();
    for &rate_mbps in &axes::RATES_MBPS {
        for &buffer_ms in &axes::BUFFERS_MS {
            grid.push(AccessParams {
                rate_mbps,
                loss_pct: axes::LOSSES_PCT[0],
                latency_ms: axes::LATENCIES_MS[0],
                buffer_ms,
            });
        }
    }
    grid
}

/// Fidelity of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// Full paper settings (expensive).
    Paper,
    /// Scaled settings (default; see `TestbedConfig::scaled`).
    Scaled,
}

impl Profile {
    /// The testbed configuration for one grid point at this fidelity.
    pub fn config(&self, access: AccessParams, seed: u64) -> TestbedConfig {
        match self {
            Profile::Paper => TestbedConfig::paper(access, seed),
            Profile::Scaled => TestbedConfig::scaled(access, seed),
        }
    }
}

/// One sweep cell — a grid point in one congestion scenario — as a
/// self-contained [`Scenario`].
#[derive(Debug, Clone, Copy)]
pub struct SweepScenario {
    /// The access-link grid point.
    pub access: AccessParams,
    /// Run with an externally congested interconnect?
    pub external: bool,
    /// Fidelity profile.
    pub profile: Profile,
}

impl Scenario for SweepScenario {
    type Artifact = TestResult;

    fn run(&self, seed: u64) -> TestResult {
        let mut cfg = self.profile.config(self.access, seed);
        if self.external {
            cfg = cfg.externally_congested();
        }
        run_test(&cfg)
    }
}

/// Sweep specification.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Access-link grid points.
    pub grid: Vec<AccessParams>,
    /// Repetitions per grid point per scenario (paper: 50).
    pub reps: u32,
    /// Fidelity profile.
    pub profile: Profile,
    /// Base seed; every test derives its own stream from it.
    pub seed: u64,
}

impl Sweep {
    /// The default scaled sweep over the full paper grid.
    pub fn scaled(reps: u32, seed: u64) -> Self {
        Sweep {
            grid: paper_grid(),
            reps,
            profile: Profile::Scaled,
            seed,
        }
    }

    /// Total number of tests this sweep runs (both scenarios).
    pub fn total_tests(&self) -> usize {
        self.grid.len() * self.reps as usize * 2
    }

    /// The sweep as an executable campaign. Scenario order (and thus
    /// each scenario's derived seed) is grid point × rep ×
    /// {self-induced, external} — the same 1-based tag scheme the
    /// original inline loop used, so per-test results are unchanged.
    pub fn campaign(&self) -> Campaign<SweepScenario> {
        let mut campaign = Campaign::new(self.seed);
        for &access in &self.grid {
            for _rep in 0..self.reps {
                for external in [false, true] {
                    campaign.push(SweepScenario {
                        access,
                        external,
                        profile: self.profile,
                    });
                }
            }
        }
        campaign
    }

    /// Run the sweep sequentially. Calls `progress(done, total)` after
    /// each test.
    pub fn run<F: FnMut(usize, usize)>(&self, mut progress: F) -> Vec<TestResult> {
        Executor::sequential().run_with_progress(&self.campaign(), |e| progress(e.done, e.total))
    }

    /// Run the sweep on `jobs` workers (`0` = one per core). Results
    /// are byte-identical to [`Sweep::run`] for any worker count.
    pub fn run_jobs<F: FnMut(ProgressEvent)>(&self, jobs: usize, progress: F) -> Vec<TestResult> {
        self.run_with(&Executor::new(jobs), progress)
    }

    /// Run the sweep on a caller-configured executor (worker count,
    /// per-scenario deadline, …).
    pub fn run_with<F: FnMut(ProgressEvent)>(
        &self,
        exec: &Executor,
        progress: F,
    ) -> Vec<TestResult> {
        exec.run_with_progress(&self.campaign(), progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_36_points() {
        let g = paper_grid();
        assert_eq!(g.len(), 36);
        // All distinct.
        let set: std::collections::HashSet<String> = g.iter().map(|a| format!("{a:?}")).collect();
        assert_eq!(set.len(), 36);
    }

    #[test]
    fn small_grid_subset_of_paper_grid_values() {
        let g = small_grid();
        assert_eq!(g.len(), 9);
        for a in g {
            assert!(axes::RATES_MBPS.contains(&a.rate_mbps));
            assert!(axes::BUFFERS_MS.contains(&a.buffer_ms));
            assert!(axes::LOSSES_PCT.contains(&a.loss_pct));
            assert!(axes::LATENCIES_MS.contains(&a.latency_ms));
        }
    }

    #[test]
    fn sweep_counts() {
        let s = Sweep {
            grid: small_grid(),
            reps: 3,
            profile: Profile::Scaled,
            seed: 1,
        };
        assert_eq!(s.total_tests(), 54);
        assert_eq!(s.campaign().len(), 54);
    }

    #[test]
    fn campaign_seeds_match_the_legacy_tag_scheme() {
        let s = Sweep {
            grid: small_grid(),
            reps: 2,
            profile: Profile::Scaled,
            seed: 0xBEEF,
        };
        for (i, (seed, _)) in s.campaign().iter().enumerate() {
            assert_eq!(*seed, csig_netsim::rng::derive_seed(0xBEEF, i as u64 + 1));
        }
    }

    #[test]
    fn tiny_sweep_produces_balanced_scenarios() {
        let s = Sweep {
            grid: vec![AccessParams::figure1()],
            reps: 2,
            profile: Profile::Scaled,
            seed: 9,
        };
        let mut calls = 0;
        let results = s.run(|_, _| calls += 1);
        assert_eq!(results.len(), 4);
        assert_eq!(calls, 4);
        let self_count = results
            .iter()
            .filter(|r| r.intended == csig_features::CongestionClass::SelfInduced)
            .count();
        assert_eq!(self_count, 2);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let s = Sweep {
            grid: vec![AccessParams::figure1()],
            reps: 2,
            profile: Profile::Scaled,
            seed: 17,
        };
        let seq = s.run(|_, _| {});
        let par = s.run_jobs(4, |_| {});
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}
