//! The paper's parameter grid (§3.1) and sweep runner.

use crate::config::{AccessParams, TestbedConfig};
use crate::runner::{run_test, TestResult};
use csig_netsim::rng::derive_seed;
use serde::{Deserialize, Serialize};

/// The §3.1 access-link grid: rate {10, 20, 50} Mbps × loss
/// {0.02, 0.05} % × latency {20, 40} ms × buffer {20, 50, 100} ms.
pub fn paper_grid() -> Vec<AccessParams> {
    let mut grid = Vec::new();
    for &rate_mbps in &[10u64, 20, 50] {
        for &loss_pct in &[0.02f64, 0.05] {
            for &latency_ms in &[20u64, 40] {
                for &buffer_ms in &[20u64, 50, 100] {
                    grid.push(AccessParams {
                        rate_mbps,
                        loss_pct,
                        latency_ms,
                        buffer_ms,
                    });
                }
            }
        }
    }
    grid
}

/// A compact grid (one loss/latency point) for quick runs and tests.
pub fn small_grid() -> Vec<AccessParams> {
    let mut grid = Vec::new();
    for &rate_mbps in &[10u64, 20, 50] {
        for &buffer_ms in &[20u64, 50, 100] {
            grid.push(AccessParams {
                rate_mbps,
                loss_pct: 0.02,
                latency_ms: 20,
                buffer_ms,
            });
        }
    }
    grid
}

/// Fidelity of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// Full paper settings (expensive).
    Paper,
    /// Scaled settings (default; see `TestbedConfig::scaled`).
    Scaled,
}

impl Profile {
    fn config(&self, access: AccessParams, seed: u64) -> TestbedConfig {
        match self {
            Profile::Paper => TestbedConfig::paper(access, seed),
            Profile::Scaled => TestbedConfig::scaled(access, seed),
        }
    }
}

/// Sweep specification.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Access-link grid points.
    pub grid: Vec<AccessParams>,
    /// Repetitions per grid point per scenario (paper: 50).
    pub reps: u32,
    /// Fidelity profile.
    pub profile: Profile,
    /// Base seed; every test derives its own stream from it.
    pub seed: u64,
}

impl Sweep {
    /// The default scaled sweep over the full paper grid.
    pub fn scaled(reps: u32, seed: u64) -> Self {
        Sweep {
            grid: paper_grid(),
            reps,
            profile: Profile::Scaled,
            seed,
        }
    }

    /// Total number of tests this sweep runs (both scenarios).
    pub fn total_tests(&self) -> usize {
        self.grid.len() * self.reps as usize * 2
    }

    /// Run every grid point `reps` times in both scenarios. Calls
    /// `progress(done, total)` after each test.
    pub fn run<F: FnMut(usize, usize)>(&self, mut progress: F) -> Vec<TestResult> {
        let total = self.total_tests();
        let mut results = Vec::with_capacity(total);
        let mut tag = 0u64;
        for access in &self.grid {
            for rep in 0..self.reps {
                for external in [false, true] {
                    tag += 1;
                    let seed = derive_seed(self.seed, tag);
                    let mut cfg = self.profile.config(*access, seed);
                    if external {
                        cfg = cfg.externally_congested();
                    }
                    let _ = rep;
                    results.push(run_test(&cfg));
                    progress(results.len(), total);
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_36_points() {
        let g = paper_grid();
        assert_eq!(g.len(), 36);
        // All distinct.
        let set: std::collections::HashSet<String> =
            g.iter().map(|a| format!("{a:?}")).collect();
        assert_eq!(set.len(), 36);
    }

    #[test]
    fn small_grid_subset_of_paper_grid_values() {
        let g = small_grid();
        assert_eq!(g.len(), 9);
        for a in g {
            assert!([10, 20, 50].contains(&a.rate_mbps));
            assert!([20, 50, 100].contains(&a.buffer_ms));
        }
    }

    #[test]
    fn sweep_counts() {
        let s = Sweep {
            grid: small_grid(),
            reps: 3,
            profile: Profile::Scaled,
            seed: 1,
        };
        assert_eq!(s.total_tests(), 54);
    }

    #[test]
    fn tiny_sweep_produces_balanced_scenarios() {
        let s = Sweep {
            grid: vec![AccessParams::figure1()],
            reps: 2,
            profile: Profile::Scaled,
            seed: 9,
        };
        let mut calls = 0;
        let results = s.run(|_, _| calls += 1);
        assert_eq!(results.len(), 4);
        assert_eq!(calls, 4);
        let self_count = results
            .iter()
            .filter(|r| r.intended == csig_features::CongestionClass::SelfInduced)
            .count();
        assert_eq!(self_count, 2);
    }
}
