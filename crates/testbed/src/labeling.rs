//! Congestion-threshold labeling of testbed results (§3.1, "Labeling
//! the test data").
//!
//! A test from a self-induced run is labeled **self-induced** only if
//! its slow-start throughput exceeded `threshold × access capacity`;
//! a test from an externally congested run is labeled **external** only
//! if it stayed below the threshold. Tests contradicting their scenario
//! (a small fraction, caused by transient effects) are filtered out —
//! exactly the paper's procedure.

use crate::runner::TestResult;
use csig_dtree::Dataset;
use csig_features::CongestionClass;

/// Label one test under the given congestion threshold; `None` means
/// the test is filtered out (scenario/threshold disagreement, or no
/// valid features).
pub fn label_with_threshold(result: &TestResult, threshold: f64) -> Option<CongestionClass> {
    assert!((0.0..=1.0).contains(&threshold), "threshold out of range");
    if result.features.is_err() {
        return None;
    }
    let util = result.ss_utilization();
    match result.intended {
        CongestionClass::SelfInduced if util >= threshold => Some(CongestionClass::SelfInduced),
        CongestionClass::External if util < threshold => Some(CongestionClass::External),
        _ => None,
    }
}

/// Assemble a decision-tree dataset from labeled results. Returns the
/// dataset and how many results were filtered out.
pub fn build_dataset(results: &[TestResult], threshold: f64) -> (Dataset, usize) {
    let mut data = Dataset::new();
    let mut filtered = 0;
    for r in results {
        match (label_with_threshold(r, threshold), &r.features) {
            (Some(class), Ok(f)) => data.push(f.as_vector().to_vec(), class.index()),
            _ => filtered += 1,
        }
    }
    (data, filtered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_features::FlowFeatures;
    use csig_netsim::SimDuration;
    use csig_trace::{SlowStart, ThroughputSummary};

    fn result(intended: CongestionClass, util: f64) -> TestResult {
        TestResult {
            features: Ok(FlowFeatures {
                norm_diff: 0.5,
                cov: 0.2,
                samples: 20,
                min_rtt_ms: 20.0,
                max_rtt_ms: 40.0,
            }),
            slow_start: SlowStart {
                first_data_at: None,
                end: None,
                bytes_acked: 0,
            },
            throughput: ThroughputSummary {
                bytes_acked: 0,
                active: SimDuration::ZERO,
                mean_bps: 0.0,
            },
            ss_throughput_bps: util * 20e6,
            intended,
            access_rate_bps: 20_000_000,
            interconnect_max_occupancy: 0.0,
            events: 0,
            seed: 0,
            conn_stats: None,
        }
    }

    #[test]
    fn consistent_tests_get_labeled() {
        let r = result(CongestionClass::SelfInduced, 0.95);
        assert_eq!(
            label_with_threshold(&r, 0.8),
            Some(CongestionClass::SelfInduced)
        );
        let r = result(CongestionClass::External, 0.3);
        assert_eq!(
            label_with_threshold(&r, 0.8),
            Some(CongestionClass::External)
        );
    }

    #[test]
    fn contradicting_tests_are_filtered() {
        // Self-induced run that failed to reach the threshold.
        let r = result(CongestionClass::SelfInduced, 0.5);
        assert_eq!(label_with_threshold(&r, 0.8), None);
        // External run that reached access capacity anyway.
        let r = result(CongestionClass::External, 0.95);
        assert_eq!(label_with_threshold(&r, 0.8), None);
    }

    #[test]
    fn featureless_tests_are_filtered() {
        let mut r = result(CongestionClass::SelfInduced, 0.95);
        r.features = Err(csig_features::FeatureError::TooFewSamples { got: 2 });
        assert_eq!(label_with_threshold(&r, 0.8), None);
    }

    #[test]
    fn dataset_assembly_counts_filtered() {
        let results = vec![
            result(CongestionClass::SelfInduced, 0.95),
            result(CongestionClass::External, 0.3),
            result(CongestionClass::SelfInduced, 0.4), // filtered
        ];
        let (data, filtered) = build_dataset(&results, 0.8);
        assert_eq!(data.len(), 2);
        assert_eq!(filtered, 1);
        assert_eq!(data.labels, vec![0, 1]);
        assert_eq!(data.dim(), 2);
    }

    #[test]
    fn threshold_sensitivity() {
        let r = result(CongestionClass::SelfInduced, 0.75);
        assert!(label_with_threshold(&r, 0.7).is_some());
        assert!(label_with_threshold(&r, 0.8).is_none());
    }
}
