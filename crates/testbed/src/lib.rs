//! # csig-testbed — the paper's controlled-experiment harness
//!
//! Recreates §3 of the paper on the simulator: the Figure-2 topology
//! ([`topology`]), the `TGtrans`/`TGcong` cross-traffic generators and
//! CBR substitute ([`agents`]), netperf-style throughput tests with
//! trace analysis ([`runner`]), congestion-threshold labeling
//! ([`labeling`]) and the §3.1 parameter-grid sweep ([`grid`]).
//!
//! Two fidelity profiles exist: `TestbedConfig::paper` uses the paper's
//! exact settings (950 Mbps interconnect, 100 TGcong flows, 10 s tests)
//! and `TestbedConfig::scaled` a one-fifth-rate version that preserves
//! every buffer-delay ratio — the classifier features are dimensionless
//! so results carry over (validated by the tests in this crate).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod agents;
pub mod config;
pub mod grid;
pub mod labeling;
pub mod runner;
pub mod topology;

pub use agents::{CbrAgent, MultiClientAgent};
pub use config::{AccessParams, CongestionMode, TestbedConfig};
pub use grid::{paper_grid, small_grid, ObservedSweepScenario, Profile, Sweep, SweepScenario};
pub use labeling::{build_dataset, label_with_threshold};
pub use runner::{run_test, run_test_observed, TestResult};
pub use topology::{build, Testbed, TEST_FLOW};
