//! Run one netperf-style throughput test and analyze the test flow's
//! packet stream as it happens.
//!
//! The runner attaches a streaming [`FlowProbe`] at Server 1 instead of
//! a buffer-everything capture: RTT samples, the slow-start window,
//! features and throughput accumulate online, so no packet history is
//! retained. The probe's cores are the exact machines the batch
//! functions wrap, so results are byte-identical to the old
//! capture-then-post-process path.

use crate::config::TestbedConfig;
use crate::topology::{build, TEST_FLOW};
use csig_features::{CongestionClass, FeatureError, FlowFeatures, FlowProbe};
use csig_netsim::SimDuration;
use csig_obs::{MetricsRegistry, TraceBuffer};
use csig_tcp::{ConnStats, TcpServerAgent};
use csig_trace::{SlowStart, ThroughputSummary};
use serde::{Deserialize, Serialize};

/// Everything measured from one throughput test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestResult {
    /// The classifier features (or why they could not be computed).
    pub features: Result<FlowFeatures, FeatureError>,
    /// Slow-start window of the test flow.
    pub slow_start: SlowStart,
    /// Whole-test goodput summary.
    pub throughput: ThroughputSummary,
    /// Goodput achieved during slow start, in bits/s; falls back to the
    /// whole-test mean if the flow never retransmitted.
    pub ss_throughput_bps: f64,
    /// Ground truth: what the scenario constructed.
    pub intended: CongestionClass,
    /// Access-link capacity the test ran against, bits/s.
    pub access_rate_bps: u64,
    /// Fraction of interconnect buffer occupied at its high-water mark.
    pub interconnect_max_occupancy: f64,
    /// Number of simulation events processed (cost diagnostic).
    pub events: u64,
    /// The seed the test ran with.
    pub seed: u64,
    /// Web100-style kernel statistics of the test flow at the server
    /// (per-ACK RTT samples, limited-state accounting) — the input for
    /// capture-free classification.
    pub conn_stats: Option<ConnStats>,
}

impl TestResult {
    /// Slow-start throughput as a fraction of access capacity — the
    /// quantity the paper thresholds for labeling.
    pub fn ss_utilization(&self) -> f64 {
        self.ss_throughput_bps / self.access_rate_bps as f64
    }
}

/// Build the testbed for `cfg`, run it to the test end plus a drain
/// tail, and analyze the test flow's packet stream with a streaming
/// probe.
pub fn run_test(cfg: &TestbedConfig) -> TestResult {
    run_test_inner(cfg, None)
}

/// [`run_test`] with observability attached: simulator counters and
/// trace events go to `reg`/`trace`, feature extraction is wrapped in
/// the `time.feature_extract_us` timer, the test flow's Web100 counters
/// are exported as `tcp.*` metrics, and the per-flow outcome is counted
/// under `flows.verdicts` / `flows.skips_insufficient` plus
/// `rtt.samples`. The measured [`TestResult`] is byte-identical to the
/// unobserved path.
pub fn run_test_observed(
    cfg: &TestbedConfig,
    reg: &MetricsRegistry,
    trace: Option<TraceBuffer>,
) -> TestResult {
    run_test_inner(cfg, Some((reg, trace)))
}

fn run_test_inner(
    cfg: &TestbedConfig,
    obs: Option<(&MetricsRegistry, Option<TraceBuffer>)>,
) -> TestResult {
    let mut tb = build(cfg);
    if let Some((reg, trace)) = &obs {
        tb.sim.attach_obs(reg);
        if let Some(buf) = trace {
            tb.sim.attach_trace_buffer(buf.clone());
        }
    }
    let probe = tb
        .sim
        .attach_sink(tb.server1, Box::new(FlowProbe::new(TEST_FLOW)));
    let horizon = tb.test_end + SimDuration::from_millis(500);
    tb.sim.run_until(horizon);

    // Kernel-side view of the test flow, read off the server agent.
    let conn_stats = tb
        .sim
        .agent::<TcpServerAgent>(tb.server1)
        .and_then(|s| s.connection(TEST_FLOW).map(|c| c.stats.clone()));

    let Some(probe) = tb.sim.sink::<FlowProbe>(probe) else {
        unreachable!("handle attached above holds a FlowProbe")
    };
    let slow_start = probe.slow_start();
    let throughput = probe.throughput();
    let features = match &obs {
        Some((reg, _)) => {
            let _t = reg.timer("time.feature_extract_us").start_timer();
            probe.features()
        }
        None => probe.features(),
    };
    if let Some((reg, _)) = &obs {
        reg.counter("rtt.samples").add(probe.samples_total() as u64);
        if features.is_ok() {
            reg.counter("flows.verdicts").add(1);
        } else {
            reg.counter("flows.skips_insufficient").add(1);
        }
        if let Some(stats) = &conn_stats {
            stats.export_metrics(reg);
        }
    }
    // Capacity-style slow-start estimate, falling back to the
    // whole-test mean for flows that never retransmitted.
    let ss_throughput_bps = probe.capacity_estimate_bps().unwrap_or(throughput.mean_bps);

    let icl = tb.sim.link(tb.interconnect_down);
    let interconnect_max_occupancy = icl.max_occupancy() as f64 / icl.buffer_capacity() as f64;

    TestResult {
        features,
        slow_start,
        throughput,
        ss_throughput_bps,
        intended: cfg.intended_class(),
        access_rate_bps: cfg.access.rate_bps(),
        interconnect_max_occupancy,
        events: tb.sim.events_processed(),
        seed: cfg.seed,
        conn_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccessParams, CongestionMode};

    #[test]
    fn self_induced_test_saturates_access_and_shows_signature() {
        let cfg = TestbedConfig::scaled(AccessParams::figure1(), 101);
        let r = run_test(&cfg);
        assert_eq!(r.intended, CongestionClass::SelfInduced);
        // The test flow should reach most of the 20 Mbps access rate.
        assert!(
            r.throughput.mean_bps > 0.7 * 20e6,
            "mean {} bps",
            r.throughput.mean_bps
        );
        let f = r.features.expect("features");
        // Large buffer (100 ms) filled by the flow: high NormDiff.
        assert!(f.norm_diff > 0.5, "norm_diff {}", f.norm_diff);
        assert!(f.cov > 0.1, "cov {}", f.cov);
        // Slow start throughput also indicates access capacity.
        assert!(r.ss_utilization() > 0.5, "ss util {}", r.ss_utilization());
    }

    #[test]
    fn externally_congested_test_is_limited_below_access() {
        let cfg = TestbedConfig::scaled(AccessParams::figure1(), 102).externally_congested();
        let r = run_test(&cfg);
        assert_eq!(r.intended, CongestionClass::External);
        // Interconnect buffer was driven to (near) capacity.
        assert!(
            r.interconnect_max_occupancy > 0.9,
            "interconnect occupancy {}",
            r.interconnect_max_occupancy
        );
        // The flow cannot reach the access rate.
        assert!(
            r.throughput.mean_bps < 0.8 * 20e6,
            "mean {} bps",
            r.throughput.mean_bps
        );
        let f = r.features.expect("features");
        // Already-full interconnect buffer: lower NormDiff than the
        // self-induced case.
        assert!(f.norm_diff < 0.6, "norm_diff {}", f.norm_diff);
    }

    #[test]
    fn observed_run_matches_plain_run_and_fills_metrics() {
        let cfg = TestbedConfig::scaled(AccessParams::figure1(), 104);
        let plain = run_test(&cfg);
        let reg = csig_obs::MetricsRegistry::new();
        let trace = csig_obs::TraceBuffer::new();
        let observed = run_test_observed(&cfg, &reg, Some(trace.clone()));
        // Observability must not perturb the measurement.
        assert_eq!(format!("{plain:?}"), format!("{observed:?}"));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.events"), Some(observed.events));
        assert!(snap.counter("rtt.samples").unwrap_or(0) > 0);
        assert_eq!(snap.counter("flows.verdicts"), Some(1));
        assert!(snap.counter("tcp.segments_sent").unwrap_or(0) > 0);
        // Feature extraction was timed.
        assert!(snap.histogram("time.feature_extract_us").is_some());
        // The figure-1 access link drops packets (self-induced loss), so
        // the trace saw at least one drop event.
        assert!(trace.snapshot().iter().any(|e| e.kind == "drop"));
    }

    #[test]
    fn cbr_congestion_mode_also_limits_the_flow() {
        let cfg = TestbedConfig::scaled(AccessParams::figure1(), 103)
            .with_congestion(CongestionMode::Cbr { utilization: 1.05 });
        let r = run_test(&cfg);
        assert!(
            r.interconnect_max_occupancy > 0.9,
            "occupancy {}",
            r.interconnect_max_occupancy
        );
        assert!(
            r.throughput.mean_bps < 0.8 * 20e6,
            "mean {} bps",
            r.throughput.mean_bps
        );
    }
}
