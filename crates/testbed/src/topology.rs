//! The Figure-2 testbed topology, built on the simulator.
//!
//! ```text
//! server1 ─┐
//! server2 ─┼─ r_net ──(Link3)── r1 ──(InterConnectLink)── r2 ──(AccessLink)── pi1
//! server3 ─┘                    │                          ├── pi2   (TGtrans)
//!            server4 ───────────┘                          └── cong  (TGcong)
//! ```
//!
//! * `AccessLink` (r2 → pi1): shaped to the grid rate over a 100 Mbps
//!   physical link (the Pi NIC), with the grid's loss, latency
//!   (± 2 ms jitter) and buffer.
//! * `InterConnectLink` (r1 ↔ r2): shaped to 950 Mbps over 1 Gbps
//!   physical, 50 ms buffer, no added latency/loss.
//! * `Link3` (r_net ↔ r1) and server access: 1 Gbps.
//! * Server one-way distances: server1 2 ms, server2 10 ms ("20 ms
//!   away"), server3 30 ms ("60 ms away"), server4 1 ms ("less than
//!   2 ms away", attached at r1 so its fetches cross the interconnect).

use crate::agents::{CbrAgent, MultiClientAgent};
use crate::config::{CongestionMode, TestbedConfig};
use csig_netsim::{
    CaptureHandle, FlowId, LinkConfig, LinkId, NodeId, SimDuration, SimTime, Simulator,
};
use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};

/// Flow id of the netperf test connection.
pub const TEST_FLOW: FlowId = FlowId(0);
/// Flow-id block base of the `TGtrans` clients.
pub const TGTRANS_BLOCK: u32 = 1 << 20;
/// Flow-id block base of the `TGcong` clients.
pub const TGCONG_BLOCK: u32 = 1 << 24;
/// Flow id of the CBR background stream.
pub const CBR_FLOW: FlowId = FlowId(0xFFFF_0000);

/// The constructed testbed: the simulator plus the handles experiments
/// need.
pub struct Testbed {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// The netperf server (Server 1); analysis taps live here.
    pub server1: NodeId,
    /// The test client (Pi 1).
    pub pi1: NodeId,
    /// The downstream interconnect link (r1 → r2), for stats.
    pub interconnect_down: LinkId,
    /// The downstream access link (r2 → pi1), for stats.
    pub access_down: LinkId,
    /// When the netperf test starts.
    pub test_start: SimTime,
    /// When the netperf test ends.
    pub test_end: SimTime,
}

impl Testbed {
    /// Attach a buffer-everything capture at Server 1 (the paper's
    /// `tcpdump` vantage). Opt-in: the standard runner analyzes the
    /// packet stream with a streaming tap instead and never retains a
    /// capture; pcap export and trace-visualization tools attach one
    /// explicitly.
    pub fn attach_capture(&mut self) -> CaptureHandle {
        self.sim.attach_capture(self.server1)
    }
}

/// Build the testbed for one configuration.
pub fn build(cfg: &TestbedConfig) -> Testbed {
    let mut sim = Simulator::new(cfg.seed);
    let ms = SimDuration::from_millis;
    let test_start = SimTime::ZERO + cfg.warmup;
    let test_end = test_start + cfg.test_duration;

    // Cross-traffic endpoint TCP config: lean (no sample recording),
    // optionally decoupled from the test flow's stack.
    let lean_tcp = TcpConfig {
        record_samples: false,
        ..cfg.cross_tcp.clone().unwrap_or_else(|| cfg.tcp.clone())
    };

    // --- hosts & routers --------------------------------------------------
    // Server 1 is the measurement server: like an M-Lab NDT host it
    // keeps Web100-style kernel statistics (per-ACK RTT samples) for
    // the flows it serves, so experiments can compare capture-based and
    // kernel-based classification.
    let mut server1_agent = TcpServerAgent::new(
        TcpConfig {
            record_samples: true,
            ..cfg.tcp.clone()
        },
        ServerSendPolicy::Unbounded,
    );
    server1_agent.keep_completed = false;
    let server1 = sim.add_host(Box::new(server1_agent));

    let r_net = sim.add_router();
    let r1 = sim.add_router();
    let r2 = sim.add_router();

    // Pi 1: the test client, plus optional access-link cross traffic,
    // all behind the shaped AccessLink.
    let mut pi1_children = vec![TcpClientAgent::new(
        server1,
        cfg.tcp.clone(),
        ClientBehavior::Once,
        MultiClientAgent::child_flow_base(0, 0),
    )
    .with_start_delay(cfg.warmup)];
    // Access-link cross traffic (§3.3 multiplexing): clients in blocks
    // 1..=5 of base 0 (at most 15 fit below the TGtrans block). They
    // start *with* the test: flows ramping together all contribute to
    // filling the shared access buffer, which is the sharing regime the
    // paper describes ("our test flow is able to obtain significant
    // buffer occupancy"). Starting them earlier would present the test
    // flow with an already-full buffer — the external signature.
    assert!(cfg.access_cross_flows < 16, "too many access cross flows");
    for i in 0..cfg.access_cross_flows {
        pi1_children.push(
            TcpClientAgent::new(
                server1,
                lean_tcp.clone(),
                ClientBehavior::Repeat {
                    mean_think: ms(1),
                    until: test_end,
                },
                MultiClientAgent::child_flow_base(0, (i + 1) as usize),
            )
            .with_start_delay(cfg.warmup),
        );
    }
    let pi1 = sim.add_host(Box::new(MultiClientAgent::new(0, pi1_children)));

    // Pi 2: TGtrans fetchers to servers 2 and 3.
    let server2 = sim.add_host(Box::new(catalog_server(lean_tcp.clone())));
    let server3 = sim.add_host(Box::new(catalog_server(lean_tcp.clone())));
    let tgtrans_children = if cfg.tgtrans {
        vec![
            TcpClientAgent::new(
                server2,
                lean_tcp.clone(),
                ClientBehavior::Repeat {
                    mean_think: ms(50),
                    until: test_end,
                },
                MultiClientAgent::child_flow_base(TGTRANS_BLOCK, 0),
            ),
            TcpClientAgent::new(
                server3,
                lean_tcp.clone(),
                ClientBehavior::Repeat {
                    mean_think: ms(50),
                    until: test_end,
                },
                MultiClientAgent::child_flow_base(TGTRANS_BLOCK, 1),
            ),
        ]
    } else {
        Vec::new()
    };
    let pi2 = sim.add_host(Box::new(MultiClientAgent::new(
        TGTRANS_BLOCK,
        tgtrans_children,
    )));

    // TGcong: bulk fetch loops from server 4, attached at r2.
    let mut server4_agent =
        TcpServerAgent::new(lean_tcp.clone(), ServerSendPolicy::Fixed(100_000_000));
    server4_agent.keep_completed = false;
    let server4 = sim.add_host(Box::new(server4_agent));
    let cong_children = match cfg.congestion {
        CongestionMode::TgCong { flows } => (0..flows)
            .map(|i| {
                // Stagger starts across the first half of the warm-up so
                // the fetch loops desynchronize (simultaneous slow
                // starts would make the whole aggregate oscillate in
                // lock-step, which no real interconnect does).
                let stagger = cfg.warmup.mul_f64(0.5 * i as f64 / flows.max(1) as f64);
                TcpClientAgent::new(
                    server4,
                    lean_tcp.clone(),
                    ClientBehavior::Repeat {
                        mean_think: ms(1),
                        until: test_end,
                    },
                    MultiClientAgent::child_flow_base(TGCONG_BLOCK, i as usize),
                )
                .with_start_delay(stagger)
            })
            .collect(),
        _ => Vec::new(),
    };
    let cong = sim.add_host(Box::new(MultiClientAgent::new(TGCONG_BLOCK, cong_children)));

    // CBR source (scaled congestion substitute), attached at r1 side,
    // absorbed by the `cong` host behind r2.
    if let CongestionMode::Cbr { utilization } = cfg.congestion {
        let rate = (cfg.interconnect_mbps as f64 * 1e6 * utilization) as u64;
        let cbr = sim.add_host(Box::new(CbrAgent::new(
            cong,
            CBR_FLOW,
            rate,
            SimTime::ZERO,
            test_end,
        )));
        sim.add_duplex_link(
            cbr,
            r1,
            LinkConfig::new(10_000_000_000, ms(0)).buffer_ms(20),
        );
    }

    // --- links -------------------------------------------------------------
    let gig = |delay_ms: u64| {
        LinkConfig::new(1_000_000_000, ms(delay_ms))
            .phy_rate(1_000_000_000)
            .buffer_ms(50)
    };
    sim.add_duplex_link(server1, r_net, gig(2));
    sim.add_duplex_link(server2, r_net, gig(10));
    sim.add_duplex_link(server3, r_net, gig(30));
    sim.add_duplex_link(server4, r1, gig(1));
    sim.add_duplex_link(r_net, r1, gig(0)); // Link3

    // InterConnectLink: shaped 950 Mbps over 1 Gbps physical, 50 ms
    // buffer, no added latency.
    let icl = LinkConfig::new(cfg.interconnect_mbps * 1_000_000, ms(0))
        .phy_rate((cfg.interconnect_mbps * 1_000_000).max(1_000_000_000))
        .buffer_ms(cfg.interconnect_buffer_ms)
        .burst(10 * 1500);
    let interconnect_down = sim.add_link(r1, r2, icl.clone());
    sim.add_link(r2, r1, icl);

    // AccessLink: shaped grid rate over the 100 Mbps Pi NIC.
    let access_cfg = LinkConfig::new(cfg.access.rate_bps(), ms(cfg.access.latency_ms))
        .phy_rate(100_000_000.max(cfg.access.rate_bps()))
        .buffer_ms(cfg.access.buffer_ms)
        .loss(cfg.access.loss_pct / 100.0)
        .jitter(ms(2))
        .queue_kind(cfg.queue)
        .burst(5 * 1024);
    let access_down = sim.add_link(r2, pi1, access_cfg);
    if let Some(plan) = &cfg.access_fault {
        sim.attach_fault_plan(access_down, plan.clone());
    }
    // Upstream from Pi 1: plain 100 Mbps NIC (ACK path).
    sim.add_link(pi1, r2, LinkConfig::new(100_000_000, ms(1)).buffer_ms(20));

    sim.add_duplex_link(r2, pi2, LinkConfig::new(100_000_000, ms(1)).buffer_ms(20));
    sim.add_duplex_link(
        r2,
        cong,
        LinkConfig::new(10_000_000_000, ms(0)).buffer_ms(20),
    );

    sim.compute_routes();
    sim.set_event_budget(3_000_000_000);

    Testbed {
        sim,
        server1,
        pi1,
        interconnect_down,
        access_down,
        test_start,
        test_end,
    }
}

/// The `TGtrans` object server (catalog of 10 KB … 100 MB objects).
fn catalog_server(cfg: TcpConfig) -> TcpServerAgent {
    let mut s = TcpServerAgent::new(cfg, ServerSendPolicy::tgtrans_catalog());
    s.keep_completed = false;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccessParams;

    #[test]
    fn builds_and_routes() {
        let cfg = TestbedConfig::scaled(AccessParams::figure1(), 1);
        let tb = build(&cfg);
        // Route from server1 to pi1 exists and goes via r_net.
        assert!(tb.sim.route(tb.server1, tb.pi1).is_some());
        assert!(tb.sim.route(tb.pi1, tb.server1).is_some());
    }

    #[test]
    fn access_fault_plan_attaches_and_fires() {
        use csig_netsim::FaultPlan;
        // Flap the access link for 500 ms in the middle of the test
        // window (test runs from 2 s warm-up to 6 s).
        let plan =
            FaultPlan::new().down_between(SimTime::from_millis(3_000), SimTime::from_millis(3_500));
        let cfg = TestbedConfig::scaled(AccessParams::figure1(), 7).with_access_fault(plan);
        let mut tb = build(&cfg);
        tb.sim.run_until(tb.test_end);
        let stats = &tb.sim.link(tb.access_down).stats;
        assert!(stats.dropped_down > 0, "flap dropped nothing: {stats:?}");
        assert!(!tb.sim.fault_log(tb.access_down).is_empty());
        // An empty plan is dropped by the builder: the config stays
        // byte-identical to a clean one.
        let clean =
            TestbedConfig::scaled(AccessParams::figure1(), 7).with_access_fault(FaultPlan::new());
        assert!(clean.access_fault.is_none());
    }

    #[test]
    fn access_link_resolves_buffer() {
        let cfg = TestbedConfig::scaled(AccessParams::figure1(), 1);
        let tb = build(&cfg);
        let link = tb.sim.link(tb.access_down);
        // 20 Mbps × 100 ms = 250 kB.
        assert_eq!(link.buffer_capacity(), 250_000);
        assert_eq!(link.config().rate_bps, 20_000_000);
        assert_eq!(link.config().phy_rate_bps, 100_000_000);
    }
}
