//! Flow demultiplexing and offset bookkeeping for captured packets.
//!
//! A [`Capture`](csig_netsim::Capture) interleaves every flow a node
//! saw; analysis works per flow. [`FlowTrace`] is one flow's records in
//! time order, with helpers to translate wire sequence numbers into
//! 64-bit stream offsets relative to the flow's initial sequence
//! numbers (recovered from the SYN exchange).

use csig_netsim::{Capture, Direction, FlowId, PacketRecord, SimTime};
use csig_tcp::seq::offset_of;
use std::collections::BTreeMap;

/// One flow's captured packets, in capture order.
#[derive(Debug, Clone)]
pub struct FlowTrace {
    /// The flow id.
    pub flow: FlowId,
    /// Records of this flow only.
    pub records: Vec<PacketRecord>,
}

/// Split a capture into per-flow traces (ordered by flow id).
///
/// Thin wrapper over [`FlowDemux`]: replays the buffered records
/// through the streaming demultiplexer.
pub fn split_flows(cap: &Capture) -> BTreeMap<FlowId, FlowTrace> {
    let mut demux = FlowDemux::new();
    for rec in &cap.records {
        demux.push(rec);
    }
    demux.into_flows()
}

/// Incremental flow demultiplexer: consumes records one at a time and
/// accumulates them into per-flow traces.
///
/// This is the record-retaining demux behind [`split_flows`]. The
/// fully streaming pipeline (`csig-core`'s `LiveAnalyzer`) routes each
/// record to per-flow state machines instead and retains nothing.
#[derive(Debug, Clone, Default)]
pub struct FlowDemux {
    flows: BTreeMap<FlowId, FlowTrace>,
}

impl FlowDemux {
    /// An empty demultiplexer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Route one record to its flow's trace.
    pub fn push(&mut self, rec: &PacketRecord) {
        self.flows
            .entry(rec.pkt.flow)
            .or_insert_with(|| FlowTrace {
                flow: rec.pkt.flow,
                records: Vec::new(),
            })
            .records
            .push(rec.clone());
    }

    /// Number of flows seen so far.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` when no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The accumulated per-flow traces, ordered by flow id.
    pub fn into_flows(self) -> BTreeMap<FlowId, FlowTrace> {
        self.flows
    }
}

/// Initial sequence numbers of a flow as seen from the tap node.
///
/// `local_iss` is the ISS of the tap node's endpoint (`Out` SYN);
/// `remote_iss` is the peer's (`In` SYN). Either may be absent if the
/// capture missed the handshake.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowIsn {
    /// ISS of the tap-side endpoint.
    pub local_iss: Option<u32>,
    /// ISS of the remote endpoint.
    pub remote_iss: Option<u32>,
}

impl FlowTrace {
    /// Recover both initial sequence numbers from the SYN exchange.
    pub fn isn(&self) -> FlowIsn {
        let mut isn = FlowIsn::default();
        for rec in &self.records {
            if let Some(h) = rec.pkt.tcp() {
                if h.flags.syn() {
                    match rec.dir {
                        Direction::Out if isn.local_iss.is_none() => {
                            isn.local_iss = Some(h.seq);
                        }
                        Direction::In if isn.remote_iss.is_none() => {
                            isn.remote_iss = Some(h.seq);
                        }
                        _ => {}
                    }
                }
            }
            if isn.local_iss.is_some() && isn.remote_iss.is_some() {
                break;
            }
        }
        isn
    }

    /// First and last timestamps.
    pub fn time_span(&self) -> Option<(SimTime, SimTime)> {
        let first = self.records.first()?.time;
        let last = self.records.last()?.time;
        Some((first, last))
    }

    /// Duration of the trace in seconds.
    pub fn duration_secs(&self) -> f64 {
        match self.time_span() {
            Some((a, b)) => b.saturating_since(a).as_secs_f64(),
            None => 0.0,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Incremental wire-seq → stream-offset translator for one direction of
/// one flow. Offsets are relative to `isn + 1` (the first payload byte).
#[derive(Debug, Clone)]
pub struct OffsetTracker {
    base: u32,
    near: u64,
}

impl OffsetTracker {
    /// Tracker for sequence numbers in a space whose ISS is `isn`.
    pub fn new(isn: u32) -> Self {
        OffsetTracker {
            base: isn.wrapping_add(1),
            near: 0,
        }
    }

    /// The wire sequence number of stream offset zero.
    pub fn base(&self) -> u32 {
        self.base.wrapping_sub(1)
    }

    /// Translate a wire sequence number, updating the unwrap reference.
    pub fn offset(&mut self, wire: u32) -> u64 {
        let off = offset_of(self.base, wire, self.near);
        // Keep the reference near the forward edge but never let a
        // stale/old packet drag it backwards.
        if off > self.near {
            self.near = off;
        }
        off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_netsim::{NodeId, Packet, PacketId, PacketKind, TcpFlags, TcpHeader, NO_SACK};

    fn rec(flow: u32, dir: Direction, t_ms: u64, flags: TcpFlags, seq: u32) -> PacketRecord {
        PacketRecord {
            time: SimTime::from_millis(t_ms),
            dir,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(flow),
                src: NodeId(0),
                dst: NodeId(1),
                size: 52,
                sent_at: SimTime::from_millis(t_ms),
                kind: PacketKind::Tcp(TcpHeader {
                    seq,
                    ack: 0,
                    flags,
                    payload_len: 0,
                    window: 65535,
                    sack: NO_SACK,
                }),
            },
        }
    }

    #[test]
    fn split_preserves_order_and_flows() {
        let mut cap = Capture::new(NodeId(0));
        cap.records
            .push(rec(1, Direction::Out, 1, TcpFlags::SYN, 100));
        cap.records
            .push(rec(2, Direction::Out, 2, TcpFlags::SYN, 200));
        cap.records
            .push(rec(1, Direction::In, 3, TcpFlags::SYN | TcpFlags::ACK, 300));
        let flows = split_flows(&cap);
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[&FlowId(1)].len(), 2);
        assert_eq!(flows[&FlowId(2)].len(), 1);
        assert!(flows[&FlowId(1)].records[0].time <= flows[&FlowId(1)].records[1].time);
    }

    #[test]
    fn isn_recovered_from_syns() {
        let mut cap = Capture::new(NodeId(0));
        cap.records
            .push(rec(1, Direction::Out, 1, TcpFlags::SYN, 111));
        cap.records
            .push(rec(1, Direction::In, 2, TcpFlags::SYN | TcpFlags::ACK, 222));
        let flows = split_flows(&cap);
        let isn = flows[&FlowId(1)].isn();
        assert_eq!(isn.local_iss, Some(111));
        assert_eq!(isn.remote_iss, Some(222));
    }

    #[test]
    fn missing_handshake_yields_none() {
        let mut cap = Capture::new(NodeId(0));
        cap.records
            .push(rec(1, Direction::Out, 1, TcpFlags::ACK, 500));
        let flows = split_flows(&cap);
        let isn = flows[&FlowId(1)].isn();
        assert_eq!(isn.local_iss, None);
        assert_eq!(isn.remote_iss, None);
    }

    #[test]
    fn offset_tracker_unwraps_forward() {
        let mut t = OffsetTracker::new(u32::MAX - 10);
        // First payload byte has wire seq ISS+1 = u32::MAX - 9.
        assert_eq!(t.offset(u32::MAX - 9), 0);
        assert_eq!(t.offset((u32::MAX - 9).wrapping_add(100)), 100);
        // Crossing the 32-bit wrap.
        let wrapped = (u32::MAX - 9).wrapping_add(20_000);
        assert_eq!(t.offset(wrapped), 20_000);
        // An old (retransmitted) packet does not drag the reference back.
        assert_eq!(t.offset(u32::MAX - 9), 0);
        assert_eq!(t.offset(wrapped), 20_000);
    }

    #[test]
    fn time_span_and_duration() {
        let mut cap = Capture::new(NodeId(0));
        cap.records
            .push(rec(1, Direction::Out, 10, TcpFlags::SYN, 1));
        cap.records
            .push(rec(1, Direction::Out, 510, TcpFlags::ACK, 2));
        let flows = split_flows(&cap);
        let ft = &flows[&FlowId(1)];
        let (a, b) = ft.time_span().unwrap();
        assert_eq!(
            b.saturating_since(a),
            csig_netsim::SimDuration::from_millis(500)
        );
        assert!((ft.duration_secs() - 0.5).abs() < 1e-9);
    }
}
