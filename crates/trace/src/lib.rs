//! # csig-trace — packet-trace capture analysis
//!
//! The `tcpdump`/`tshark` stage of the paper's pipeline, applied to
//! simulated captures:
//!
//! * [`flow`] — demultiplex a capture into per-flow traces, recover
//!   initial sequence numbers, translate wire seqs to stream offsets.
//! * [`rtt`] — extract per-ACK flow-RTT samples with Karn filtering.
//! * [`slow_start`] — find the slow-start boundary (first
//!   retransmission) and window samples/throughput to it.
//! * [`throughput`] — goodput summaries and time series from the
//!   cumulative-ACK stream.
//! * [`pcap`] — genuine libpcap export (synthesized IPv4+TCP bytes,
//!   SACK options, valid IP checksums) and re-import.
//! * [`pcap_import`] — import of *foreign* `tcpdump` files (µs/ns
//!   magic, Ethernet or raw-IP framing) with 4-tuple flow assembly.
//!
//! ## Streaming cores
//!
//! Every per-flow analysis is implemented as an incremental state
//! machine consuming one [`PacketRecord`](csig_netsim::PacketRecord) at
//! a time — [`FlowDemux`], [`RttExtractor`], [`AckAccountant`],
//! [`SlowStartTracker`], [`ThroughputTracker`] — with state bounded by
//! the flow's in-flight window, not by trace length. The batch
//! functions ([`extract_rtt_samples`], [`detect_slow_start`],
//! [`throughput_summary`], …) are thin wrappers that replay a buffered
//! trace through the corresponding core, so both paths produce
//! byte-identical results by construction. Only
//! [`throughput_timeseries`] remains batch-only (its binning needs the
//! trace's time span up front).
//!
//! The end-to-end integration test in this crate cross-validates the
//! trace-derived RTT samples against the TCP stack's own Karn-filtered
//! estimator samples — the two measurement paths must agree.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod flow;
pub mod pcap;
pub mod pcap_import;
pub mod rtt;
pub mod slow_start;
pub mod throughput;

pub use flow::{split_flows, FlowDemux, FlowIsn, FlowTrace, OffsetTracker};
pub use pcap::{read_pcap, write_pcap, PcapError};
pub use pcap_import::{
    assemble_capture, import_pcap, parse_pcap_tcp, ImportError, RawTcpPacket, ServerSelector,
};
pub use rtt::{bytes_acked_by, extract_rtt_samples, AckAccountant, RttExtractor, RttSample};
pub use slow_start::{
    capacity_estimate_bps, detect_slow_start, slow_start_samples, SlowStart, SlowStartTracker,
};
pub use throughput::{
    throughput_summary, throughput_timeseries, ThroughputSummary, ThroughputTracker,
};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use csig_netsim::{FlowId, LinkConfig, SimDuration, Simulator};
    use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};

    /// Run a download over a bottleneck and capture at the server.
    fn run_download(seed: u64, size: u64) -> (csig_netsim::Capture, csig_tcp::ConnStats) {
        let mut sim = Simulator::new(seed);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig::default(),
            ServerSendPolicy::Fixed(size),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Once,
            500,
        )));
        sim.add_duplex_link(
            server,
            client,
            LinkConfig::new(20_000_000, SimDuration::from_millis(20)).buffer_ms(100),
        );
        sim.compute_routes();
        let cap = sim.attach_capture(server);
        sim.set_event_budget(50_000_000);
        sim.run();
        let s: &TcpServerAgent = sim.agent(server).unwrap();
        let stats = s.completed[0].1.clone();
        (sim.take_capture(cap), stats)
    }

    #[test]
    fn trace_rtt_matches_in_stack_estimator() {
        let (cap, stats) = run_download(11, 4_000_000);
        let flows = split_flows(&cap);
        let trace = &flows[&FlowId(500)];
        let samples = extract_rtt_samples(trace);
        assert!(
            samples.len() >= 100,
            "too few trace samples: {}",
            samples.len()
        );
        // During slow start (before the first retransmission) the two
        // measurement paths sample exactly the same ACKs and must agree
        // pairwise. After loss they diverge slightly in which ACKs are
        // Karn-eligible, so comparison is windowed.
        let boundary = stats
            .first_retransmit_at
            .unwrap_or(csig_netsim::SimTime::MAX);
        let trace_ss: Vec<_> = samples.iter().filter(|s| s.at <= boundary).collect();
        let stack_ss: Vec<_> = stats
            .rtt_samples
            .iter()
            .filter(|(t, _)| *t <= boundary)
            .collect();
        assert!(trace_ss.len() >= 10, "too few slow-start samples");
        assert_eq!(trace_ss.len(), stack_ss.len());
        for (t, s) in trace_ss.iter().zip(&stack_ss) {
            let err = (t.rtt.as_millis_f64() - s.1.as_millis_f64()).abs();
            assert!(err < 0.001, "trace {} vs stack {}", t.rtt, s.1);
        }
    }

    #[test]
    fn trace_slow_start_matches_stack_first_retransmit() {
        let (cap, stats) = run_download(12, 4_000_000);
        let flows = split_flows(&cap);
        let ss = detect_slow_start(&flows[&FlowId(500)]);
        let stack = stats.first_retransmit_at.expect("loss expected");
        let trace_end = ss.end.expect("trace retransmission expected");
        // The trace sees the retransmission the instant it is sent.
        assert_eq!(trace_end, stack);
    }

    #[test]
    fn trace_throughput_matches_transfer() {
        let (cap, stats) = run_download(13, 4_000_000);
        let flows = split_flows(&cap);
        let s = throughput_summary(&flows[&FlowId(500)]);
        assert_eq!(s.bytes_acked, stats.bytes_acked);
        // 20 Mbps bottleneck: mean goodput below capacity, above half.
        assert!(s.mean_bps < 20.5e6, "{}", s.mean_bps);
        assert!(s.mean_bps > 10e6, "{}", s.mean_bps);
    }

    #[test]
    fn pcap_roundtrip_preserves_analysis() {
        let (cap, _) = run_download(14, 1_000_000);
        let mut buf = Vec::new();
        let n = write_pcap(&cap, &mut buf).unwrap();
        assert!(n > 100);
        let parsed = read_pcap(&buf[..], cap.node).unwrap();
        // RTT extraction on the re-imported capture agrees with the
        // original (timestamps and header fields round-trip).
        let of = split_flows(&cap);
        let pf = split_flows(&parsed);
        // Flow ids are recovered mod 50k from ports; id 500 is stable.
        let a = extract_rtt_samples(&of[&FlowId(500)]);
        let b = extract_rtt_samples(&pf[&FlowId(500)]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rtt, y.rtt);
            assert_eq!(x.at, y.at);
        }
    }

    #[test]
    fn slow_start_rtt_signature_visible_in_trace() {
        // The paper's core observation, measured entirely from the
        // trace: slow-start RTT grows from the propagation baseline
        // (~40 ms) toward baseline + buffer (~140 ms).
        let (cap, _) = run_download(15, 4_000_000);
        let flows = split_flows(&cap);
        let trace = &flows[&FlowId(500)];
        let samples = extract_rtt_samples(trace);
        let ss = detect_slow_start(trace);
        let win = slow_start_samples(&samples, &ss);
        assert!(win.len() >= 10);
        let min = win
            .iter()
            .map(|s| s.rtt.as_millis_f64())
            .fold(f64::MAX, f64::min);
        let max = win
            .iter()
            .map(|s| s.rtt.as_millis_f64())
            .fold(0.0, f64::max);
        assert!(min < 50.0, "baseline inflated: {min}");
        assert!(max > 110.0, "buffer never filled: {max}");
    }
}
