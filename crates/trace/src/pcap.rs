//! Real libpcap-format export/import of simulated captures.
//!
//! The simulator's packets carry structured headers rather than bytes,
//! so export synthesizes genuine IPv4 + TCP wire bytes (including SACK
//! options and valid IPv4 header checksums). Files use the nanosecond
//! pcap magic and `LINKTYPE_RAW` (101, raw IPv4), and are snapped to
//! headers-only (like `tcpdump -s 96`): `orig_len` records the true
//! on-wire size while payload bytes are not stored. The reader parses
//! such files back into [`PacketRecord`]s, inferring direction from the
//! tap node's synthesized address. Non-TCP simulator packets (probes,
//! background filler) are skipped on export.
//!
//! Addresses: node `n` becomes `10.(n>>16).(n>>8 & 255).(n & 255)`.
//! Ports: the data/tap side is 5001 (an iperf/NDT-style server port),
//! the peer side is `10000 + (flow % 50000)`.

use csig_netsim::{
    Capture, Direction, FlowId, NodeId, Packet, PacketId, PacketKind, SimTime, TcpFlags, TcpHeader,
    NO_SACK, TCP_HEADER_BYTES,
};
use std::io::{self, Read, Write};

const PCAP_MAGIC_NANO: u32 = 0xA1B2_3C4D;
const LINKTYPE_RAW: u32 = 101;
const SNAPLEN: u32 = 96;

/// Synthesized IPv4 address for a node.
pub fn node_ip(node: NodeId) -> [u8; 4] {
    let n = node.0;
    [10, (n >> 16) as u8, (n >> 8) as u8, n as u8]
}

/// Synthesized peer TCP port for a flow.
pub fn flow_port(flow: FlowId) -> u16 {
    10_000 + (flow.0 % 50_000) as u16
}

/// The tap-side TCP port (NDT-style server port).
pub const TAP_PORT: u16 = 5001;

fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = ((chunk[0] as u32) << 8) | (*chunk.get(1).unwrap_or(&0) as u32);
        sum += word;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Write a capture as a pcap file. Returns the number of packets
/// written (TCP only).
pub fn write_pcap<W: Write>(cap: &Capture, mut w: W) -> io::Result<usize> {
    // Global header.
    w.write_all(&PCAP_MAGIC_NANO.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&SNAPLEN.to_le_bytes())?;
    w.write_all(&LINKTYPE_RAW.to_le_bytes())?;

    let mut written = 0;
    for rec in &cap.records {
        let Some(h) = rec.pkt.tcp() else { continue };
        let bytes = encode_ipv4_tcp(&rec.pkt, h, rec.dir, cap.node);
        let ns = rec.time.as_nanos();
        w.write_all(&((ns / 1_000_000_000) as u32).to_le_bytes())?;
        w.write_all(&((ns % 1_000_000_000) as u32).to_le_bytes())?;
        w.write_all(&(bytes.len() as u32).to_le_bytes())?; // incl_len (snapped)
        let orig = bytes.len() as u32 + h.payload_len;
        w.write_all(&orig.to_le_bytes())?;
        w.write_all(&bytes)?;
        written += 1;
    }
    Ok(written)
}

/// Encode the IPv4+TCP headers of one simulated packet.
fn encode_ipv4_tcp(pkt: &Packet, h: &TcpHeader, dir: Direction, tap: NodeId) -> Vec<u8> {
    // Determine addressing from the tap's point of view.
    let (src_ip, dst_ip, sport, dport) = match dir {
        Direction::Out => (
            node_ip(tap),
            node_ip(if pkt.dst == tap { pkt.src } else { pkt.dst }),
            TAP_PORT,
            flow_port(pkt.flow),
        ),
        Direction::In => (
            node_ip(pkt.src),
            node_ip(tap),
            flow_port(pkt.flow),
            TAP_PORT,
        ),
    };

    // TCP options: SACK blocks if present (kind 5), padded to 4 bytes.
    let mut options = Vec::new();
    let blocks: Vec<(u32, u32)> = h.sack.iter().flatten().copied().collect();
    if !blocks.is_empty() {
        options.push(1); // NOP
        options.push(1); // NOP
        options.push(5); // SACK
        options.push(2 + 8 * blocks.len() as u8);
        for (s, e) in &blocks {
            options.extend_from_slice(&s.to_be_bytes());
            options.extend_from_slice(&e.to_be_bytes());
        }
    }
    while options.len() % 4 != 0 {
        options.push(0);
    }
    let data_offset_words = 5 + options.len() / 4;

    let total_len = 20 + 20 + options.len(); // headers only (snapped)
    let ip_total = (20 + 20 + options.len() + h.payload_len as usize) as u16;

    let mut buf = Vec::with_capacity(total_len);
    // IPv4 header.
    buf.push(0x45);
    buf.push(0);
    buf.extend_from_slice(&ip_total.to_be_bytes());
    buf.extend_from_slice(&(pkt.id.0 as u16).to_be_bytes()); // identification
    buf.extend_from_slice(&0x4000u16.to_be_bytes()); // DF
    buf.push(64); // TTL
    buf.push(6); // TCP
    buf.extend_from_slice(&[0, 0]); // checksum placeholder
    buf.extend_from_slice(&src_ip);
    buf.extend_from_slice(&dst_ip);
    let csum = ipv4_checksum(&buf[..20]);
    buf[10..12].copy_from_slice(&csum.to_be_bytes());

    // TCP header.
    buf.extend_from_slice(&sport.to_be_bytes());
    buf.extend_from_slice(&dport.to_be_bytes());
    buf.extend_from_slice(&h.seq.to_be_bytes());
    buf.extend_from_slice(&h.ack.to_be_bytes());
    buf.push((data_offset_words as u8) << 4);
    let mut flags = 0u8;
    if h.flags.fin() {
        flags |= 0x01;
    }
    if h.flags.syn() {
        flags |= 0x02;
    }
    if h.flags.rst() {
        flags |= 0x04;
    }
    if h.flags.ack() {
        flags |= 0x10;
    }
    buf.push(flags);
    buf.extend_from_slice(&(h.window.min(65_535) as u16).to_be_bytes());
    buf.extend_from_slice(&[0, 0]); // TCP checksum not computed (like offload)
    buf.extend_from_slice(&[0, 0]); // urgent pointer
    buf.extend_from_slice(&options);
    buf
}

/// Error type for pcap parsing.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a pcap file / unsupported variant.
    Format(&'static str),
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap io error: {e}"),
            PcapError::Format(m) => write!(f, "pcap format error: {m}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Parse a pcap file produced by [`write_pcap`] back into a capture for
/// tap node `tap`. Only `LINKTYPE_RAW` IPv4/TCP files with the
/// nanosecond magic are supported.
pub fn read_pcap<R: Read>(mut r: R, tap: NodeId) -> Result<Capture, PcapError> {
    let mut global = [0u8; 24];
    r.read_exact(&mut global)?;
    let magic = crate::pcap_import::le_u32(&global, 0);
    if magic != PCAP_MAGIC_NANO {
        return Err(PcapError::Format("unsupported magic (need nanosecond LE)"));
    }
    let linktype = crate::pcap_import::le_u32(&global, 20);
    if linktype != LINKTYPE_RAW {
        return Err(PcapError::Format("unsupported linktype (need RAW=101)"));
    }

    let mut cap = Capture::new(tap);
    let mut pkt_hdr = [0u8; 16];
    let mut next_id = 0u64;
    loop {
        match r.read_exact(&mut pkt_hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = crate::pcap_import::le_u32(&pkt_hdr, 0) as u64;
        let ts_nsec = crate::pcap_import::le_u32(&pkt_hdr, 4) as u64;
        let incl = crate::pcap_import::le_u32(&pkt_hdr, 8) as usize;
        let orig = crate::pcap_import::le_u32(&pkt_hdr, 12);
        let mut data = vec![0u8; incl];
        r.read_exact(&mut data)?;
        if data.len() < 40 || data[0] >> 4 != 4 {
            continue; // not IPv4/TCP we understand
        }
        let ihl = ((data[0] & 0xF) as usize) * 4;
        if data[9] != 6 || data.len() < ihl + 20 {
            continue;
        }
        let src_ip = crate::pcap_import::ip4(&data, 12);
        let dst_ip = crate::pcap_import::ip4(&data, 16);
        let tcp = &data[ihl..];
        let sport = crate::pcap_import::be_u16(tcp, 0);
        let dport = crate::pcap_import::be_u16(tcp, 2);
        let seq = crate::pcap_import::be_u32(tcp, 4);
        let ack = crate::pcap_import::be_u32(tcp, 8);
        let doff = ((tcp[12] >> 4) as usize) * 4;
        let fbyte = tcp[13];
        let window = crate::pcap_import::be_u16(tcp, 14) as u32;

        let mut flags = TcpFlags::default();
        if fbyte & 0x01 != 0 {
            flags = flags | TcpFlags::FIN;
        }
        if fbyte & 0x02 != 0 {
            flags = flags | TcpFlags::SYN;
        }
        if fbyte & 0x04 != 0 {
            flags = flags | TcpFlags::RST;
        }
        if fbyte & 0x10 != 0 {
            flags = flags | TcpFlags::ACK;
        }

        // Parse options for SACK.
        let mut sack = NO_SACK;
        if doff > 20 && tcp.len() >= doff {
            let mut opts = &tcp[20..doff];
            while !opts.is_empty() {
                match opts[0] {
                    0 => break,
                    1 => opts = &opts[1..],
                    kind => {
                        let Some(&l) = opts.get(1) else {
                            return Err(PcapError::Format("TCP option missing its length byte"));
                        };
                        let len = l as usize;
                        if len < 2 || len > opts.len() {
                            return Err(PcapError::Format(
                                "TCP option with invalid declared length",
                            ));
                        }
                        if kind == 5 {
                            let nblocks = ((len - 2) / 8).min(3);
                            for (i, slot) in sack.iter_mut().enumerate().take(nblocks) {
                                let o = 2 + i * 8;
                                *slot = Some((
                                    crate::pcap_import::be_u32(opts, o),
                                    crate::pcap_import::be_u32(opts, o + 4),
                                ));
                            }
                        }
                        opts = &opts[len..];
                    }
                }
            }
        }

        let payload_len = orig.saturating_sub((ihl + doff) as u32);
        let ip_of =
            |ip: [u8; 4]| NodeId(((ip[1] as u32) << 16) | ((ip[2] as u32) << 8) | ip[3] as u32);
        let tap_ip = node_ip(tap);
        let dir = if src_ip == tap_ip {
            Direction::Out
        } else {
            Direction::In
        };
        let flow = FlowId(match dir {
            Direction::Out => (dport as u32).wrapping_sub(10_000),
            Direction::In => (sport as u32).wrapping_sub(10_000),
        });
        let time = SimTime::from_nanos(ts_sec * 1_000_000_000 + ts_nsec);
        let (src, dst) = (ip_of(src_ip), ip_of(dst_ip));
        cap.records.push(csig_netsim::PacketRecord {
            time,
            dir,
            pkt: Packet {
                id: PacketId(next_id),
                flow,
                src,
                dst,
                size: payload_len + TCP_HEADER_BYTES,
                sent_at: time,
                kind: PacketKind::Tcp(TcpHeader {
                    seq,
                    ack,
                    flags,
                    payload_len,
                    window,
                    sack,
                }),
            },
        });
        next_id += 1;
    }
    Ok(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_record(
        dir: Direction,
        t_ns: u64,
        seq: u32,
        ack: u32,
        len: u32,
        flags: TcpFlags,
        sack: csig_netsim::SackBlocks,
    ) -> csig_netsim::PacketRecord {
        let (src, dst) = match dir {
            Direction::Out => (NodeId(0), NodeId(1)),
            Direction::In => (NodeId(1), NodeId(0)),
        };
        csig_netsim::PacketRecord {
            time: SimTime::from_nanos(t_ns),
            dir,
            pkt: Packet {
                id: PacketId(3),
                flow: FlowId(42),
                src,
                dst,
                size: len + TCP_HEADER_BYTES,
                sent_at: SimTime::from_nanos(t_ns),
                kind: PacketKind::Tcp(TcpHeader {
                    seq,
                    ack,
                    flags,
                    payload_len: len,
                    window: 65_000,
                    sack,
                }),
            },
        }
    }

    #[test]
    fn roundtrip_preserves_tcp_fields() {
        let mut cap = Capture::new(NodeId(0));
        cap.records.push(mk_record(
            Direction::Out,
            1_234_567_891,
            1000,
            2000,
            1448,
            TcpFlags::ACK,
            NO_SACK,
        ));
        cap.records.push(mk_record(
            Direction::In,
            2_000_000_003,
            2000,
            2448,
            0,
            TcpFlags::ACK,
            [Some((3000, 4448)), Some((6000, 7448)), None],
        ));
        let mut buf = Vec::new();
        let n = write_pcap(&cap, &mut buf).unwrap();
        assert_eq!(n, 2);

        let parsed = read_pcap(&buf[..], NodeId(0)).unwrap();
        assert_eq!(parsed.records.len(), 2);
        for (orig, got) in cap.records.iter().zip(&parsed.records) {
            assert_eq!(orig.time, got.time);
            assert_eq!(orig.dir, got.dir);
            let (oh, gh) = (orig.pkt.tcp().unwrap(), got.pkt.tcp().unwrap());
            assert_eq!(oh.seq, gh.seq);
            assert_eq!(oh.ack, gh.ack);
            assert_eq!(oh.flags, gh.flags);
            assert_eq!(oh.payload_len, gh.payload_len);
            assert_eq!(oh.sack, gh.sack);
            assert_eq!(orig.pkt.flow, got.pkt.flow);
        }
    }

    #[test]
    fn non_tcp_packets_are_skipped_on_export() {
        let mut cap = Capture::new(NodeId(0));
        cap.records.push(csig_netsim::PacketRecord {
            time: SimTime::ZERO,
            dir: Direction::Out,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(0),
                src: NodeId(0),
                dst: NodeId(1),
                size: 100,
                sent_at: SimTime::ZERO,
                kind: PacketKind::Background,
            },
        });
        let mut buf = Vec::new();
        assert_eq!(write_pcap(&cap, &mut buf).unwrap(), 0);
        assert_eq!(buf.len(), 24); // just the global header
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 24];
        assert!(matches!(
            read_pcap(&buf[..], NodeId(0)),
            Err(PcapError::Format(_))
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let buf = [0u8; 3];
        assert!(matches!(
            read_pcap(&buf[..], NodeId(0)),
            Err(PcapError::Io(_))
        ));
    }

    #[test]
    fn ipv4_checksum_known_vector() {
        // Example from RFC 1071 style: verify checksum verifies itself.
        let mut hdr = vec![
            0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
            0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        let sum = ipv4_checksum(&hdr);
        hdr[10..12].copy_from_slice(&sum.to_be_bytes());
        // Re-checksumming a valid header yields zero.
        assert_eq!(ipv4_checksum(&hdr), 0);
    }

    #[test]
    fn node_addressing_is_injective_for_small_ids() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..10_000u32 {
            assert!(seen.insert(node_ip(NodeId(n))));
        }
    }
}
