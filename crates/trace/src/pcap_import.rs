//! Import of *foreign* pcap files (real `tcpdump` output), beyond the
//! round-trip format of [`crate::pcap`].
//!
//! Supports little-endian microsecond (`0xA1B2C3D4`) and nanosecond
//! (`0xA1B23C4D`) magics with `LINKTYPE_RAW` (101) or
//! `LINKTYPE_ETHERNET` (1) framing, IPv4/TCP with options (SACK blocks
//! are decoded). Packets are grouped into flows by 4-tuple and
//! converted into a server-side [`Capture`]: the "server" endpoint is
//! either given explicitly (by port) or inferred as the endpoint that
//! sent the most payload bytes.
//!
//! Malformed TCP packets are rejected with [`ImportError::Format`]
//! rather than silently repaired: an option with a declared length of 0
//! or 1, an option whose length points past the header, a missing
//! option length byte, and a data offset beyond the captured bytes are
//! all fatal, because the rest of the header cannot be delimited
//! trustworthily. Non-TCP and non-IPv4 frames are still skipped.

use csig_netsim::{
    Capture, Direction, FlowId, NodeId, Packet, PacketId, PacketKind, SackBlocks, SimTime,
    TcpFlags, TcpHeader, NO_SACK, TCP_HEADER_BYTES,
};
use std::collections::HashMap;
use std::io::{self, Read};

const MAGIC_MICRO: u32 = 0xA1B2_C3D4;
const MAGIC_NANO: u32 = 0xA1B2_3C4D;
const LINKTYPE_ETHERNET: u32 = 1;
const LINKTYPE_RAW: u32 = 101;

/// A TCP packet as parsed from a pcap file, endpoint-agnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawTcpPacket {
    /// Capture timestamp (nanoseconds since the first packet's second).
    pub time: SimTime,
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source TCP port.
    pub sport: u16,
    /// Destination TCP port.
    pub dport: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Payload length (from the IP total length; falls back to captured
    /// length when the IP header lies, as some offloaded captures do).
    pub payload_len: u32,
    /// Advertised window (unscaled).
    pub window: u32,
    /// SACK blocks, if present.
    pub sack: SackBlocks,
}

/// Errors importing a foreign pcap.
#[derive(Debug)]
pub enum ImportError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Unsupported or corrupt file structure.
    Format(&'static str),
}

impl From<io::Error> for ImportError {
    fn from(e: io::Error) -> Self {
        ImportError::Io(e)
    }
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "pcap import io error: {e}"),
            ImportError::Format(m) => write!(f, "pcap import format error: {m}"),
        }
    }
}

impl std::error::Error for ImportError {}

// Fixed-width reads at a caller-bounds-checked offset. Plain indexing
// keeps these panic-free for every call site (each is preceded by a
// length check) without `expect` on an infallible `try_into`. Shared
// with the round-trip reader in [`crate::pcap`].
pub(crate) fn le_u32(b: &[u8], o: usize) -> u32 {
    u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]])
}

pub(crate) fn be_u16(b: &[u8], o: usize) -> u16 {
    u16::from_be_bytes([b[o], b[o + 1]])
}

pub(crate) fn be_u32(b: &[u8], o: usize) -> u32 {
    u32::from_be_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]])
}

pub(crate) fn ip4(b: &[u8], o: usize) -> [u8; 4] {
    [b[o], b[o + 1], b[o + 2], b[o + 3]]
}

/// Parse every IPv4/TCP packet out of a pcap stream; non-TCP packets
/// are skipped silently.
pub fn parse_pcap_tcp<R: Read>(mut r: R) -> Result<Vec<RawTcpPacket>, ImportError> {
    let mut global = [0u8; 24];
    r.read_exact(&mut global)?;
    let magic = le_u32(&global, 0);
    let nanos_per_frac = match magic {
        MAGIC_MICRO => 1_000u64,
        MAGIC_NANO => 1,
        _ => return Err(ImportError::Format("unsupported magic (need LE pcap)")),
    };
    let linktype = le_u32(&global, 20);
    let l2_skip = match linktype {
        LINKTYPE_RAW => 0usize,
        LINKTYPE_ETHERNET => 14,
        _ => {
            return Err(ImportError::Format(
                "unsupported linktype (need RAW or EN10MB)",
            ))
        }
    };

    let mut packets = Vec::new();
    let mut hdr = [0u8; 16];
    let mut base_sec: Option<u64> = None;
    loop {
        match r.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = le_u32(&hdr, 0) as u64;
        let ts_frac = le_u32(&hdr, 4) as u64;
        let incl = le_u32(&hdr, 8) as usize;
        let orig = le_u32(&hdr, 12);
        if incl > 256 * 1024 {
            return Err(ImportError::Format("implausible packet length"));
        }
        let mut data = vec![0u8; incl];
        r.read_exact(&mut data)?;
        // Timestamps relative to the first packet's second keeps SimTime
        // in range for multi-year epoch values.
        let base = *base_sec.get_or_insert(ts_sec);
        let time = SimTime::from_nanos(
            ts_sec.saturating_sub(base) * 1_000_000_000 + ts_frac * nanos_per_frac,
        );

        let Some(ip) = data.get(l2_skip..) else {
            continue;
        };
        if linktype == LINKTYPE_ETHERNET {
            // Require the IPv4 ethertype.
            if data.len() < 14 || data[12] != 0x08 || data[13] != 0x00 {
                continue;
            }
        }
        if ip.len() < 40 || ip[0] >> 4 != 4 {
            continue;
        }
        let ihl = ((ip[0] & 0xF) as usize) * 4;
        if ip[9] != 6 || ip.len() < ihl + 20 {
            continue;
        }
        let ip_total = be_u16(ip, 2) as u32;
        let src_ip = ip4(ip, 12);
        let dst_ip = ip4(ip, 16);
        let tcp = &ip[ihl..];
        let doff = ((tcp[12] >> 4) as usize) * 4;
        if doff < 20 || tcp.len() < 20 {
            continue;
        }
        let fbyte = tcp[13];
        let mut flags = TcpFlags::default();
        if fbyte & 0x01 != 0 {
            flags = flags | TcpFlags::FIN;
        }
        if fbyte & 0x02 != 0 {
            flags = flags | TcpFlags::SYN;
        }
        if fbyte & 0x04 != 0 {
            flags = flags | TcpFlags::RST;
        }
        if fbyte & 0x10 != 0 {
            flags = flags | TcpFlags::ACK;
        }
        if tcp.len() < doff {
            return Err(ImportError::Format("TCP header overruns captured frame"));
        }
        let mut sack = NO_SACK;
        {
            let mut opts = &tcp[20..doff];
            while !opts.is_empty() {
                let kind = opts[0];
                match kind {
                    0 => break,
                    1 => {
                        opts = &opts[1..];
                        continue;
                    }
                    _ => {}
                }
                // Every other option carries a length byte covering the
                // whole option. A declared length of 0 or 1 (or one
                // pointing past the header) is not recoverable — the
                // rest of the option area cannot be delimited — so the
                // packet is rejected rather than silently mis-parsed.
                let Some(&l) = opts.get(1) else {
                    return Err(ImportError::Format("TCP option missing its length byte"));
                };
                let len = l as usize;
                if len < 2 {
                    return Err(ImportError::Format("TCP option with declared length < 2"));
                }
                if len > opts.len() {
                    return Err(ImportError::Format("TCP option overruns the header"));
                }
                if kind == 5 {
                    let nblocks = ((len - 2) / 8).min(3);
                    for (i, slot) in sack.iter_mut().enumerate().take(nblocks) {
                        let o = 2 + i * 8;
                        if o + 8 <= len {
                            *slot = Some((be_u32(opts, o), be_u32(opts, o + 4)));
                        }
                    }
                }
                opts = &opts[len..];
            }
        }
        // Payload from the IP total length; if zero/implausible (TSO
        // offload writes 0), fall back to the original wire length.
        let payload_len = if ip_total as usize >= ihl + doff {
            ip_total - (ihl + doff) as u32
        } else {
            orig.saturating_sub((l2_skip + ihl + doff) as u32)
        };
        packets.push(RawTcpPacket {
            time,
            src_ip,
            dst_ip,
            sport: be_u16(tcp, 0),
            dport: be_u16(tcp, 2),
            seq: be_u32(tcp, 4),
            ack: be_u32(tcp, 8),
            flags,
            payload_len,
            window: be_u16(tcp, 14) as u32,
            sack,
        });
    }
    Ok(packets)
}

/// How to pick the server (data-sending, tap-side) endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerSelector {
    /// The endpoint using this TCP port.
    Port(u16),
    /// The endpoint that transmitted the most payload bytes.
    MostBytesSent,
}

/// Group parsed packets into a server-side [`Capture`]: one synthetic
/// flow id per 4-tuple, `Out` for packets the server endpoint sent.
pub fn assemble_capture(packets: &[RawTcpPacket], server: ServerSelector) -> Capture {
    // Identify the server endpoint.
    let server_key: Option<([u8; 4], u16)> = match server {
        ServerSelector::Port(p) => packets.iter().find_map(|pkt| {
            if pkt.sport == p {
                Some((pkt.src_ip, pkt.sport))
            } else if pkt.dport == p {
                Some((pkt.dst_ip, pkt.dport))
            } else {
                None
            }
        }),
        ServerSelector::MostBytesSent => {
            let mut sent: HashMap<([u8; 4], u16), u64> = HashMap::new();
            for pkt in packets {
                *sent.entry((pkt.src_ip, pkt.sport)).or_default() += pkt.payload_len as u64;
            }
            sent.into_iter().max_by_key(|&(_, b)| b).map(|(k, _)| k)
        }
    };
    let Some(server_key) = server_key else {
        return Capture::new(NodeId(0));
    };

    let mut cap = Capture::new(NodeId(0));
    let mut flow_ids: HashMap<([u8; 4], u16, [u8; 4], u16), FlowId> = HashMap::new();
    let mut next_flow = 0u32;
    let mut next_id = 0u64;
    for pkt in packets {
        let from_server = (pkt.src_ip, pkt.sport) == server_key;
        let to_server = (pkt.dst_ip, pkt.dport) == server_key;
        if !from_server && !to_server {
            continue; // unrelated traffic in the capture
        }
        // Canonical tuple: (client, server) ordering.
        let tuple = if from_server {
            (pkt.dst_ip, pkt.dport, pkt.src_ip, pkt.sport)
        } else {
            (pkt.src_ip, pkt.sport, pkt.dst_ip, pkt.dport)
        };
        let flow = *flow_ids.entry(tuple).or_insert_with(|| {
            let f = FlowId(next_flow);
            next_flow += 1;
            f
        });
        let dir = if from_server {
            Direction::Out
        } else {
            Direction::In
        };
        cap.records.push(csig_netsim::PacketRecord {
            time: pkt.time,
            dir,
            pkt: Packet {
                id: PacketId(next_id),
                flow,
                src: NodeId(u32::from(from_server)),
                dst: NodeId(u32::from(!from_server)),
                size: pkt.payload_len + TCP_HEADER_BYTES,
                sent_at: pkt.time,
                kind: PacketKind::Tcp(TcpHeader {
                    seq: pkt.seq,
                    ack: pkt.ack,
                    flags: pkt.flags,
                    payload_len: pkt.payload_len,
                    window: pkt.window,
                    sack: pkt.sack,
                }),
            },
        });
        next_id += 1;
    }
    cap
}

/// Convenience: parse + assemble in one call.
pub fn import_pcap<R: Read>(r: R, server: ServerSelector) -> Result<Capture, ImportError> {
    let packets = parse_pcap_tcp(r)?;
    Ok(assemble_capture(&packets, server))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a microsecond-magic Ethernet pcap with hand-rolled bytes.
    fn synthetic_ethernet_pcap() -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_MICRO.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0i32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());

        // One data packet server(10.0.0.1:5001) → client(10.0.0.2:40000)
        // and one pure ACK back.
        for (src, sport, dst, dport, seq, ack, payload, fl, t_us) in [
            (
                [10, 0, 0, 1],
                5001u16,
                [10, 0, 0, 2],
                40_000u16,
                1000u32,
                1u32,
                100u32,
                0x10u8,
                500u64,
            ),
            (
                [10, 0, 0, 2],
                40_000,
                [10, 0, 0, 1],
                5001,
                1,
                1100,
                0,
                0x10,
                40_500,
            ),
        ] {
            let mut frame = Vec::new();
            // Ethernet: dst mac, src mac, ethertype IPv4.
            frame.extend_from_slice(&[0u8; 12]);
            frame.extend_from_slice(&[0x08, 0x00]);
            // IPv4 header.
            frame.push(0x45);
            frame.push(0);
            frame.extend_from_slice(&((20 + 20 + payload) as u16).to_be_bytes());
            frame.extend_from_slice(&[0, 0, 0x40, 0, 64, 6, 0, 0]);
            frame.extend_from_slice(&src);
            frame.extend_from_slice(&dst);
            // TCP header.
            frame.extend_from_slice(&sport.to_be_bytes());
            frame.extend_from_slice(&dport.to_be_bytes());
            frame.extend_from_slice(&seq.to_be_bytes());
            frame.extend_from_slice(&ack.to_be_bytes());
            frame.push(5 << 4);
            frame.push(fl);
            frame.extend_from_slice(&65535u16.to_be_bytes());
            frame.extend_from_slice(&[0, 0, 0, 0]);
            // Payload bytes (zeros).
            frame.extend_from_slice(&vec![0u8; payload as usize]);

            buf.extend_from_slice(&((t_us / 1_000_000) as u32).to_le_bytes());
            buf.extend_from_slice(&((t_us % 1_000_000) as u32).to_le_bytes());
            buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            buf.extend_from_slice(&frame);
        }
        buf
    }

    #[test]
    fn parses_microsecond_ethernet_captures() {
        let buf = synthetic_ethernet_pcap();
        let packets = parse_pcap_tcp(&buf[..]).unwrap();
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].sport, 5001);
        assert_eq!(packets[0].payload_len, 100);
        assert_eq!(packets[0].time, SimTime::from_micros(500));
        assert_eq!(packets[1].payload_len, 0);
        assert_eq!(packets[1].ack, 1100);
        // Microsecond fraction scaled to nanoseconds.
        assert_eq!(packets[1].time, SimTime::from_micros(40_500));
    }

    #[test]
    fn assembles_server_side_capture_by_port() {
        let buf = synthetic_ethernet_pcap();
        let packets = parse_pcap_tcp(&buf[..]).unwrap();
        let cap = assemble_capture(&packets, ServerSelector::Port(5001));
        assert_eq!(cap.records.len(), 2);
        assert_eq!(cap.records[0].dir, Direction::Out);
        assert_eq!(cap.records[1].dir, Direction::In);
        assert_eq!(cap.records[0].pkt.flow, cap.records[1].pkt.flow);
    }

    #[test]
    fn server_inference_by_bytes_sent() {
        let buf = synthetic_ethernet_pcap();
        let packets = parse_pcap_tcp(&buf[..]).unwrap();
        // The 100-byte sender (port 5001) must be chosen automatically.
        let cap = assemble_capture(&packets, ServerSelector::MostBytesSent);
        assert_eq!(cap.records[0].dir, Direction::Out);
    }

    #[test]
    fn native_roundtrip_format_also_imports() {
        // Files written by crate::pcap (nanosecond, LINKTYPE_RAW) parse
        // through the generic importer too.
        use csig_netsim::{Capture, Packet, PacketKind};
        let mut cap = Capture::new(NodeId(3));
        cap.records.push(csig_netsim::PacketRecord {
            time: SimTime::from_millis(7),
            dir: Direction::Out,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(9),
                src: NodeId(3),
                dst: NodeId(4),
                size: 100 + TCP_HEADER_BYTES,
                sent_at: SimTime::from_millis(7),
                kind: PacketKind::Tcp(TcpHeader {
                    seq: 5,
                    ack: 6,
                    flags: TcpFlags::ACK,
                    payload_len: 100,
                    window: 1000,
                    sack: NO_SACK,
                }),
            },
        });
        let mut buf = Vec::new();
        crate::pcap::write_pcap(&cap, &mut buf).unwrap();
        let packets = parse_pcap_tcp(&buf[..]).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].seq, 5);
        assert_eq!(packets[0].payload_len, 100);
    }

    /// A nanosecond/RAW pcap holding one TCP packet whose option area
    /// is exactly `opts` (must be padded to a multiple of 4 bytes).
    fn pcap_with_options(opts: &[u8]) -> Vec<u8> {
        assert!(opts.len().is_multiple_of(4));
        let doff = 20 + opts.len();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NANO.to_le_bytes());
        buf.extend_from_slice(&[2, 0, 4, 0]);
        buf.extend_from_slice(&[0u8; 12]);
        buf.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());

        let mut frame = Vec::new();
        frame.push(0x45);
        frame.push(0);
        frame.extend_from_slice(&((20 + doff) as u16).to_be_bytes());
        frame.extend_from_slice(&[0, 0, 0x40, 0, 64, 6, 0, 0]);
        frame.extend_from_slice(&[10, 0, 0, 1]);
        frame.extend_from_slice(&[10, 0, 0, 2]);
        frame.extend_from_slice(&5001u16.to_be_bytes());
        frame.extend_from_slice(&40_000u16.to_be_bytes());
        frame.extend_from_slice(&1000u32.to_be_bytes());
        frame.extend_from_slice(&1u32.to_be_bytes());
        frame.push(((doff / 4) as u8) << 4);
        frame.push(0x10);
        frame.extend_from_slice(&65535u16.to_be_bytes());
        frame.extend_from_slice(&[0, 0, 0, 0]);
        frame.extend_from_slice(opts);

        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&frame);
        buf
    }

    #[test]
    fn decodes_valid_sack_blocks() {
        // NOP, NOP, SACK(len 10) with one block [7, 19].
        let mut opts = vec![1, 1, 5, 10];
        opts.extend_from_slice(&7u32.to_be_bytes());
        opts.extend_from_slice(&19u32.to_be_bytes());
        let packets = parse_pcap_tcp(&pcap_with_options(&opts)[..]).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].sack[0], Some((7, 19)));
        assert_eq!(packets[0].sack[1], None);
    }

    #[test]
    fn rejects_zero_and_one_length_tcp_options() {
        // A declared option length of 0 or 1 cannot delimit the rest of
        // the option area; the old importer clamped it to 2 silently.
        for bad_len in [0u8, 1] {
            let err = parse_pcap_tcp(&pcap_with_options(&[8, bad_len, 0, 0])[..]).unwrap_err();
            assert!(
                matches!(err, ImportError::Format(m) if m.contains("declared length")),
                "len {bad_len}: {err}"
            );
        }
        // SACK with a bad declared length is rejected the same way.
        let err = parse_pcap_tcp(&pcap_with_options(&[5, 1, 0, 0])[..]).unwrap_err();
        assert!(matches!(err, ImportError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_tcp_options() {
        // Length byte points past the end of the option area…
        let err = parse_pcap_tcp(&pcap_with_options(&[5, 34, 0, 0])[..]).unwrap_err();
        assert!(
            matches!(err, ImportError::Format(m) if m.contains("overruns")),
            "{err}"
        );
        // …or the option area ends before the length byte (EOL padding
        // after a bare kind would be mis-read as length 0).
        let err = parse_pcap_tcp(&pcap_with_options(&[1, 1, 1, 8])[..]).unwrap_err();
        assert!(
            matches!(err, ImportError::Format(m) if m.contains("length byte")),
            "{err}"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse_pcap_tcp(&[0u8; 24][..]),
            Err(ImportError::Format(_))
        ));
        assert!(matches!(
            parse_pcap_tcp(&[0u8; 3][..]),
            Err(ImportError::Io(_))
        ));
    }

    proptest::proptest! {
        /// Arbitrary bytes never panic the importer — they error or
        /// parse to some packet list.
        #[test]
        fn prop_importer_is_total(data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..2048)) {
            let _ = parse_pcap_tcp(&data[..]);
        }

        /// A valid header followed by arbitrary bytes never panics.
        #[test]
        fn prop_importer_survives_corrupt_bodies(tail in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..2048)) {
            let mut buf = Vec::new();
            buf.extend_from_slice(&MAGIC_MICRO.to_le_bytes());
            buf.extend_from_slice(&[2, 0, 4, 0]);
            buf.extend_from_slice(&[0u8; 12]);
            buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
            buf.extend_from_slice(&tail);
            let _ = parse_pcap_tcp(&buf[..]);
        }
    }

    #[test]
    fn empty_capture_when_no_server_match() {
        let buf = synthetic_ethernet_pcap();
        let packets = parse_pcap_tcp(&buf[..]).unwrap();
        let cap = assemble_capture(&packets, ServerSelector::Port(9999));
        assert!(cap.is_empty());
    }
}
