//! Trace-based flow-RTT extraction — the `tshark` step of the paper's
//! pipeline.
//!
//! From a server-side capture, each downstream data segment is matched
//! with the first cumulative ACK that covers it; the time difference is
//! one flow-RTT sample. Karn's rule is applied: once any part of a
//! sequence range is retransmitted, samples for that range are
//! discarded (the ACK can't be attributed to a specific transmission).

use crate::flow::{FlowTrace, OffsetTracker};
use csig_netsim::{Direction, PacketRecord, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One RTT sample extracted from the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RttSample {
    /// Arrival time of the acknowledging packet.
    pub at: SimTime,
    /// Measured round-trip time.
    pub rtt: SimDuration,
    /// Stream offset (exclusive end) of the acknowledged segment.
    pub seq_end: u64,
}

/// An outstanding data segment awaiting acknowledgment.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    start: u64,
    end: u64,
    sent_at: SimTime,
    tainted: bool,
}

/// Incremental flow-RTT extractor: the streaming core behind
/// [`extract_rtt_samples`].
///
/// Feed it one (server-side) [`PacketRecord`] of a single flow at a
/// time; each `In` cumulative ACK that cleanly retires outstanding data
/// yields at most one [`RttSample`]. State is bounded by the flow's
/// in-flight window (the `outstanding` list), not by trace length.
///
/// Offsets are anchored at the first `Out` SYN's ISS, or at the first
/// outgoing data packet's sequence number if the tap missed the
/// handshake — the same anchoring the batch function recovers with its
/// ISN pre-pass, provided the SYN (when captured) precedes the data,
/// which holds for any well-formed capture.
#[derive(Debug, Clone, Default)]
pub struct RttExtractor {
    out_tracker: Option<OffsetTracker>,
    outstanding: Vec<Outstanding>,
    max_sent_end: u64,
}

impl RttExtractor {
    /// A fresh extractor (no records seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one record; an `In` ACK may yield a sample.
    pub fn push(&mut self, rec: &PacketRecord) -> Option<RttSample> {
        let h = rec.pkt.tcp()?;
        match rec.dir {
            Direction::Out => {
                if h.flags.syn() {
                    // Anchor offsets at the local ISS.
                    if self.out_tracker.is_none() {
                        self.out_tracker = Some(OffsetTracker::new(h.seq));
                    }
                    return None;
                }
                if h.payload_len == 0 {
                    return None;
                }
                let tracker = self.out_tracker.get_or_insert_with(|| {
                    // No SYN seen: anchor offsets at this first data seq.
                    OffsetTracker::new(h.seq.wrapping_sub(1))
                });
                let start = tracker.offset(h.seq);
                let end = start + h.payload_len as u64;
                if start < self.max_sent_end {
                    // Retransmission: taint every overlapping outstanding
                    // range (Karn) and do not add a fresh entry — the
                    // eventual ACK cannot be attributed.
                    for o in self.outstanding.iter_mut() {
                        if o.start < end && o.end > start {
                            o.tainted = true;
                        }
                    }
                } else {
                    self.outstanding.push(Outstanding {
                        start,
                        end,
                        sent_at: rec.time,
                        tainted: false,
                    });
                    self.max_sent_end = end;
                }
                None
            }
            Direction::In => {
                if !h.flags.ack() {
                    return None;
                }
                // Anchor ack numbers in the same offset space as the
                // data (the SYN's ISS, or the first-data fallback).
                let tr = self.out_tracker.as_ref()?; // no data seen yet
                let ack_off =
                    csig_tcp::seq::offset_of(tr.base().wrapping_add(1), h.ack, self.max_sent_end);
                // Retire all fully covered segments; the newest clean one
                // yields the sample for this ACK.
                let mut best: Option<Outstanding> = None;
                self.outstanding.retain(|o| {
                    if o.end <= ack_off {
                        if !o.tainted {
                            match best {
                                Some(b) if b.end >= o.end => {}
                                _ => best = Some(*o),
                            }
                        }
                        false
                    } else {
                        true
                    }
                });
                best.map(|o| RttSample {
                    at: rec.time,
                    rtt: rec.time.saturating_since(o.sent_at),
                    seq_end: o.end,
                })
            }
        }
    }

    /// Number of unacknowledged segments currently tracked (the only
    /// unbounded-looking state; in practice bounded by the in-flight
    /// window).
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }
}

/// Extract downstream flow-RTT samples from a (server-side) flow trace.
///
/// Only `Out` data segments and `In` pure/cumulative ACKs are
/// consulted. Returns samples in ACK-arrival order. If the capture
/// missed the SYN, the first outgoing data packet's sequence number is
/// used as the offset base instead.
///
/// Thin wrapper over [`RttExtractor`]: replays the trace through the
/// streaming core.
pub fn extract_rtt_samples(trace: &FlowTrace) -> Vec<RttSample> {
    let mut extractor = RttExtractor::new();
    trace
        .records
        .iter()
        .filter_map(|rec| extractor.push(rec))
        .collect()
}

/// Incremental cumulative-acknowledgment accountant: the streaming core
/// behind [`bytes_acked_by`].
///
/// Tracks the highest cumulative acknowledgment offset (payload bytes
/// delivered) of one flow, capped below the FIN's sequence slot.
/// Accounting starts at the `Out` SYN — without a captured local SYN it
/// stays at zero, matching the batch function's behavior.
#[derive(Debug, Clone, Default)]
pub struct AckAccountant {
    out_tracker: Option<OffsetTracker>,
    max_ack: u64,
    fin_cap: Option<u64>,
}

impl AckAccountant {
    /// A fresh accountant (no records seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one record.
    pub fn push(&mut self, rec: &PacketRecord) {
        let Some(h) = rec.pkt.tcp() else { return };
        match rec.dir {
            Direction::Out => {
                if h.flags.syn() {
                    if self.out_tracker.is_none() {
                        self.out_tracker = Some(OffsetTracker::new(h.seq));
                    }
                    return;
                }
                let Some(tracker) = self.out_tracker.as_mut() else {
                    return; // no local SYN: accounting never starts
                };
                if h.flags.fin() {
                    let start = tracker.offset(h.seq);
                    self.fin_cap = Some(start + h.payload_len as u64);
                } else if h.payload_len > 0 {
                    let _ = tracker.offset(h.seq);
                }
            }
            Direction::In => {
                if !h.flags.ack() {
                    return;
                }
                let Some(tracker) = self.out_tracker.as_ref() else {
                    return;
                };
                let mut off =
                    csig_tcp::seq::offset_of(tracker.base().wrapping_add(1), h.ack, self.max_ack);
                if let Some(cap) = self.fin_cap {
                    off = off.min(cap);
                }
                if off > self.max_ack {
                    self.max_ack = off;
                }
            }
        }
    }

    /// Highest cumulative acknowledgment offset seen so far.
    pub fn bytes_acked(&self) -> u64 {
        self.max_ack
    }
}

/// Highest cumulative acknowledgment offset observed in the trace up to
/// (and including) `until`, i.e. payload bytes delivered by then.
///
/// Thin wrapper over [`AckAccountant`]: replays the trace prefix
/// through the streaming core.
pub fn bytes_acked_by(trace: &FlowTrace, until: SimTime) -> u64 {
    let mut acct = AckAccountant::new();
    for rec in &trace.records {
        if rec.time > until {
            break;
        }
        acct.push(rec);
    }
    acct.bytes_acked()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowTrace;
    use csig_netsim::{FlowId, NodeId, Packet, PacketId, PacketKind, TcpFlags, TcpHeader, NO_SACK};

    const ISS: u32 = 5000;
    const RISS: u32 = 9000;

    fn tcp_rec(
        dir: Direction,
        t_us: u64,
        seq: u32,
        ack: u32,
        len: u32,
        flags: TcpFlags,
    ) -> csig_netsim::PacketRecord {
        csig_netsim::PacketRecord {
            time: SimTime::from_micros(t_us),
            dir,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(7),
                src: NodeId(0),
                dst: NodeId(1),
                size: 52 + len,
                sent_at: SimTime::from_micros(t_us),
                kind: PacketKind::Tcp(TcpHeader {
                    seq,
                    ack,
                    flags,
                    payload_len: len,
                    window: 65535,
                    sack: NO_SACK,
                }),
            },
        }
    }

    fn handshake() -> Vec<csig_netsim::PacketRecord> {
        vec![
            tcp_rec(Direction::In, 0, RISS, 0, 0, TcpFlags::SYN),
            tcp_rec(
                Direction::Out,
                10,
                ISS,
                RISS.wrapping_add(1),
                0,
                TcpFlags::SYN | TcpFlags::ACK,
            ),
            tcp_rec(
                Direction::In,
                20,
                RISS.wrapping_add(1),
                ISS.wrapping_add(1),
                0,
                TcpFlags::ACK,
            ),
        ]
    }

    fn data(t_us: u64, off: u32, len: u32) -> csig_netsim::PacketRecord {
        tcp_rec(
            Direction::Out,
            t_us,
            ISS.wrapping_add(1).wrapping_add(off),
            RISS.wrapping_add(1),
            len,
            TcpFlags::ACK,
        )
    }

    fn ack(t_us: u64, ack_off: u32) -> csig_netsim::PacketRecord {
        tcp_rec(
            Direction::In,
            t_us,
            RISS.wrapping_add(1),
            ISS.wrapping_add(1).wrapping_add(ack_off),
            0,
            TcpFlags::ACK,
        )
    }

    fn trace(records: Vec<csig_netsim::PacketRecord>) -> FlowTrace {
        FlowTrace {
            flow: FlowId(7),
            records,
        }
    }

    #[test]
    fn simple_segment_ack_pairing() {
        let mut recs = handshake();
        recs.push(data(1_000, 0, 1000));
        recs.push(ack(41_000, 1000)); // 40 ms later
        recs.push(data(42_000, 1000, 1000));
        recs.push(ack(92_000, 2000)); // 50 ms later
        let samples = extract_rtt_samples(&trace(recs));
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].rtt, SimDuration::from_millis(40));
        assert_eq!(samples[0].seq_end, 1000);
        assert_eq!(samples[1].rtt, SimDuration::from_millis(50));
    }

    #[test]
    fn cumulative_ack_yields_one_sample_from_newest_segment() {
        let mut recs = handshake();
        recs.push(data(1_000, 0, 1000));
        recs.push(data(2_000, 1000, 1000));
        recs.push(data(3_000, 2000, 1000));
        recs.push(ack(53_000, 3000)); // covers all three
        let samples = extract_rtt_samples(&trace(recs));
        assert_eq!(samples.len(), 1);
        // Newest segment sent at 3 ms, acked at 53 ms → 50 ms.
        assert_eq!(samples[0].rtt, SimDuration::from_millis(50));
        assert_eq!(samples[0].seq_end, 3000);
    }

    #[test]
    fn karn_discards_retransmitted_ranges() {
        let mut recs = handshake();
        recs.push(data(1_000, 0, 1000));
        recs.push(data(2_000, 1000, 1000));
        // Retransmission of the first segment.
        recs.push(data(300_000, 0, 1000));
        recs.push(ack(350_000, 2000));
        let samples = extract_rtt_samples(&trace(recs));
        // Segment 1 tainted; segment 2 clean and newest → 1 sample.
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].seq_end, 2000);
        assert_eq!(samples[0].rtt, SimDuration::from_micros(348_000));
    }

    #[test]
    fn duplicate_acks_produce_no_samples() {
        let mut recs = handshake();
        recs.push(data(1_000, 0, 1000));
        recs.push(ack(41_000, 1000));
        recs.push(ack(42_000, 1000));
        recs.push(ack(43_000, 1000));
        let samples = extract_rtt_samples(&trace(recs));
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn bytes_acked_by_tracks_cumulative_ack() {
        let mut recs = handshake();
        recs.push(data(1_000, 0, 1000));
        recs.push(ack(41_000, 1000));
        recs.push(data(42_000, 1000, 1000));
        recs.push(ack(92_000, 2000));
        let t = trace(recs);
        assert_eq!(bytes_acked_by(&t, SimTime::from_micros(41_000)), 1000);
        assert_eq!(bytes_acked_by(&t, SimTime::from_micros(100_000)), 2000);
        assert_eq!(bytes_acked_by(&t, SimTime::from_micros(10)), 0);
    }

    #[test]
    fn no_syn_trace_anchors_at_first_data_packet() {
        // Without a SYN the extractor anchors offsets at the first data
        // packet, so samples still come out.
        let recs = vec![data(1_000, 0, 1000), ack(41_000, 1000)];
        let samples = extract_rtt_samples(&trace(recs));
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].rtt, SimDuration::from_millis(40));
    }
}
