//! Slow-start boundary detection.
//!
//! The paper defines the slow-start period as everything up to the
//! first retransmission or fast retransmission ("We use tshark to
//! obtain the first instance of a retransmission …, which signals the
//! end of slow start"). In a trace, a retransmission is an outgoing
//! data segment whose sequence range regresses below the highest
//! sequence already sent.

use crate::flow::{FlowTrace, OffsetTracker};
use crate::rtt::{bytes_acked_by, AckAccountant, RttSample};
use csig_netsim::{Direction, PacketRecord, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The slow-start window of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowStart {
    /// When the first downstream data segment left the server.
    pub first_data_at: Option<SimTime>,
    /// Time of the first retransmission (`None` if the flow never
    /// retransmitted, in which case the whole flow is "slow start" for
    /// the paper's purposes).
    pub end: Option<SimTime>,
    /// Payload bytes cumulatively acknowledged by `end` (or by the end
    /// of the trace when `end` is `None`).
    pub bytes_acked: u64,
}

impl SlowStart {
    /// The boundary to use when windowing samples: the first
    /// retransmission, or "forever" if none happened.
    pub fn boundary(&self) -> SimTime {
        self.end.unwrap_or(SimTime::MAX)
    }

    /// Downstream throughput achieved during slow start, in bits/s.
    /// `None` if the flow carried no data or the window is degenerate.
    pub fn throughput_bps(&self) -> Option<f64> {
        let start = self.first_data_at?;
        let end = self.end?;
        let secs = end.saturating_since(start).as_secs_f64();
        if secs <= 0.0 || self.bytes_acked == 0 {
            return None;
        }
        Some(self.bytes_acked as f64 * 8.0 / secs)
    }
}

/// Incremental slow-start detector: the streaming core behind
/// [`detect_slow_start`].
///
/// Combines three bounded sub-machines fed record by record:
///
/// * a *boundary machine* that watches outgoing data for the first
///   sequence regression (the paper's end-of-slow-start signal) and
///   freezes once it fires;
/// * an [`AckAccountant`] that stops at the boundary, so
///   [`SlowStartTracker::snapshot`] reports the bytes acknowledged
///   within the window;
/// * an *advance log* of `(time, bytes_acked)` points used by
///   [`SlowStartTracker::capacity_estimate_bps`] to recover "bytes
///   acked by the window midpoint" even though the midpoint is only
///   known once the boundary fires. The log is pruned to the trailing
///   half-window (any candidate midpoint lies at or beyond half the
///   elapsed window, so older entries can never be the answer), which
///   keeps its size proportional to the ack-advance rate over half an
///   RTT ramp, not to trace length.
#[derive(Debug, Clone, Default)]
pub struct SlowStartTracker {
    tracker: Option<OffsetTracker>,
    max_sent_end: u64,
    first_data_at: Option<SimTime>,
    end: Option<SimTime>,
    acct: AckAccountant,
    advances: VecDeque<(SimTime, u64)>,
}

impl SlowStartTracker {
    /// A fresh tracker (no records seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one record.
    pub fn push(&mut self, rec: &PacketRecord) {
        // Ack accounting runs up to (and including) the boundary
        // instant, exactly like `bytes_acked_by(trace, end)`.
        if self.end.is_none_or(|end| rec.time <= end) {
            let before = self.acct.bytes_acked();
            self.acct.push(rec);
            let after = self.acct.bytes_acked();
            if after > before && self.end.is_none() {
                self.advances.push_back((rec.time, after));
                self.prune_advances(rec.time);
            }
        }

        // Boundary machine: frozen once the first retransmission fires.
        if self.end.is_some() || rec.dir != Direction::Out {
            return;
        }
        let Some(h) = rec.pkt.tcp() else { return };
        if h.flags.syn() {
            // Anchor offsets at the local ISS.
            if self.tracker.is_none() {
                self.tracker = Some(OffsetTracker::new(h.seq));
            }
            return;
        }
        if h.payload_len == 0 {
            return;
        }
        let tr = self
            .tracker
            .get_or_insert_with(|| OffsetTracker::new(h.seq.wrapping_sub(1)));
        let start = tr.offset(h.seq);
        let seg_end = start + h.payload_len as u64;
        if self.first_data_at.is_none() {
            self.first_data_at = Some(rec.time);
        }
        if start < self.max_sent_end {
            self.end = Some(rec.time);
        } else {
            self.max_sent_end = seg_end;
        }
    }

    /// Drop advance-log entries that can never be the "last advance at
    /// or before the midpoint": the eventual midpoint lies at or beyond
    /// `first_data + (now - first_data) / 2`, so any entry dominated by
    /// a successor at or before that point is dead.
    fn prune_advances(&mut self, now: SimTime) {
        let Some(first) = self.first_data_at else {
            return;
        };
        let mid_now = first + now.saturating_since(first) / 2;
        while self.advances.len() >= 2 && self.advances[1].0 <= mid_now {
            self.advances.pop_front();
        }
    }

    /// The boundary to use when windowing samples: the first
    /// retransmission seen so far, or "forever" if none yet.
    pub fn boundary(&self) -> SimTime {
        self.end.unwrap_or(SimTime::MAX)
    }

    /// `true` once the first retransmission has been observed.
    pub fn ended(&self) -> bool {
        self.end.is_some()
    }

    /// The [`SlowStart`] implied by the records seen so far.
    pub fn snapshot(&self) -> SlowStart {
        SlowStart {
            first_data_at: self.first_data_at,
            end: self.end,
            bytes_acked: self.acct.bytes_acked(),
        }
    }

    /// Streaming equivalent of [`capacity_estimate_bps`]: goodput over
    /// the second half of the slow-start window, `None` while the
    /// window is still open or when it is degenerate.
    pub fn capacity_estimate_bps(&self) -> Option<f64> {
        let (start, end) = (self.first_data_at?, self.end?);
        let span = end.saturating_since(start);
        if span.is_zero() {
            return None;
        }
        let mid = start + span / 2;
        let bytes_mid = self
            .advances
            .iter()
            .rev()
            .find(|(t, _)| *t <= mid)
            .map_or(0, |(_, b)| *b);
        let late_bytes = self.acct.bytes_acked().saturating_sub(bytes_mid);
        let secs = (span / 2).as_secs_f64();
        if secs <= 0.0 || late_bytes == 0 {
            return None;
        }
        Some(late_bytes as f64 * 8.0 / secs)
    }
}

/// Detect the slow-start window of a server-side flow trace.
///
/// Thin wrapper over [`SlowStartTracker`]: replays the trace through
/// the streaming core.
pub fn detect_slow_start(trace: &FlowTrace) -> SlowStart {
    let mut tracker = SlowStartTracker::new();
    for rec in &trace.records {
        tracker.push(rec);
    }
    tracker.snapshot()
}

/// Capacity-style slow-start throughput estimate: goodput over the
/// *second half* of the slow-start window, in bits/s. A plain window
/// average systematically underestimates capacity (most of an
/// exponential ramp's bytes arrive at its end); the late-window rate is
/// the quantity the paper calls "indicative of the capacity of the
/// bottleneck link". Returns `None` when the window is degenerate or
/// the flow never retransmitted.
pub fn capacity_estimate_bps(trace: &FlowTrace, ss: &SlowStart) -> Option<f64> {
    let (start, end) = (ss.first_data_at?, ss.end?);
    let span = end.saturating_since(start);
    if span.is_zero() {
        return None;
    }
    let mid = start + span / 2;
    let late_bytes = bytes_acked_by(trace, end).saturating_sub(bytes_acked_by(trace, mid));
    let secs = (span / 2).as_secs_f64();
    if secs <= 0.0 || late_bytes == 0 {
        return None;
    }
    Some(late_bytes as f64 * 8.0 / secs)
}

/// Filter RTT samples to the slow-start window (samples whose ACK
/// arrived no later than the boundary).
pub fn slow_start_samples(samples: &[RttSample], ss: &SlowStart) -> Vec<RttSample> {
    let boundary = ss.boundary();
    samples
        .iter()
        .filter(|s| s.at <= boundary)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowTrace;
    use csig_netsim::{
        FlowId, NodeId, Packet, PacketId, PacketKind, SimDuration, TcpFlags, TcpHeader, NO_SACK,
    };

    const ISS: u32 = 1000;

    fn rec(
        dir: Direction,
        t_ms: u64,
        seq_off: u32,
        len: u32,
        ack_off: u32,
        flags: TcpFlags,
    ) -> csig_netsim::PacketRecord {
        let (seq, ack) = match dir {
            Direction::Out => (ISS.wrapping_add(1).wrapping_add(seq_off), 1),
            Direction::In => (900, ISS.wrapping_add(1).wrapping_add(ack_off)),
        };
        csig_netsim::PacketRecord {
            time: SimTime::from_millis(t_ms),
            dir,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(1),
                src: NodeId(0),
                dst: NodeId(1),
                size: 52 + len,
                sent_at: SimTime::from_millis(t_ms),
                kind: PacketKind::Tcp(TcpHeader {
                    seq,
                    ack,
                    flags,
                    payload_len: len,
                    window: 65535,
                    sack: NO_SACK,
                }),
            },
        }
    }

    fn syn_out() -> csig_netsim::PacketRecord {
        csig_netsim::PacketRecord {
            time: SimTime::ZERO,
            dir: Direction::Out,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(1),
                src: NodeId(0),
                dst: NodeId(1),
                size: 52,
                sent_at: SimTime::ZERO,
                kind: PacketKind::Tcp(TcpHeader {
                    seq: ISS,
                    ack: 0,
                    flags: TcpFlags::SYN | TcpFlags::ACK,
                    payload_len: 0,
                    window: 65535,
                    sack: NO_SACK,
                }),
            },
        }
    }

    #[test]
    fn detects_first_retransmission() {
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 10, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::Out, 11, 1000, 1000, 0, TcpFlags::ACK),
                rec(Direction::In, 50, 0, 0, 1000, TcpFlags::ACK),
                // Retransmission of offset 0 at t=300.
                rec(Direction::Out, 300, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::Out, 400, 2000, 1000, 0, TcpFlags::ACK),
            ],
        };
        let ss = detect_slow_start(&trace);
        assert_eq!(ss.first_data_at, Some(SimTime::from_millis(10)));
        assert_eq!(ss.end, Some(SimTime::from_millis(300)));
        // Only 1000 bytes were cumulatively acked before the boundary.
        assert_eq!(ss.bytes_acked, 1000);
    }

    #[test]
    fn clean_flow_has_no_boundary() {
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 10, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::In, 50, 0, 0, 1000, TcpFlags::ACK),
            ],
        };
        let ss = detect_slow_start(&trace);
        assert_eq!(ss.end, None);
        assert_eq!(ss.boundary(), SimTime::MAX);
        assert_eq!(ss.bytes_acked, 1000);
        assert_eq!(ss.throughput_bps(), None);
    }

    #[test]
    fn slow_start_throughput_is_bytes_over_window() {
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 100, 0, 100_000, 0, TcpFlags::ACK),
                rec(Direction::In, 500, 0, 0, 100_000, TcpFlags::ACK),
                rec(Direction::Out, 600, 0, 1000, 0, TcpFlags::ACK), // retx
            ],
        };
        let ss = detect_slow_start(&trace);
        // 100 kB acked over (600-100) ms → 1.6 Mbps.
        let bps = ss.throughput_bps().unwrap();
        assert!((bps - 1.6e6).abs() < 1e3, "{bps}");
    }

    #[test]
    fn capacity_estimate_uses_late_window() {
        // 100 kB acked in the first half, 400 kB in the second half of
        // a 1 s slow-start window: the estimate must reflect the late
        // rate (400 kB / 0.5 s = 6.4 Mbps), not the 4 Mbps average.
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 0, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::In, 400, 0, 0, 100_000, TcpFlags::ACK),
                rec(Direction::In, 900, 0, 0, 500_000, TcpFlags::ACK),
                rec(Direction::Out, 1000, 0, 1000, 0, TcpFlags::ACK), // retx
            ],
        };
        let ss = detect_slow_start(&trace);
        let est = capacity_estimate_bps(&trace, &ss).unwrap();
        assert!((est - 6.4e6).abs() < 1e5, "{est}");
        // Degenerate cases return None.
        let open = SlowStart { end: None, ..ss };
        assert_eq!(capacity_estimate_bps(&trace, &open), None);
    }

    #[test]
    fn streaming_tracker_matches_batch_capacity() {
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 0, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::In, 100, 0, 0, 50_000, TcpFlags::ACK),
                rec(Direction::In, 400, 0, 0, 100_000, TcpFlags::ACK),
                rec(Direction::In, 700, 0, 0, 300_000, TcpFlags::ACK),
                rec(Direction::In, 900, 0, 0, 500_000, TcpFlags::ACK),
                rec(Direction::Out, 1000, 0, 1000, 0, TcpFlags::ACK), // retx
                // Post-boundary traffic must not perturb the window.
                rec(Direction::In, 1100, 0, 0, 600_000, TcpFlags::ACK),
            ],
        };
        let mut tracker = SlowStartTracker::new();
        for r in &trace.records {
            tracker.push(r);
        }
        let batch = detect_slow_start(&trace);
        assert_eq!(tracker.snapshot(), batch);
        assert_eq!(
            tracker.capacity_estimate_bps(),
            capacity_estimate_bps(&trace, &batch)
        );
        // The advance log was pruned but still answers the midpoint
        // query: 400 kB over the late half second.
        let est = tracker.capacity_estimate_bps().unwrap();
        assert!((est - 6.4e6).abs() < 1e5, "{est}");
    }

    #[test]
    fn open_window_tracker_reports_running_state() {
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 10, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::In, 50, 0, 0, 1000, TcpFlags::ACK),
            ],
        };
        let mut tracker = SlowStartTracker::new();
        for r in &trace.records {
            tracker.push(r);
        }
        assert!(!tracker.ended());
        assert_eq!(tracker.boundary(), SimTime::MAX);
        assert_eq!(tracker.snapshot(), detect_slow_start(&trace));
        assert_eq!(tracker.capacity_estimate_bps(), None);
    }

    #[test]
    fn sample_windowing() {
        let mk = |ms| RttSample {
            at: SimTime::from_millis(ms),
            rtt: SimDuration::from_millis(10),
            seq_end: 0,
        };
        let samples = vec![mk(10), mk(20), mk(30)];
        let ss = SlowStart {
            first_data_at: Some(SimTime::ZERO),
            end: Some(SimTime::from_millis(20)),
            bytes_acked: 0,
        };
        assert_eq!(slow_start_samples(&samples, &ss).len(), 2);
        let open = SlowStart { end: None, ..ss };
        assert_eq!(slow_start_samples(&samples, &open).len(), 3);
    }
}
