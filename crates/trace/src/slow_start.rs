//! Slow-start boundary detection.
//!
//! The paper defines the slow-start period as everything up to the
//! first retransmission or fast retransmission ("We use tshark to
//! obtain the first instance of a retransmission …, which signals the
//! end of slow start"). In a trace, a retransmission is an outgoing
//! data segment whose sequence range regresses below the highest
//! sequence already sent.

use crate::flow::{FlowTrace, OffsetTracker};
use crate::rtt::{bytes_acked_by, RttSample};
use csig_netsim::{Direction, SimTime};
use serde::{Deserialize, Serialize};

/// The slow-start window of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowStart {
    /// When the first downstream data segment left the server.
    pub first_data_at: Option<SimTime>,
    /// Time of the first retransmission (`None` if the flow never
    /// retransmitted, in which case the whole flow is "slow start" for
    /// the paper's purposes).
    pub end: Option<SimTime>,
    /// Payload bytes cumulatively acknowledged by `end` (or by the end
    /// of the trace when `end` is `None`).
    pub bytes_acked: u64,
}

impl SlowStart {
    /// The boundary to use when windowing samples: the first
    /// retransmission, or "forever" if none happened.
    pub fn boundary(&self) -> SimTime {
        self.end.unwrap_or(SimTime::MAX)
    }

    /// Downstream throughput achieved during slow start, in bits/s.
    /// `None` if the flow carried no data or the window is degenerate.
    pub fn throughput_bps(&self) -> Option<f64> {
        let start = self.first_data_at?;
        let end = self.end?;
        let secs = end.saturating_since(start).as_secs_f64();
        if secs <= 0.0 || self.bytes_acked == 0 {
            return None;
        }
        Some(self.bytes_acked as f64 * 8.0 / secs)
    }
}

/// Detect the slow-start window of a server-side flow trace.
pub fn detect_slow_start(trace: &FlowTrace) -> SlowStart {
    let isn = trace.isn();
    let mut tracker: Option<OffsetTracker> = isn.local_iss.map(OffsetTracker::new);
    let mut max_sent_end: u64 = 0;
    let mut first_data_at = None;
    let mut end = None;

    for rec in &trace.records {
        if rec.dir != Direction::Out {
            continue;
        }
        let Some(h) = rec.pkt.tcp() else { continue };
        if h.payload_len == 0 {
            continue;
        }
        let tr = tracker.get_or_insert_with(|| OffsetTracker::new(h.seq.wrapping_sub(1)));
        let start = tr.offset(h.seq);
        let seg_end = start + h.payload_len as u64;
        if first_data_at.is_none() {
            first_data_at = Some(rec.time);
        }
        if start < max_sent_end {
            end = Some(rec.time);
            break;
        }
        max_sent_end = seg_end;
    }

    let until = end.unwrap_or(SimTime::MAX);
    SlowStart {
        first_data_at,
        end,
        bytes_acked: bytes_acked_by(trace, until),
    }
}

/// Capacity-style slow-start throughput estimate: goodput over the
/// *second half* of the slow-start window, in bits/s. A plain window
/// average systematically underestimates capacity (most of an
/// exponential ramp's bytes arrive at its end); the late-window rate is
/// the quantity the paper calls "indicative of the capacity of the
/// bottleneck link". Returns `None` when the window is degenerate or
/// the flow never retransmitted.
pub fn capacity_estimate_bps(trace: &FlowTrace, ss: &SlowStart) -> Option<f64> {
    let (start, end) = (ss.first_data_at?, ss.end?);
    let span = end.saturating_since(start);
    if span.is_zero() {
        return None;
    }
    let mid = start + span / 2;
    let late_bytes = bytes_acked_by(trace, end).saturating_sub(bytes_acked_by(trace, mid));
    let secs = (span / 2).as_secs_f64();
    if secs <= 0.0 || late_bytes == 0 {
        return None;
    }
    Some(late_bytes as f64 * 8.0 / secs)
}

/// Filter RTT samples to the slow-start window (samples whose ACK
/// arrived no later than the boundary).
pub fn slow_start_samples(samples: &[RttSample], ss: &SlowStart) -> Vec<RttSample> {
    let boundary = ss.boundary();
    samples
        .iter()
        .filter(|s| s.at <= boundary)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowTrace;
    use csig_netsim::{
        FlowId, NodeId, Packet, PacketId, PacketKind, SimDuration, TcpFlags, TcpHeader, NO_SACK,
    };

    const ISS: u32 = 1000;

    fn rec(
        dir: Direction,
        t_ms: u64,
        seq_off: u32,
        len: u32,
        ack_off: u32,
        flags: TcpFlags,
    ) -> csig_netsim::PacketRecord {
        let (seq, ack) = match dir {
            Direction::Out => (ISS.wrapping_add(1).wrapping_add(seq_off), 1),
            Direction::In => (900, ISS.wrapping_add(1).wrapping_add(ack_off)),
        };
        csig_netsim::PacketRecord {
            time: SimTime::from_millis(t_ms),
            dir,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(1),
                src: NodeId(0),
                dst: NodeId(1),
                size: 52 + len,
                sent_at: SimTime::from_millis(t_ms),
                kind: PacketKind::Tcp(TcpHeader {
                    seq,
                    ack,
                    flags,
                    payload_len: len,
                    window: 65535,
                    sack: NO_SACK,
                }),
            },
        }
    }

    fn syn_out() -> csig_netsim::PacketRecord {
        csig_netsim::PacketRecord {
            time: SimTime::ZERO,
            dir: Direction::Out,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(1),
                src: NodeId(0),
                dst: NodeId(1),
                size: 52,
                sent_at: SimTime::ZERO,
                kind: PacketKind::Tcp(TcpHeader {
                    seq: ISS,
                    ack: 0,
                    flags: TcpFlags::SYN | TcpFlags::ACK,
                    payload_len: 0,
                    window: 65535,
                    sack: NO_SACK,
                }),
            },
        }
    }

    #[test]
    fn detects_first_retransmission() {
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 10, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::Out, 11, 1000, 1000, 0, TcpFlags::ACK),
                rec(Direction::In, 50, 0, 0, 1000, TcpFlags::ACK),
                // Retransmission of offset 0 at t=300.
                rec(Direction::Out, 300, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::Out, 400, 2000, 1000, 0, TcpFlags::ACK),
            ],
        };
        let ss = detect_slow_start(&trace);
        assert_eq!(ss.first_data_at, Some(SimTime::from_millis(10)));
        assert_eq!(ss.end, Some(SimTime::from_millis(300)));
        // Only 1000 bytes were cumulatively acked before the boundary.
        assert_eq!(ss.bytes_acked, 1000);
    }

    #[test]
    fn clean_flow_has_no_boundary() {
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 10, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::In, 50, 0, 0, 1000, TcpFlags::ACK),
            ],
        };
        let ss = detect_slow_start(&trace);
        assert_eq!(ss.end, None);
        assert_eq!(ss.boundary(), SimTime::MAX);
        assert_eq!(ss.bytes_acked, 1000);
        assert_eq!(ss.throughput_bps(), None);
    }

    #[test]
    fn slow_start_throughput_is_bytes_over_window() {
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 100, 0, 100_000, 0, TcpFlags::ACK),
                rec(Direction::In, 500, 0, 0, 100_000, TcpFlags::ACK),
                rec(Direction::Out, 600, 0, 1000, 0, TcpFlags::ACK), // retx
            ],
        };
        let ss = detect_slow_start(&trace);
        // 100 kB acked over (600-100) ms → 1.6 Mbps.
        let bps = ss.throughput_bps().unwrap();
        assert!((bps - 1.6e6).abs() < 1e3, "{bps}");
    }

    #[test]
    fn capacity_estimate_uses_late_window() {
        // 100 kB acked in the first half, 400 kB in the second half of
        // a 1 s slow-start window: the estimate must reflect the late
        // rate (400 kB / 0.5 s = 6.4 Mbps), not the 4 Mbps average.
        let trace = FlowTrace {
            flow: FlowId(1),
            records: vec![
                syn_out(),
                rec(Direction::Out, 0, 0, 1000, 0, TcpFlags::ACK),
                rec(Direction::In, 400, 0, 0, 100_000, TcpFlags::ACK),
                rec(Direction::In, 900, 0, 0, 500_000, TcpFlags::ACK),
                rec(Direction::Out, 1000, 0, 1000, 0, TcpFlags::ACK), // retx
            ],
        };
        let ss = detect_slow_start(&trace);
        let est = capacity_estimate_bps(&trace, &ss).unwrap();
        assert!((est - 6.4e6).abs() < 1e5, "{est}");
        // Degenerate cases return None.
        let open = SlowStart { end: None, ..ss };
        assert_eq!(capacity_estimate_bps(&trace, &open), None);
    }

    #[test]
    fn sample_windowing() {
        let mk = |ms| RttSample {
            at: SimTime::from_millis(ms),
            rtt: SimDuration::from_millis(10),
            seq_end: 0,
        };
        let samples = vec![mk(10), mk(20), mk(30)];
        let ss = SlowStart {
            first_data_at: Some(SimTime::ZERO),
            end: Some(SimTime::from_millis(20)),
            bytes_acked: 0,
        };
        assert_eq!(slow_start_samples(&samples, &ss).len(), 2);
        let open = SlowStart { end: None, ..ss };
        assert_eq!(slow_start_samples(&samples, &open).len(), 3);
    }
}
