//! Throughput computation from server-side traces.
//!
//! Mirrors what NDT reports: downstream goodput measured from the
//! cumulative acknowledgment stream (bytes the client demonstrably
//! received), overall and as a binned time series.

use crate::flow::{FlowTrace, OffsetTracker};
use csig_netsim::{Direction, PacketRecord, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Goodput summary for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSummary {
    /// Payload bytes cumulatively acknowledged over the whole trace.
    pub bytes_acked: u64,
    /// Time from the first outgoing data segment to the last
    /// ack-number advance.
    pub active: SimDuration,
    /// Mean goodput in bits/s over `active` (0 if degenerate).
    pub mean_bps: f64,
}

/// Incremental goodput accountant: the streaming core behind
/// [`throughput_summary`].
///
/// Holds O(1) state per flow — an offset tracker, the running max
/// cumulative ack, and two timestamps — and can report a
/// [`ThroughputSummary`] at any point of the stream.
#[derive(Debug, Clone, Default)]
pub struct ThroughputTracker {
    tracker: Option<OffsetTracker>,
    first_data: Option<SimTime>,
    last_advance: Option<SimTime>,
    max_ack: u64,
    fin_cap: Option<u64>,
}

impl ThroughputTracker {
    /// A fresh tracker (no records seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one record.
    pub fn push(&mut self, rec: &PacketRecord) {
        let Some(h) = rec.pkt.tcp() else { return };
        match rec.dir {
            // Anchor offsets at the local ISS.
            Direction::Out if h.flags.syn() && self.tracker.is_none() => {
                self.tracker = Some(OffsetTracker::new(h.seq));
            }
            Direction::Out if h.payload_len > 0 || h.flags.fin() => {
                let tr = self
                    .tracker
                    .get_or_insert_with(|| OffsetTracker::new(h.seq.wrapping_sub(1)));
                let start = tr.offset(h.seq);
                if h.payload_len > 0 {
                    self.first_data.get_or_insert(rec.time);
                }
                if h.flags.fin() {
                    // The FIN consumes one sequence number that is not
                    // payload; cap acked-byte accounting below it.
                    self.fin_cap = Some(start + h.payload_len as u64);
                }
            }
            Direction::In if h.flags.ack() => {
                let Some(tr) = self.tracker.as_ref() else {
                    return;
                };
                let mut off =
                    csig_tcp::seq::offset_of(tr.base().wrapping_add(1), h.ack, self.max_ack);
                if let Some(cap) = self.fin_cap {
                    off = off.min(cap);
                }
                if off > self.max_ack {
                    self.max_ack = off;
                    self.last_advance = Some(rec.time);
                }
            }
            _ => {}
        }
    }

    /// The summary implied by the records seen so far.
    pub fn summary(&self) -> ThroughputSummary {
        let active = match (self.first_data, self.last_advance) {
            (Some(a), Some(b)) => b.saturating_since(a),
            _ => SimDuration::ZERO,
        };
        let mean_bps = if active.is_zero() {
            0.0
        } else {
            self.max_ack as f64 * 8.0 / active.as_secs_f64()
        };
        ThroughputSummary {
            bytes_acked: self.max_ack,
            active,
            mean_bps,
        }
    }
}

/// Compute the goodput summary of a server-side flow trace.
///
/// Thin wrapper over [`ThroughputTracker`]: replays the trace through
/// the streaming core.
pub fn throughput_summary(trace: &FlowTrace) -> ThroughputSummary {
    let mut tracker = ThroughputTracker::new();
    for rec in &trace.records {
        tracker.push(rec);
    }
    tracker.summary()
}

/// Goodput time series: bits/s in consecutive bins of width `bin`,
/// starting at the first record. Bins with no ack progress report 0.
pub fn throughput_timeseries(trace: &FlowTrace, bin: SimDuration) -> Vec<(SimTime, f64)> {
    assert!(!bin.is_zero(), "bin width must be positive");
    let Some((t0, t1)) = trace.time_span() else {
        return Vec::new();
    };
    let isn = trace.isn();
    let mut tracker: Option<OffsetTracker> = isn.local_iss.map(OffsetTracker::new);
    let nbins = (t1.saturating_since(t0).as_nanos() / bin.as_nanos()).min(1_000_000) as usize + 1;
    let mut acked_per_bin = vec![0u64; nbins];
    let mut max_ack = 0u64;

    for rec in &trace.records {
        let Some(h) = rec.pkt.tcp() else { continue };
        match rec.dir {
            Direction::Out if h.payload_len > 0 => {
                let tr = tracker.get_or_insert_with(|| OffsetTracker::new(h.seq.wrapping_sub(1)));
                let _ = tr.offset(h.seq);
            }
            Direction::In if h.flags.ack() => {
                let Some(tr) = tracker.as_ref() else { continue };
                let off = csig_tcp::seq::offset_of(tr.base().wrapping_add(1), h.ack, max_ack);
                if off > max_ack {
                    let idx = (rec.time.saturating_since(t0).as_nanos() / bin.as_nanos()) as usize;
                    if idx < nbins {
                        acked_per_bin[idx] += off - max_ack;
                    }
                    max_ack = off;
                }
            }
            _ => {}
        }
    }
    let secs = bin.as_secs_f64();
    acked_per_bin
        .into_iter()
        .enumerate()
        .map(|(i, bytes)| (t0 + bin * i as u64, bytes as f64 * 8.0 / secs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowTrace;
    use csig_netsim::{FlowId, NodeId, Packet, PacketId, PacketKind, TcpFlags, TcpHeader, NO_SACK};

    const ISS: u32 = 77;

    fn rec(
        dir: Direction,
        t_ms: u64,
        seq: u32,
        ack: u32,
        len: u32,
        flags: TcpFlags,
    ) -> csig_netsim::PacketRecord {
        csig_netsim::PacketRecord {
            time: SimTime::from_millis(t_ms),
            dir,
            pkt: Packet {
                id: PacketId(0),
                flow: FlowId(1),
                src: NodeId(0),
                dst: NodeId(1),
                size: 52 + len,
                sent_at: SimTime::from_millis(t_ms),
                kind: PacketKind::Tcp(TcpHeader {
                    seq,
                    ack,
                    flags,
                    payload_len: len,
                    window: 65535,
                    sack: NO_SACK,
                }),
            },
        }
    }

    fn simple_trace() -> FlowTrace {
        FlowTrace {
            flow: FlowId(1),
            records: vec![
                rec(Direction::Out, 0, ISS, 0, 0, TcpFlags::SYN | TcpFlags::ACK),
                rec(Direction::Out, 100, ISS + 1, 0, 50_000, TcpFlags::ACK),
                rec(Direction::In, 300, 1, ISS + 1 + 50_000, 0, TcpFlags::ACK),
                rec(
                    Direction::Out,
                    350,
                    ISS + 1 + 50_000,
                    0,
                    50_000,
                    TcpFlags::ACK,
                ),
                rec(Direction::In, 1100, 1, ISS + 1 + 100_000, 0, TcpFlags::ACK),
            ],
        }
    }

    #[test]
    fn summary_counts_acked_bytes_over_active_window() {
        let s = throughput_summary(&simple_trace());
        assert_eq!(s.bytes_acked, 100_000);
        assert_eq!(s.active, SimDuration::from_millis(1000));
        // 100 kB over 1 s = 800 kbps.
        assert!((s.mean_bps - 800_000.0).abs() < 1.0, "{}", s.mean_bps);
    }

    #[test]
    fn timeseries_bins_progress() {
        let ts = throughput_timeseries(&simple_trace(), SimDuration::from_millis(500));
        // Trace spans 1.1 s → 3 bins. Bin 0 gets the first 50 kB, bin 2
        // the second.
        assert_eq!(ts.len(), 3);
        assert!(ts[0].1 > 0.0);
        assert_eq!(ts[1].1, 0.0);
        assert!(ts[2].1 > 0.0);
        let total: f64 = ts.iter().map(|(_, bps)| bps * 0.5 / 8.0).sum();
        assert!((total - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn empty_trace_is_degenerate() {
        let t = FlowTrace {
            flow: FlowId(1),
            records: vec![],
        };
        let s = throughput_summary(&t);
        assert_eq!(s.bytes_acked, 0);
        assert_eq!(s.mean_bps, 0.0);
        assert!(throughput_timeseries(&t, SimDuration::from_millis(10)).is_empty());
    }
}
