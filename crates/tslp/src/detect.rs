//! Congestion-episode detection from latency time series.
//!
//! Following Luckie et al.: an episode is a sustained *level shift* of
//! the far-side RTT above its baseline that the near-side RTT does not
//! share — pointing at queueing on the interdomain link between the two
//! probed routers.

use crate::timeseries::LatencySeries;
use csig_netsim::SimTime;
use serde::{Deserialize, Serialize};

/// Detector parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorParams {
    /// RTT elevation above baseline (ms) that counts as congested —
    /// roughly the interdomain buffer's queueing delay (the paper's
    /// TATA link showed ~15 ms).
    pub min_elevation_ms: f64,
    /// Minimum consecutive elevated samples to open an episode (filters
    /// isolated spikes).
    pub min_run: usize,
}

impl Default for DetectorParams {
    fn default() -> Self {
        DetectorParams {
            min_elevation_ms: 5.0,
            min_run: 3,
        }
    }
}

/// One detected congestion episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// First elevated probe's send time.
    pub start: SimTime,
    /// Last elevated probe's send time.
    pub end: SimTime,
    /// Peak RTT during the episode, ms.
    pub peak_ms: f64,
}

impl Episode {
    /// Does `t` fall within the episode (inclusive)?
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t <= self.end
    }
}

/// Find level-shift episodes in a single series.
pub fn detect_episodes(series: &LatencySeries, params: DetectorParams) -> Vec<Episode> {
    let Some(baseline) = series.baseline_ms() else {
        return Vec::new();
    };
    let threshold = baseline + params.min_elevation_ms;
    let mut episodes = Vec::new();
    let mut run: Vec<(SimTime, f64)> = Vec::new();
    for &(t, rtt) in &series.points {
        let ms = rtt.as_millis_f64();
        if ms >= threshold {
            run.push((t, ms));
        } else {
            flush_run(&mut run, params.min_run, &mut episodes);
        }
    }
    flush_run(&mut run, params.min_run, &mut episodes);
    episodes
}

fn flush_run(run: &mut Vec<(SimTime, f64)>, min_run: usize, episodes: &mut Vec<Episode>) {
    if run.len() >= min_run {
        episodes.push(Episode {
            start: run[0].0,
            end: run[run.len() - 1].0,
            peak_ms: run.iter().map(|&(_, m)| m).fold(0.0, f64::max),
        });
    }
    run.clear();
}

/// Interdomain-link congestion: episodes on the far series that are
/// *not* mirrored on the near series (a shared elevation would point at
/// congestion before the near router instead).
pub fn interdomain_episodes(
    near: &LatencySeries,
    far: &LatencySeries,
    params: DetectorParams,
) -> Vec<Episode> {
    let near_eps = detect_episodes(near, params);
    detect_episodes(far, params)
        .into_iter()
        .filter(|fe| {
            // Keep the far episode unless the near side is elevated for
            // (roughly) the same span.
            !near_eps
                .iter()
                .any(|ne| ne.start <= fe.end && fe.start <= ne.end)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_netsim::SimDuration;

    fn series(values_ms: &[u64]) -> LatencySeries {
        let mut s = LatencySeries::new();
        for (i, &v) in values_ms.iter().enumerate() {
            s.push(SimTime::from_secs(i as u64), SimDuration::from_millis(v));
        }
        s
    }

    #[test]
    fn detects_a_level_shift() {
        let mut vals = vec![18u64; 20];
        vals.extend(vec![33u64; 10]); // +15 ms episode
        vals.extend(vec![18u64; 20]);
        let eps = detect_episodes(&series(&vals), DetectorParams::default());
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].start, SimTime::from_secs(20));
        assert_eq!(eps[0].end, SimTime::from_secs(29));
        assert_eq!(eps[0].peak_ms, 33.0);
        assert!(eps[0].contains(SimTime::from_secs(25)));
        assert!(!eps[0].contains(SimTime::from_secs(31)));
    }

    #[test]
    fn short_spikes_are_filtered() {
        let mut vals = vec![18u64; 10];
        vals.push(40); // 1-sample spike
        vals.extend(vec![18u64; 10]);
        let eps = detect_episodes(&series(&vals), DetectorParams::default());
        assert!(eps.is_empty());
    }

    #[test]
    fn flat_series_has_no_episodes() {
        let eps = detect_episodes(&series(&[20; 50]), DetectorParams::default());
        assert!(eps.is_empty());
    }

    #[test]
    fn interdomain_requires_far_only_elevation() {
        let mut far_vals = vec![18u64; 10];
        far_vals.extend(vec![35u64; 6]);
        far_vals.extend(vec![18u64; 10]);
        let far = series(&far_vals);
        // Near flat: episode attributed to the interdomain link.
        let near_flat = series(&[8; 26]);
        let eps = interdomain_episodes(&near_flat, &far, DetectorParams::default());
        assert_eq!(eps.len(), 1);
        // Near elevated over the same span: not the interdomain link.
        let mut near_vals = vec![8u64; 10];
        near_vals.extend(vec![25u64; 6]);
        near_vals.extend(vec![8u64; 10]);
        let near_up = series(&near_vals);
        let eps = interdomain_episodes(&near_up, &far, DetectorParams::default());
        assert!(eps.is_empty());
    }

    #[test]
    fn multiple_episodes_detected() {
        let mut vals = Vec::new();
        for _ in 0..3 {
            vals.extend(vec![18u64; 10]);
            vals.extend(vec![33u64; 5]);
        }
        vals.extend(vec![18u64; 10]);
        let eps = detect_episodes(&series(&vals), DetectorParams::default());
        assert_eq!(eps.len(), 3);
    }
}
