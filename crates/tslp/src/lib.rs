//! # csig-tslp — Time-Series Latency Probing
//!
//! The probing substrate behind the paper's `TSLP2017` dataset
//! (Luckie et al., "Challenges in Inferring Internet Interdomain
//! Congestion", IMC 2014): periodic latency probes from a vantage point
//! to the near and far routers of an interdomain link ([`prober`]),
//! per-target latency series ([`timeseries`]), and level-shift episode
//! detection attributing far-only elevation to the interdomain link
//! ([`detect`]).
//!
//! Routers in `csig-netsim` answer probe requests natively, so probes
//! experience exactly the queueing that data packets do.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod detect;
pub mod prober;
pub mod timeseries;

pub use detect::{detect_episodes, interdomain_episodes, DetectorParams, Episode};
pub use prober::TslpProber;
pub use timeseries::LatencySeries;

#[cfg(test)]
mod integration_tests {
    use super::*;
    use csig_netsim::{FlowId, LinkConfig, NodeId, SimDuration, SimTime, Simulator, SinkAgent};
    use csig_testbed::CbrAgent;

    /// Probe loss thins the series but must not break detection: run a
    /// clean near link and a 10%-lossy far link with a mid-run episode.
    #[test]
    fn detection_survives_probe_loss() {
        let mut sim = Simulator::new(123);
        let vantage = sim.add_host(Box::new(TslpProber::new(
            vec![NodeId(1), NodeId(2)],
            SimDuration::from_millis(200),
            SimTime::from_secs(30),
            FlowId(5),
        )));
        let near = sim.add_router();
        let far = sim.add_router();
        sim.add_duplex_link(
            vantage,
            near,
            LinkConfig::new(1_000_000_000, SimDuration::from_millis(9)),
        );
        let idle = LinkConfig::new(100_000_000, SimDuration::from_millis(1))
            .buffer_ms(15)
            .loss(0.10);
        let (nf, _) = sim.add_duplex_link(near, far, idle.clone());
        sim.compute_routes();
        // Episode via link modulation between 10 s and 20 s.
        let congested = LinkConfig::new(10_000_000, SimDuration::from_millis(14))
            .buffer_ms(3)
            .loss(0.10);
        sim.schedule_link_reconfig(SimTime::from_secs(10), nf, congested);
        sim.schedule_link_reconfig(SimTime::from_secs(20), nf, idle);
        sim.run_until(SimTime::from_secs(31));

        let p: &TslpProber = sim.agent(vantage).unwrap();
        // ~19% of far probes lost (10% each way); series still dense.
        let far_series = p.far().unwrap();
        assert!(
            far_series.len() > 100,
            "far series thinned to {}",
            far_series.len()
        );
        assert!((far_series.len() as f64) < 0.95 * p.near().len() as f64);
        let eps = interdomain_episodes(
            p.near(),
            far_series,
            DetectorParams {
                min_elevation_ms: 8.0,
                min_run: 3,
            },
        );
        assert_eq!(eps.len(), 1, "{eps:?}");
        assert!(eps[0].start >= SimTime::from_secs(9));
        assert!(eps[0].end <= SimTime::from_secs(21));
    }

    /// A vantage probes across a shaped interdomain link while a CBR
    /// burst congests it mid-run; the detector must find the episode on
    /// the far side only.
    #[test]
    fn probe_through_congested_link_detects_episode() {
        let mut sim = Simulator::new(77);
        let vantage = sim.add_host(Box::new(TslpProber::new(
            vec![NodeId(1), NodeId(2)],
            SimDuration::from_millis(200),
            SimTime::from_secs(30),
            FlowId(90),
        )));
        let near = sim.add_router();
        let far = sim.add_router();
        let sink = sim.add_host(Box::new(SinkAgent::default()));
        // CBR congests the near→far interdomain link from t=10s to 20s.
        let cbr = sim.add_host(Box::new(CbrAgent::new(
            sink,
            FlowId(91),
            105_000_000, // 105% of the 100 Mbps link
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        )));
        sim.add_duplex_link(
            vantage,
            near,
            LinkConfig::new(1_000_000_000, SimDuration::from_millis(9)),
        );
        // The interdomain link: 100 Mbps with a 15 ms buffer (the
        // paper's observed Comcast↔TATA buffer size).
        sim.add_duplex_link(
            near,
            far,
            LinkConfig::new(100_000_000, SimDuration::ZERO).buffer_ms(15),
        );
        sim.add_duplex_link(far, sink, LinkConfig::new(1_000_000_000, SimDuration::ZERO));
        sim.add_duplex_link(cbr, near, LinkConfig::new(1_000_000_000, SimDuration::ZERO));
        sim.compute_routes();
        sim.run_until(SimTime::from_secs(32));

        let p: &TslpProber = sim.agent(vantage).unwrap();
        assert!(p.received > 200, "replies {}", p.received);
        // Baseline ≈ 18 ms to the far router; episodes elevate by ~15 ms.
        let far_series = p.far().unwrap();
        assert!((far_series.baseline_ms().unwrap() - 18.0).abs() < 2.0);
        let params = DetectorParams {
            min_elevation_ms: 8.0,
            min_run: 5,
        };
        let eps = interdomain_episodes(p.near(), far_series, params);
        assert_eq!(eps.len(), 1, "episodes: {eps:?}");
        let ep = eps[0];
        assert!(ep.start >= SimTime::from_secs(9) && ep.start <= SimTime::from_secs(12));
        assert!(ep.end >= SimTime::from_secs(19) && ep.end <= SimTime::from_secs(22));
        assert!(ep.peak_ms > 28.0, "peak {}", ep.peak_ms);
        // Near side stayed flat.
        assert!(detect_episodes(p.near(), params).is_empty());
    }
}
