//! Time-Series Latency Probing (TSLP, Luckie et al., IMC 2014).
//!
//! TSLP sends periodic latency probes from a vantage point inside a
//! network to the *near* and *far* routers of an interdomain link. An
//! elevated far-side RTT with a flat near-side RTT indicates queueing
//! on the interdomain link itself. The paper uses TSLP to find the
//! occasionally congested Comcast↔TATA link behind its `TSLP2017`
//! dataset.

use crate::timeseries::LatencySeries;
use csig_netsim::{
    Agent, Ctx, FlowId, NodeId, Packet, PacketKind, PacketSpec, ProbeKind, SimDuration, SimTime,
    TimerToken,
};

/// A probing agent: every `interval` it sends one probe to each target
/// and records the replies' RTTs per target.
pub struct TslpProber {
    targets: Vec<NodeId>,
    interval: SimDuration,
    stop: SimTime,
    flow: FlowId,
    seq: u64,
    /// One latency series per target, in target order.
    pub series: Vec<LatencySeries>,
    /// Probes sent per target.
    pub sent: u64,
    /// Replies received across targets.
    pub received: u64,
}

impl TslpProber {
    /// A prober towards `targets` (conventionally `[near, far]`).
    pub fn new(targets: Vec<NodeId>, interval: SimDuration, stop: SimTime, flow: FlowId) -> Self {
        assert!(!targets.is_empty(), "need at least one target");
        assert!(!interval.is_zero(), "interval must be positive");
        let series = targets.iter().map(|_| LatencySeries::new()).collect();
        TslpProber {
            targets,
            interval,
            stop,
            flow,
            seq: 0,
            series,
            sent: 0,
            received: 0,
        }
    }

    /// The near-side series (first target).
    pub fn near(&self) -> &LatencySeries {
        &self.series[0]
    }

    /// The far-side series (second target), if configured.
    pub fn far(&self) -> Option<&LatencySeries> {
        self.series.get(1)
    }

    fn probe_round(&mut self, ctx: &mut Ctx) {
        for (i, &target) in self.targets.iter().enumerate() {
            // ident encodes the target index; the reply echoes it.
            let ident = (self.seq << 8) | i as u64;
            ctx.send(PacketSpec::probe(
                self.flow,
                target,
                ProbeKind::Request,
                ident,
            ));
            self.sent += 1;
        }
        self.seq += 1;
    }
}

impl Agent for TslpProber {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        if let PacketKind::Probe {
            kind: ProbeKind::Reply { sent_at },
            ident,
        } = pkt.kind
        {
            let target = (ident & 0xFF) as usize;
            if let Some(series) = self.series.get_mut(target) {
                let rtt = ctx.now().saturating_since(sent_at);
                series.push(sent_at, rtt);
                self.received += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: TimerToken) {
        if ctx.now() > self.stop {
            return;
        }
        self.probe_round(ctx);
        ctx.set_timer(self.interval, 0);
    }

    fn name(&self) -> &'static str {
        "tslp-prober"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csig_netsim::{LinkConfig, Simulator};

    #[test]
    fn prober_measures_near_and_far() {
        let mut sim = Simulator::new(3);
        let vantage = sim.add_host(Box::new(TslpProber::new(
            vec![NodeId(1), NodeId(2)],
            SimDuration::from_millis(100),
            SimTime::from_secs(2),
            FlowId(50),
        )));
        let near = sim.add_router();
        let far = sim.add_router();
        sim.add_duplex_link(
            vantage,
            near,
            LinkConfig::new(100_000_000, SimDuration::from_millis(5)),
        );
        sim.add_duplex_link(
            near,
            far,
            LinkConfig::new(100_000_000, SimDuration::from_millis(10)),
        );
        sim.compute_routes();
        sim.run_until(SimTime::from_secs(3));
        let p: &TslpProber = sim.agent(vantage).unwrap();
        assert!(p.sent >= 40, "sent {}", p.sent);
        assert_eq!(p.received, p.sent, "probe loss on a clean path");
        let near_rtt = p.near().median_ms().unwrap();
        let far_rtt = p.far().unwrap().median_ms().unwrap();
        assert!((near_rtt - 10.0).abs() < 1.0, "near {near_rtt}");
        assert!((far_rtt - 30.0).abs() < 1.0, "far {far_rtt}");
    }

    #[test]
    fn prober_stops_at_deadline() {
        let mut sim = Simulator::new(4);
        let vantage = sim.add_host(Box::new(TslpProber::new(
            vec![NodeId(1)],
            SimDuration::from_millis(10),
            SimTime::from_millis(100),
            FlowId(1),
        )));
        let r = sim.add_router();
        sim.add_duplex_link(
            vantage,
            r,
            LinkConfig::new(1_000_000_000, SimDuration::from_millis(1)),
        );
        sim.compute_routes();
        sim.run_until(SimTime::from_secs(1));
        let p: &TslpProber = sim.agent(vantage).unwrap();
        // ~11 rounds (t = 0, 10, …, 100).
        assert!((10..=12).contains(&p.sent), "sent {}", p.sent);
    }
}
