//! Latency time series collected by the prober.

use csig_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// RTT samples over time for one probe target.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySeries {
    /// `(probe send time, measured RTT)`, in send order.
    pub points: Vec<(SimTime, SimDuration)>,
}

impl LatencySeries {
    /// Empty series.
    pub fn new() -> Self {
        LatencySeries::default()
    }

    /// Append a sample.
    pub fn push(&mut self, at: SimTime, rtt: SimDuration) {
        self.points.push((at, rtt));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no samples exist.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// RTT values in milliseconds.
    pub fn rtts_ms(&self) -> Vec<f64> {
        self.points.iter().map(|(_, r)| r.as_millis_f64()).collect()
    }

    /// Median RTT in milliseconds.
    pub fn median_ms(&self) -> Option<f64> {
        csig_features::median(&self.rtts_ms())
    }

    /// Interpolated percentile of RTT in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        csig_features::percentile(&self.rtts_ms(), p)
    }

    /// Baseline latency: a low percentile (default p10), robust to
    /// congestion episodes occupying a minority of samples.
    pub fn baseline_ms(&self) -> Option<f64> {
        self.percentile_ms(10.0)
    }

    /// Samples within `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> LatencySeries {
        LatencySeries {
            points: self
                .points
                .iter()
                .filter(|(t, _)| *t >= from && *t < to)
                .copied()
                .collect(),
        }
    }

    /// Minimum RTT within `[from, to)`, in milliseconds.
    pub fn min_in_window_ms(&self, from: SimTime, to: SimTime) -> Option<f64> {
        self.points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, r)| r.as_millis_f64())
            .min_by(f64::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values_ms: &[u64]) -> LatencySeries {
        let mut s = LatencySeries::new();
        for (i, &v) in values_ms.iter().enumerate() {
            s.push(SimTime::from_secs(i as u64), SimDuration::from_millis(v));
        }
        s
    }

    #[test]
    fn summary_statistics() {
        let s = series(&[10, 12, 11, 50, 10]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.median_ms(), Some(11.0));
        assert!(s.baseline_ms().unwrap() < 11.0);
    }

    #[test]
    fn windowing() {
        let s = series(&[10, 20, 30, 40]);
        let w = s.window(SimTime::from_secs(1), SimTime::from_secs(3));
        assert_eq!(w.len(), 2);
        assert_eq!(
            s.min_in_window_ms(SimTime::from_secs(1), SimTime::from_secs(4)),
            Some(20.0)
        );
        assert_eq!(
            s.min_in_window_ms(SimTime::from_secs(10), SimTime::from_secs(20)),
            None
        );
    }

    #[test]
    fn empty_series_is_safe() {
        let s = LatencySeries::new();
        assert!(s.is_empty());
        assert_eq!(s.median_ms(), None);
        assert_eq!(s.baseline_ms(), None);
    }
}
