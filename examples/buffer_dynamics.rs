//! Watch the mechanism behind the signature: sample the bottleneck
//! buffer's occupancy and the flow's RTT while a download's slow start
//! fills it (self-induced), then repeat behind a congested interconnect
//! (external) — the §2 intuition of the paper, rendered in ASCII.
//!
//! ```sh
//! cargo run --release --example buffer_dynamics
//! ```

use tcp_congestion_signatures::prelude::*;
use tcp_congestion_signatures::testbed;
use tcp_congestion_signatures::trace::{extract_rtt_samples, split_flows};

fn bar(v: f64, max: f64, width: usize) -> String {
    let n = ((v / max) * width as f64).clamp(0.0, width as f64) as usize;
    format!("{}{}", "#".repeat(n), " ".repeat(width - n))
}

fn main() {
    for (world, external) in [("self-induced", false), ("external", true)] {
        let mut cfg = TestbedConfig::scaled(AccessParams::figure1(), 321);
        if external {
            cfg = cfg.externally_congested();
        }
        let mut tb = testbed::build(&cfg);
        let cap = tb.attach_capture();

        // Sample the access-link buffer occupancy every 100 ms from
        // test start through the first second of the test.
        let access = tb.access_down;
        let interconnect = tb.interconnect_down;
        let mut occupancy: Vec<(SimTime, u64, u64)> = Vec::new();
        tb.sim.run_until(tb.test_start);
        let horizon = tb.test_start + SimDuration::from_millis(1500);
        tb.sim
            .run_sampled(horizon, SimDuration::from_millis(100), |sim| {
                occupancy.push((
                    sim.now(),
                    sim.link(access).queued_bytes(),
                    sim.link(interconnect).queued_bytes(),
                ));
            });
        tb.sim
            .run_until(tb.test_end + SimDuration::from_millis(500));

        let access_cap = tb.sim.link(access).buffer_capacity() as f64;
        let icl_cap = tb.sim.link(interconnect).buffer_capacity() as f64;

        println!("== {world} scenario ==");
        println!("time(s)  access buffer {:20}  interconnect buffer", "");
        for (t, acc, icl) in &occupancy {
            println!(
                "  {:5.2}  [{}] {:3.0}%   [{}] {:3.0}%",
                t.as_secs_f64(),
                bar(*acc as f64, access_cap, 20),
                100.0 * *acc as f64 / access_cap,
                bar(*icl as f64, icl_cap, 20),
                100.0 * *icl as f64 / icl_cap,
            );
        }

        // And the resulting RTT ramp from the trace.
        let capture = tb.sim.take_capture(cap);
        let flows = split_flows(&capture);
        let samples = extract_rtt_samples(&flows[&testbed::TEST_FLOW]);
        let ss = detect_slow_start(&flows[&testbed::TEST_FLOW]);
        let win: Vec<f64> = samples
            .iter()
            .filter(|s| s.at <= ss.boundary())
            .map(|s| s.rtt.as_millis_f64())
            .collect();
        if let Ok(f) = features_from_rtts_ms(&win) {
            println!(
                "slow-start RTT: {:.0} → {:.0} ms over {} samples  →  \
                 NormDiff={:.2} CoV={:.2}\n",
                f.min_rtt_ms, f.max_rtt_ms, f.samples, f.norm_diff, f.cov
            );
        } else {
            println!("slow start too short to featurize\n");
        }
    }
    println!(
        "self-induced: the ACCESS buffer ramps from empty to full during\n\
         slow start (the RTT climbs with it). external: the INTERCONNECT\n\
         buffer is already pegged before the test begins, so the flow\n\
         inherits a high but stable RTT."
    );
}
