//! A miniature Dispute2014 study: generate a synthetic M-Lab campaign
//! around a peering dispute, show the diurnal throughput collapse on
//! affected paths, and watch the classifier detect the dispute from
//! per-flow signatures alone.
//!
//! ```sh
//! cargo run --release --example peering_dispute
//! ```

use tcp_congestion_signatures::mlab::{
    diurnal_throughput, generate_jobs, is_off_peak_hour, is_peak_hour, AccessIsp,
    Dispute2014Config, Month, TransitSite,
};
use tcp_congestion_signatures::prelude::*;
use tcp_congestion_signatures::testbed;

fn main() {
    println!("generating a small Dispute2014 campaign (480 simulated NDT tests)…");
    let cfg = Dispute2014Config {
        tests_per_cell: 10,
        test_duration: SimDuration::from_secs(3),
        seed: 14,
    };
    let tests = generate_jobs(&cfg, 0, |e| {
        if e.done % 120 == 0 {
            println!("  {}/{}", e.done, e.total);
        }
    });

    // The macroscopic evidence (paper Figure 5): peak-hour throughput
    // collapses on Cogent↔Comcast in Jan–Feb, recovers by Mar–Apr, and
    // Cox never suffers.
    println!("\nmean NDT throughput (Mbps), Cogent LAX, Jan–Feb:");
    for isp in AccessIsp::ALL {
        let series = diurnal_throughput(
            &tests,
            TransitSite::CogentLax,
            isp,
            &[Month::Jan, Month::Feb],
        );
        let mean_of = |peak: bool| {
            let v: Vec<f64> = series
                .iter()
                .filter(|(h, _, _)| is_peak_hour(*h) == peak)
                .map(|&(_, m, _)| m)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        println!(
            "  {:>11}: off-peak {:5.1}  peak {:5.1}",
            isp.name(),
            mean_of(false),
            mean_of(true)
        );
    }

    // Train a classifier on testbed data (the paper's methodology) and
    // measure the fraction of flows classified self-induced per
    // (ISP, timeframe) — the paper's Figure 7.
    println!("\ntraining testbed model…");
    let results = Sweep {
        grid: testbed::small_grid(),
        reps: 5,
        profile: Profile::Scaled,
        seed: 99,
    }
    .run(|_, _| {});
    let clf = train_from_results(&results, 0.7, TreeParams::default()).expect("model");

    println!("fraction of flows classified self-induced (Cogent LAX):");
    println!("  {:>11}  Jan-Feb(peak)  Mar-Apr(off-peak)", "ISP");
    for isp in AccessIsp::ALL {
        let frac = |months: &[Month], peak: bool| {
            let flows: Vec<_> = tests
                .iter()
                .filter(|t| {
                    t.site == TransitSite::CogentLax
                        && t.isp == isp
                        && months.contains(&t.month)
                        && if peak {
                            is_peak_hour(t.hour)
                        } else {
                            is_off_peak_hour(t.hour)
                        }
                })
                .filter_map(|t| t.measurement.features.as_ref().ok())
                .collect();
            if flows.is_empty() {
                return f64::NAN;
            }
            flows
                .iter()
                .filter(|f| clf.classify(f) == CongestionClass::SelfInduced)
                .count() as f64
                / flows.len() as f64
        };
        println!(
            "  {:>11}  {:>12.0}%  {:>16.0}%",
            isp.name(),
            100.0 * frac(&[Month::Jan, Month::Feb], true),
            100.0 * frac(&[Month::Mar, Month::Apr], false),
        );
    }
    println!(
        "\nexpected shape: affected ISPs (Comcast/TimeWarner/Verizon) jump\n\
         from a low self-induced fraction during the dispute to a high one\n\
         after it; Cox stays high throughout."
    );
}
