//! Quickstart: train the congestion-signature classifier on simulated
//! testbed data and diagnose a fresh throughput test.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tcp_congestion_signatures::prelude::*;

fn main() {
    // 1. A small training sweep over the paper's §3.1 grid (scaled
    //    fidelity profile; see DESIGN.md). Each grid point runs both a
    //    self-induced and an externally congested scenario.
    let grid = vec![
        AccessParams {
            rate_mbps: 10,
            loss_pct: 0.02,
            latency_ms: 20,
            buffer_ms: 50,
        },
        AccessParams {
            rate_mbps: 20,
            loss_pct: 0.02,
            latency_ms: 20,
            buffer_ms: 100,
        },
        AccessParams {
            rate_mbps: 50,
            loss_pct: 0.02,
            latency_ms: 40,
            buffer_ms: 50,
        },
    ];
    println!("running training sweep (12 simulated throughput tests)…");
    let results = Sweep {
        grid,
        reps: 2,
        profile: Profile::Scaled,
        seed: 42,
    }
    .run(|done, total| {
        if done % 4 == 0 {
            println!("  {done}/{total}");
        }
    });

    // 2. Train a depth-4 decision tree on [NormDiff, CoV] with the
    //    paper's threshold labeling (0.8 × access capacity).
    let clf = train_from_results(&results, 0.8, TreeParams::default())
        .expect("sweep produced both classes");
    println!(
        "\ntrained on {} flows ({} filtered by labeling); learned rules:\n{}",
        clf.meta.n_train,
        clf.meta.n_filtered,
        clf.render()
    );

    // 3. Diagnose two fresh speed tests the model has never seen.
    println!("diagnosing fresh tests…");
    let self_test = run_test(&TestbedConfig::scaled(AccessParams::figure1(), 777));
    let ext_test =
        run_test(&TestbedConfig::scaled(AccessParams::figure1(), 778).externally_congested());
    for (name, t) in [
        ("idle path", &self_test),
        ("congested interconnect", &ext_test),
    ] {
        let f = t.features.as_ref().expect("features");
        let class = clf.classify(f);
        println!(
            "  {name:>24}: NormDiff={:.3} CoV={:.3} → {class} \
             (throughput {:.1} Mbps of {} Mbps plan)",
            f.norm_diff,
            f.cov,
            t.throughput.mean_bps / 1e6,
            t.access_rate_bps / 1_000_000,
        );
    }
}
