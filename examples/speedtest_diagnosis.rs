//! Speed-test diagnosis: the paper's motivating application.
//!
//! A subscriber runs a speed test and gets less than they pay for. Is
//! the bottleneck their own access link (upgrade the plan) or a
//! congested interconnect (nothing they can do)? This example runs a
//! speed test in both worlds, analyzes the *server-side capture only*
//! (no client cooperation, no out-of-band probes), prints the verdicts
//! and exports a real pcap of one test.
//!
//! ```sh
//! cargo run --release --example speedtest_diagnosis
//! ```

use tcp_congestion_signatures::prelude::*;
use tcp_congestion_signatures::testbed;
use tcp_congestion_signatures::trace::write_pcap;

fn main() {
    // A pre-trained model would normally be loaded from JSON; train a
    // quick one here so the example is self-contained.
    println!("training a diagnosis model…");
    let results = Sweep {
        grid: testbed::small_grid(),
        reps: 4,
        profile: Profile::Scaled,
        seed: 7,
    }
    .run(|_, _| {});
    let clf = train_from_results(&results, 0.7, TreeParams::default()).expect("model");
    println!("model trained on {} labeled flows\n", clf.meta.n_train);

    // The subscriber: a 20 Mbps plan with a 100 ms modem buffer.
    let plan = AccessParams::figure1();

    for (world, external) in [("healthy interconnect", false), ("peering dispute", true)] {
        // A small fraction of tests lose their whole first window and
        // yield too few slow-start samples to classify (the paper
        // filters those as well); retry with a fresh seed if so.
        let mut capture = None;
        for attempt in 0..5u64 {
            let mut cfg = TestbedConfig::scaled(plan, 0xBEEF + 16 * attempt + external as u64);
            if external {
                cfg = cfg.externally_congested();
            }
            // Run the test and capture at the server, like the paper.
            let mut tb = testbed::build(&cfg);
            let cap_h = tb.attach_capture();
            let horizon = tb.test_end + SimDuration::from_millis(500);
            tb.sim.run_until(horizon);
            let cap = tb.sim.take_capture(cap_h);
            let classifiable = analyze_capture(&clf, &cap)
                .iter()
                .all(|r| r.verdict.is_ok());
            capture = Some(cap);
            if classifiable {
                break;
            }
        }
        let capture = capture.expect("at least one attempt ran");

        // Server-side analysis of every flow in the capture.
        let reports = analyze_capture(&clf, &capture);
        println!("[{world}] capture held {} flow(s):", reports.len());
        for report in reports {
            match report.verdict {
                Ok(v) => {
                    let advice = match v.class {
                        CongestionClass::SelfInduced => {
                            "your plan is the limit — consider upgrading"
                        }
                        CongestionClass::External => {
                            "congestion beyond your ISP plan — upgrading won't help"
                        }
                    };
                    println!(
                        "  flow {}: {} (confidence {:.0}%)\n    NormDiff={:.3} CoV={:.3} \
                         over {} slow-start samples\n    → {advice}",
                        report.flow,
                        v.class,
                        v.confidence * 100.0,
                        v.features.norm_diff,
                        v.features.cov,
                        v.features.samples,
                    );
                }
                Err(e) => println!("  flow {}: not classifiable ({e})", report.flow),
            }
        }

        // Export the second world's capture as a genuine pcap.
        if external {
            let path = std::env::temp_dir().join("speedtest_external.pcap");
            let mut file = std::fs::File::create(&path).expect("create pcap");
            let n = write_pcap(&capture, &mut file).expect("write pcap");
            println!(
                "  wrote {n} packets to {} (open it in wireshark)",
                path.display()
            );
        }
        println!();
    }
}
