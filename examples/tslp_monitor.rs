//! Interdomain congestion monitoring with TSLP + per-flow signatures:
//! the paper's 2017 targeted experiment in miniature.
//!
//! A vantage point probes the near and far routers of an interconnect
//! for days while periodic NDT tests run across it. TSLP level-shift
//! detection finds the congestion episodes; the signature classifier
//! independently diagnoses each test — and the two must agree.
//!
//! ```sh
//! cargo run --release --example tslp_monitor
//! ```

use tcp_congestion_signatures::mlab::{label_tslp2017, run_campaign_jobs, Tslp2017Config};
use tcp_congestion_signatures::prelude::*;
use tcp_congestion_signatures::testbed;
use tcp_congestion_signatures::tslp::{interdomain_episodes, DetectorParams};

fn main() {
    let cfg = Tslp2017Config {
        days: 5,
        episode_days: vec![1, 3],
        peak_test_minutes: 60,
        offpeak_test_minutes: 180,
        test_duration: SimDuration::from_secs(3),
        ..Tslp2017Config::default()
    };
    println!(
        "running a {}-day campaign (continuous TSLP probing + periodic NDT tests)…",
        cfg.days
    );
    let out = run_campaign_jobs(&cfg, 0, |e| {
        if e.done % 30 == 0 {
            println!("  NDT test {}/{}", e.done, e.total);
        }
    });

    println!(
        "\nTSLP: {} probes; far-router baseline {:.1} ms (near {:.1} ms)",
        out.far.len(),
        out.far.baseline_ms().unwrap(),
        out.near.baseline_ms().unwrap(),
    );

    let detected = interdomain_episodes(
        &out.near,
        &out.far,
        DetectorParams {
            min_elevation_ms: 6.0,
            min_run: 2,
        },
    );
    println!("detected interdomain congestion episodes:");
    for ep in &detected {
        println!(
            "  day {:.2} → day {:.2}, peak RTT {:.1} ms",
            ep.start.as_secs_f64() / 86_400.0,
            ep.end.as_secs_f64() / 86_400.0,
            ep.peak_ms
        );
    }
    println!("(ground truth: {} scheduled episodes)", out.episodes.len());

    // Classify each NDT test with a testbed-trained model and compare
    // against the TSLP-based labeling.
    println!("\ntraining classifier…");
    let results = Sweep {
        grid: testbed::small_grid(),
        reps: 5,
        profile: Profile::Scaled,
        seed: 3,
    }
    .run(|_, _| {});
    let clf = train_from_results(&results, 0.7, TreeParams::default()).expect("model");

    let mut agree = 0usize;
    let mut total = 0usize;
    let mut external_right = 0usize;
    let mut external_total = 0usize;
    for t in &out.tests {
        let (Some(label), Ok(f)) = (label_tslp2017(t, cfg.plan_mbps), &t.measurement.features)
        else {
            continue;
        };
        let pred = clf.classify(f);
        total += 1;
        if pred == label {
            agree += 1;
        }
        if label == CongestionClass::External {
            external_total += 1;
            if pred == label {
                external_right += 1;
            }
        }
    }
    println!(
        "classifier vs TSLP labels: {agree}/{total} agree \
         ({external_right}/{external_total} on external-congestion tests)"
    );
}
