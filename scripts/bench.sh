#!/usr/bin/env bash
# Performance tracking entry point.
#
# Runs the criterion event-loop suite, then the throughput tracker that
# writes BENCH_netsim.json (events/sec, ns/event, peak pending events,
# and speedup vs results/bench_baseline.json when that file exists).
#
# Usage: scripts/bench.sh [--quick]
#   --quick   skip the criterion suite; only refresh BENCH_netsim.json
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

if [ "$QUICK" -eq 0 ]; then
    echo "== criterion: event_loop suite =="
    cargo bench -p csig-bench --bench event_loop
fi

echo "== throughput tracker: BENCH_netsim.json =="
cargo build --release -p csig-bench --bin bench_netsim
./target/release/bench_netsim --reps "${BENCH_REPS:-9}"

echo "== BENCH_netsim.json =="
cat BENCH_netsim.json
