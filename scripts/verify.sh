#!/usr/bin/env bash
# Full verification gate: build, test, format, lint.
# Run from the repository root: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --doc --workspace"
cargo test -q --doc --workspace

echo "==> cargo test -q --test stream_equivalence (streaming == batch)"
cargo test -q --test stream_equivalence

echo "==> observability: same-seed campaign snapshots are jobs-invariant"
obsdir="$(mktemp -d)"
trap 'rm -rf "$obsdir"' EXIT
./target/release/fig1 2 --seed 7 --jobs 1 \
  --metrics-out "$obsdir/m1.json" --trace-out "$obsdir/t1.jsonl" >/dev/null 2>&1
./target/release/fig1 2 --seed 7 --jobs 4 \
  --metrics-out "$obsdir/m2.json" --trace-out "$obsdir/t2.jsonl" >/dev/null 2>&1
test -s "$obsdir/m1.json" || { echo "verify: empty metrics snapshot"; exit 1; }
test -s "$obsdir/t1.jsonl" || { echo "verify: empty trace"; exit 1; }
grep -q '"sim.events"' "$obsdir/m1.json" || { echo "verify: snapshot missing sim.events"; exit 1; }
cmp -s "$obsdir/m1.json" "$obsdir/m2.json" || { echo "verify: metrics snapshot differs across --jobs"; exit 1; }
cmp -s "$obsdir/t1.jsonl" "$obsdir/t2.jsonl" || { echo "verify: trace differs across --jobs"; exit 1; }

echo "==> cargo bench --workspace --no-run (benches stay compiling)"
cargo bench --workspace --no-run

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -p csig-netsim --all-targets -- -D clippy::perf (hot-path perf gate)"
cargo clippy -p csig-netsim --all-targets -- -D clippy::perf

echo "verify: all checks passed"
