#!/usr/bin/env bash
# Full verification gate: build, test, format, lint.
# Run from the repository root: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --doc --workspace"
cargo test -q --doc --workspace

echo "==> cargo test -q --test stream_equivalence (streaming == batch)"
cargo test -q --test stream_equivalence

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all checks passed"
