//! `csig` — command-line interface to the congestion-signature
//! classifier.
//!
//! ```text
//! csig train [--out model.json] [--reps N] [--threshold T] [--full-grid]
//!     Run a labeled testbed sweep and write a trained model.
//!
//! csig classify <capture.pcap> [--model model.json] [--server-port P]
//!     Classify every TCP flow of a server-side packet capture
//!     (tcpdump microsecond/nanosecond pcap, Ethernet or raw-IP).
//!     Without --model, a default model is trained on the fly.
//!
//! csig simulate [--external] [--out capture.pcap] [--seed S]
//!     Run one simulated speed test and export its server-side capture.
//!
//! csig inspect <capture.pcap> [--server-port P]
//!     Per-flow RTT/slow-start statistics without classification.
//! ```
//!
//! Sweeping subcommands accept the shared execution flags (`--jobs N`,
//! `--seed S`, `--progress`) parsed by `csig_exec::cli::CommonArgs`.

use std::fs;
use std::process::ExitCode;

use csig_core::{train_sweep_with, SignatureClassifier};
use csig_dtree::TreeParams;
use csig_exec::cli::CommonArgs;
use csig_features::features_from_samples;
use csig_netsim::SimDuration;
use csig_testbed::{paper_grid, small_grid, AccessParams, Profile, Sweep, TestbedConfig};
use csig_trace::{
    capacity_estimate_bps, detect_slow_start, extract_rtt_samples, import_pcap, split_flows,
    throughput_summary, write_pcap, ServerSelector,
};

fn main() -> ExitCode {
    let all: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = all.first().cloned() else {
        eprintln!("{}", USAGE);
        return ExitCode::FAILURE;
    };
    let args = CommonArgs::from_vec(all[1..].to_vec());
    let result = match cmd.as_str() {
        "train" => cmd_train(&args),
        "classify" => cmd_classify(&args),
        "simulate" => cmd_simulate(&args),
        "inspect" => cmd_inspect(&args),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("csig: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  csig train    [--out model.json] [--reps N] [--threshold T] [--full-grid]
                [--seed S] [--jobs N] [--progress]
  csig classify <capture.pcap> [--model model.json] [--server-port P] [--jobs N]
  csig simulate [--external] [--out capture.pcap] [--seed S]
  csig inspect  <capture.pcap> [--server-port P]";

fn cmd_train(args: &CommonArgs) -> Result<(), String> {
    let out = args
        .flag_value("--out")
        .cloned()
        .unwrap_or_else(|| "model.json".into());
    let reps: u32 = args.parsed_flag("--reps")?.unwrap_or(4);
    let threshold: f64 = args.parsed_flag("--threshold")?.unwrap_or(0.7);
    let grid = if args.has_flag("--full-grid") {
        paper_grid()
    } else {
        small_grid()
    };
    eprintln!(
        "training: {} grid points × {reps} reps × 2 scenarios on {} workers…",
        grid.len(),
        args.executor().jobs()
    );
    let sweep = Sweep {
        grid,
        reps,
        profile: Profile::Scaled,
        seed: args.seed_or(42),
    };
    let (_, model) = train_sweep_with(
        &sweep,
        threshold,
        TreeParams::default(),
        &args.executor(),
        args.progress_printer(10),
    );
    let clf = model.ok_or("sweep produced a single class; try a different threshold")?;
    fs::write(&out, clf.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!(
        "model trained on {} flows ({} filtered), written to {out}",
        clf.meta.n_train, clf.meta.n_filtered
    );
    println!("{}", clf.render());
    let imp = clf.tree().feature_importances();
    println!(
        "feature importances: NormDiff={:.2} CoV={:.2}",
        imp[0], imp[1]
    );
    Ok(())
}

fn load_or_train_model(args: &CommonArgs) -> Result<SignatureClassifier, String> {
    match args.flag_value("--model") {
        Some(path) => {
            let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            SignatureClassifier::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))
        }
        None => {
            eprintln!("no --model given; training a default model (~1 min)…");
            let sweep = Sweep {
                grid: small_grid(),
                reps: 4,
                profile: Profile::Scaled,
                seed: 42,
            };
            let (_, model) =
                train_sweep_with(&sweep, 0.7, TreeParams::default(), &args.executor(), |_| {});
            model.ok_or_else(|| "default training failed".into())
        }
    }
}

fn load_capture(args: &CommonArgs) -> Result<csig_netsim::Capture, String> {
    let path = args.positional().ok_or("missing capture path")?;
    let selector = match args.flag_value("--server-port") {
        Some(p) => ServerSelector::Port(p.parse().map_err(|_| "bad --server-port")?),
        None => ServerSelector::MostBytesSent,
    };
    let file = fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    import_pcap(file, selector).map_err(|e| e.to_string())
}

fn cmd_classify(args: &CommonArgs) -> Result<(), String> {
    let capture = load_capture(args)?;
    let clf = load_or_train_model(args)?;
    let reports = csig_core::analyze_capture(&clf, &capture);
    if reports.is_empty() {
        return Err("no TCP flows found (wrong --server-port?)".into());
    }
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>8} {:>10}",
        "flow", "class", "conf", "NormDiff", "CoV", "samples"
    );
    for r in reports {
        match r.verdict {
            Ok(v) => println!(
                "{:>6} {:>10} {:>8.0}% {:>9.3} {:>8.3} {:>10}",
                r.flow.0,
                v.class.label(),
                v.confidence * 100.0,
                v.features.norm_diff,
                v.features.cov,
                v.features.samples
            ),
            Err(e) => println!("{:>6} {:>10}  ({e})", r.flow.0, "skipped"),
        }
    }
    Ok(())
}

fn cmd_simulate(args: &CommonArgs) -> Result<(), String> {
    let out = args
        .flag_value("--out")
        .cloned()
        .unwrap_or_else(|| "capture.pcap".into());
    let mut cfg = TestbedConfig::scaled(AccessParams::figure1(), args.seed_or(7));
    if args.has_flag("--external") {
        cfg = cfg.externally_congested();
    }
    eprintln!(
        "simulating a speed test ({}; 20 Mbps plan, 100 ms buffer)…",
        if args.has_flag("--external") {
            "congested interconnect"
        } else {
            "idle path"
        }
    );
    let mut tb = csig_testbed::build(&cfg);
    let cap = tb.attach_capture();
    tb.sim
        .run_until(tb.test_end + SimDuration::from_millis(500));
    let capture = tb.sim.take_capture(cap);
    let file = fs::File::create(&out).map_err(|e| format!("creating {out}: {e}"))?;
    let n = write_pcap(&capture, file).map_err(|e| e.to_string())?;
    eprintln!("wrote {n} packets to {out}");
    Ok(())
}

fn cmd_inspect(args: &CommonArgs) -> Result<(), String> {
    let capture = load_capture(args)?;
    let flows = split_flows(&capture);
    if flows.is_empty() {
        return Err("no TCP flows found".into());
    }
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "flow", "packets", "acked(kB)", "mean Mbps", "ss end(s)", "samples", "capacity est"
    );
    for (flow, trace) in &flows {
        let tput = throughput_summary(trace);
        let ss = detect_slow_start(trace);
        let samples = extract_rtt_samples(trace);
        let feat = features_from_samples(&samples, &ss);
        let cap_est = capacity_estimate_bps(trace, &ss)
            .map(|b| format!("{:.1} Mbps", b / 1e6))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>6} {:>8} {:>10.0} {:>10.2} {:>10} {:>9} {:>12}",
            flow.0,
            trace.len(),
            tput.bytes_acked as f64 / 1e3,
            tput.mean_bps / 1e6,
            ss.end
                .map(|t| format!("{:.2}", t.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            feat.map(|f| f.samples).unwrap_or(0),
            cap_est,
        );
    }
    Ok(())
}
