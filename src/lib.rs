//! # tcp-congestion-signatures
//!
//! A complete Rust reproduction of **"TCP Congestion Signatures"**
//! (Sundaresan, Dhamdhere, Allman, claffy — IMC 2017): a server-side,
//! per-flow technique that tells whether a TCP flow's congestion was
//! **self-induced** (the flow filled an idle bottleneck, typically the
//! subscriber's access link) or **external** (the flow ran into an
//! already congested link, typically an interconnect), from two
//! statistics of the flow RTT during slow start.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`netsim`] | deterministic discrete-event network simulator |
//! | [`tcp`] | packet-level TCP endpoints (NewReno/CUBIC/BBR-lite, SACK) |
//! | [`trace`] | capture analysis: RTT extraction, slow start, pcap |
//! | [`features`] | NormDiff / CoV feature extraction |
//! | [`dtree`] | CART decision tree + metrics |
//! | [`testbed`] | the paper's §3 controlled-experiment harness |
//! | [`tslp`] | time-series latency probing |
//! | [`mlab`] | synthetic Dispute2014 / TSLP2017 campaigns |
//! | [`exec`] | scenario/campaign execution (sequential or parallel) |
//! | [`core`] | the classifier API tying it all together |
//!
//! ## Quickstart
//!
//! ```no_run
//! use tcp_congestion_signatures::prelude::*;
//!
//! // 1. Generate labeled training data from the §3 testbed.
//! let sweep = Sweep::scaled(2, 42);
//! let results = sweep.run(|_, _| {});
//!
//! // 2. Train the classifier (threshold 0.8, tree depth 4).
//! let clf = train_from_results(&results, 0.8, TreeParams::default()).unwrap();
//!
//! // 3. Diagnose a new throughput test.
//! let test = run_test(&TestbedConfig::scaled(AccessParams::figure1(), 7));
//! let class = clf.classify(&test.features.unwrap());
//! println!("congestion was: {class}");
//! ```

pub use csig_core as core;
pub use csig_dtree as dtree;
pub use csig_exec as exec;
pub use csig_features as features;
pub use csig_mlab as mlab;
pub use csig_netsim as netsim;
pub use csig_tcp as tcp;
pub use csig_testbed as testbed;
pub use csig_trace as trace;
pub use csig_tslp as tslp;

/// The most common imports in one place.
pub mod prelude {
    pub use csig_core::{
        analyze_capture, ground_truth_accuracy, threshold_sweep, train_from_results, LiveAnalyzer,
        ModelMeta, SignatureClassifier, Verdict,
    };
    pub use csig_dtree::{Dataset, DecisionTree, TreeParams};
    pub use csig_exec::{Campaign, Executor, ProgressEvent, Scenario};
    pub use csig_features::{
        features_from_rtts_ms, features_from_samples, CongestionClass, FlowFeatures, FlowProbe,
    };
    pub use csig_netsim::{LinkConfig, NodeId, QueueKind, SimDuration, SimTime, Simulator};
    pub use csig_tcp::{
        CcKind, ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent,
    };
    pub use csig_testbed::{
        run_test, AccessParams, CongestionMode, Profile, Sweep, TestResult, TestbedConfig,
    };
    pub use csig_trace::{detect_slow_start, extract_rtt_samples, split_flows, throughput_summary};
}
