//! Reproducibility: every layer of the stack is a pure function of its
//! seed.

use tcp_congestion_signatures::prelude::*;

#[test]
fn testbed_results_are_bit_identical_across_runs() {
    let mk = || run_test(&TestbedConfig::scaled(AccessParams::figure1(), 31337));
    let a = mk();
    let b = mk();
    assert_eq!(a.throughput.bytes_acked, b.throughput.bytes_acked);
    assert_eq!(a.ss_throughput_bps, b.ss_throughput_bps);
    let (fa, fb) = (a.features.unwrap(), b.features.unwrap());
    assert_eq!(fa.norm_diff, fb.norm_diff);
    assert_eq!(fa.cov, fb.cov);
    assert_eq!(fa.samples, fb.samples);
}

#[test]
fn different_seeds_differ() {
    let a = run_test(&TestbedConfig::scaled(AccessParams::figure1(), 1));
    let b = run_test(&TestbedConfig::scaled(AccessParams::figure1(), 2));
    // Jitter and cross-traffic randomness must actually vary.
    assert_ne!(
        a.features.unwrap().cov,
        b.features.unwrap().cov,
        "seeds produced identical runs"
    );
}

#[test]
fn training_is_deterministic() {
    let grid = vec![AccessParams::figure1()];
    let mk = || {
        let results = Sweep {
            grid: grid.clone(),
            reps: 2,
            profile: Profile::Scaled,
            seed: 77,
        }
        .run(|_, _| {});
        train_from_results(&results, 0.7, TreeParams::default()).expect("model")
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn mlab_campaign_is_deterministic() {
    use tcp_congestion_signatures::mlab::{generate, Dispute2014Config};
    let cfg = Dispute2014Config {
        tests_per_cell: 1,
        test_duration: SimDuration::from_secs(2),
        seed: 50,
    };
    let a = generate(&cfg);
    let b = generate(&cfg);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.hour, y.hour);
        assert_eq!(x.congested, y.congested);
        assert_eq!(
            x.measurement.throughput.bytes_acked,
            y.measurement.throughput.bytes_acked
        );
    }
}
