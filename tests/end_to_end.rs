//! Cross-crate integration: the full paper pipeline, from simulated
//! testbed through training to held-out diagnosis.

use tcp_congestion_signatures::prelude::*;

fn mini_grid() -> Vec<AccessParams> {
    vec![
        AccessParams {
            rate_mbps: 10,
            loss_pct: 0.02,
            latency_ms: 20,
            buffer_ms: 100,
        },
        AccessParams {
            rate_mbps: 20,
            loss_pct: 0.02,
            latency_ms: 40,
            buffer_ms: 50,
        },
        AccessParams {
            rate_mbps: 20,
            loss_pct: 0.02,
            latency_ms: 20,
            buffer_ms: 20,
        },
    ]
}

#[test]
fn train_serialize_reload_classify() {
    let results = Sweep {
        grid: mini_grid(),
        reps: 2,
        profile: Profile::Scaled,
        seed: 9001,
    }
    .run(|_, _| {});
    let clf = train_from_results(&results, 0.7, TreeParams::default()).expect("model");

    // Model survives JSON round-trip.
    let json = clf.to_json();
    let reloaded = SignatureClassifier::from_json(&json).expect("parse");

    // Fresh, unseen test → both models agree and are correct.
    let t = run_test(&TestbedConfig::scaled(AccessParams::figure1(), 4242));
    let f = t.features.expect("features");
    assert_eq!(clf.classify(&f), reloaded.classify(&f));
    assert_eq!(clf.classify(&f), CongestionClass::SelfInduced);

    let t = run_test(&TestbedConfig::scaled(AccessParams::figure1(), 4243).externally_congested());
    let f = t.features.expect("features");
    assert_eq!(clf.classify(&f), CongestionClass::External);
}

#[test]
fn classifier_needs_no_path_knowledge() {
    // The same model diagnoses paths it never saw: different plan
    // rates, buffers and baseline latencies (the technique's selling
    // point: no a-priori knowledge of capacity or traffic).
    let results = Sweep {
        grid: mini_grid(),
        reps: 2,
        profile: Profile::Scaled,
        seed: 9002,
    }
    .run(|_, _| {});
    let clf = train_from_results(&results, 0.7, TreeParams::default()).expect("model");

    // An unseen config: 50 Mbps, 150 ms buffer, 40 ms latency.
    let unseen = AccessParams {
        rate_mbps: 50,
        loss_pct: 0.0,
        latency_ms: 40,
        buffer_ms: 150,
    };
    let t = run_test(&TestbedConfig::scaled(unseen, 777));
    let f = t.features.expect("features");
    assert_eq!(clf.classify(&f), CongestionClass::SelfInduced);
}

#[test]
fn verdict_confidence_reflects_leaf_purity() {
    let results = Sweep {
        grid: mini_grid(),
        reps: 2,
        profile: Profile::Scaled,
        seed: 9003,
    }
    .run(|_, _| {});
    let clf = train_from_results(&results, 0.7, TreeParams::default()).expect("model");
    let t = run_test(&TestbedConfig::scaled(AccessParams::figure1(), 555));
    let f = t.features.expect("features");
    let (class, conf) = clf.classify_with_confidence(&f);
    assert_eq!(class, CongestionClass::SelfInduced);
    assert!((0.0..=1.0).contains(&conf));
    assert!(conf > 0.5, "confidence {conf}");
}
