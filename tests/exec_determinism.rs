//! Satellite check for the executor layer: a parallel campaign run
//! (`jobs = 4`) must serialize to *exactly* the same bytes as a
//! sequential run (`jobs = 1`). Byte-level comparison of the JSON
//! output is deliberately stricter than field-wise equality — any
//! scheduling-dependent float or reordering shows up here.

use csig_bench::fig1;
use csig_exec::Executor;
use csig_mlab::{dispute2014, Dispute2014Config};
use csig_netsim::SimDuration;
use csig_testbed::Profile;

#[test]
fn fig1_campaign_is_jobs_invariant() {
    let campaign = fig1::campaign(3, Profile::Scaled, 0xF161);
    let seq = Executor::new(1).run(&campaign);
    let par = Executor::new(4).run(&campaign);
    let seq_json = serde_json::to_string(&seq).expect("serialize sequential");
    let par_json = serde_json::to_string(&par).expect("serialize parallel");
    assert_eq!(seq_json, par_json, "fig1 campaign output depends on jobs");
    // And the folded figure data agrees too.
    let a = serde_json::to_string(&fig1::collect(&seq)).unwrap();
    let b = serde_json::to_string(&fig1::collect(&par)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn dispute2014_campaign_is_jobs_invariant() {
    let cfg = Dispute2014Config {
        tests_per_cell: 1,
        test_duration: SimDuration::from_secs(2),
        seed: 0xD157,
    };
    let seq = dispute2014::generate_jobs(&cfg, 1, |_| {});
    let par = dispute2014::generate_jobs(&cfg, 4, |_| {});
    assert_eq!(seq.len(), par.len());
    let seq_json = serde_json::to_string(&seq).expect("serialize sequential");
    let par_json = serde_json::to_string(&par).expect("serialize parallel");
    assert_eq!(seq_json, par_json, "Dispute2014 output depends on jobs");
}
