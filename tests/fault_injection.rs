//! Robustness-layer integration tests: fault-injection determinism
//! across worker counts, and campaign-level panic isolation.
//!
//! * A seeded [`FaultPlan`] must produce a byte-identical impairment
//!   trace whether the campaign runs on 1 worker or 8 — impairment
//!   randomness comes only from the scenario seed.
//! * A scenario that panics mid-campaign must surface as a structured
//!   [`ScenarioError`] while every other scenario's artifact stays
//!   byte-identical to a run that never contained the bad scenario.

use csig_exec::{Campaign, Executor, FailureKind, Scenario};
use csig_netsim::{
    FaultPlan, GilbertElliott, ImpairmentRecord, LinkConfig, SimDuration, SimTime, Simulator,
};
use csig_tcp::{ClientBehavior, ServerSendPolicy, TcpClientAgent, TcpConfig, TcpServerAgent};

/// One impaired TCP download: a server→client transfer over a duplex
/// link whose downstream direction carries the full fault menu (bursty
/// loss, reordering, duplication, a mid-flow flap).
#[derive(Clone, Copy)]
struct ImpairedTransfer;

/// The artifact: the impairment log plus a digest of what the client
/// actually received — both must be independent of worker scheduling.
type TransferArtifact = (Vec<ImpairmentRecord>, u64, u64);

impl Scenario for ImpairedTransfer {
    type Artifact = TransferArtifact;

    fn run(&self, seed: u64) -> TransferArtifact {
        let mut sim = Simulator::new(seed);
        let server = sim.add_host(Box::new(TcpServerAgent::new(
            TcpConfig::default(),
            ServerSendPolicy::Fixed(400_000),
        )));
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Once,
            7,
        )));
        let (down, _up) = sim.add_duplex_link(
            server,
            client,
            LinkConfig::new(10_000_000, SimDuration::from_millis(10)).buffer_ms(100),
        );
        sim.attach_fault_plan(
            down,
            FaultPlan::new()
                .gilbert_elliott(GilbertElliott::bursty(6.0, 0.01))
                .reorder(0.01, SimDuration::from_millis(2))
                .duplicate(0.002)
                .down_between(SimTime::from_millis(150), SimTime::from_millis(180)),
        );
        sim.compute_routes();
        sim.set_event_budget(50_000_000);
        sim.run();
        let stats = &sim.link(down).stats;
        (
            sim.fault_log(down).to_vec(),
            stats.dropped_total(),
            stats.delivered_bytes,
        )
    }
}

#[test]
fn fault_plans_are_jobs_invariant() {
    let mut campaign = Campaign::new(0xFA17);
    for _ in 0..6 {
        campaign.push(ImpairedTransfer);
    }
    let seq = Executor::new(1).run(&campaign);
    let par = Executor::new(8).run(&campaign);
    let seq_json = serde_json::to_string(&seq).expect("serialize sequential");
    let par_json = serde_json::to_string(&par).expect("serialize parallel");
    assert_eq!(seq_json, par_json, "impairment traces depend on jobs");
    // The plans actually fired: every scenario logged impairments and
    // lost something (GE loss + a flap over a 400 kB transfer).
    for (log, dropped, delivered) in &seq {
        assert!(!log.is_empty(), "no impairments logged");
        assert!(*dropped > 0, "nothing dropped");
        assert!(*delivered > 0, "nothing delivered");
    }
    // Different seeds produce different impairment sequences (the log
    // is seed-derived, not constant).
    assert_ne!(seq[0].0, seq[1].0);
}

#[test]
fn panicking_scenario_is_isolated_and_rest_is_byte_identical() {
    // Suppress the default panic-hook backtrace noise from the
    // deliberately panicking worker.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let bad_index = 3;
    let mut full = Campaign::new(0);
    let mut clean = Campaign::new(0);
    for i in 0..8u64 {
        // Seeds fixed at submission so removing the bad scenario does
        // not shift anyone else's seed.
        let seed = 0x5EED_0000 + i;
        let scenario = move |s: u64| {
            if i == bad_index {
                panic!("deliberate failure in scenario {i}");
            }
            ImpairedTransfer.run(s)
        };
        full.push_seeded(seed, scenario);
        if i != bad_index {
            clean.push_seeded(seed, scenario);
        }
    }

    let run = Executor::new(4).run_isolated(&full);
    std::panic::set_hook(hook);

    let failures = run.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].index, bad_index as usize);
    assert_eq!(failures[0].seed, 0x5EED_0000 + bad_index);
    assert_eq!(failures[0].kind, FailureKind::Panicked);
    assert!(failures[0].message.contains("deliberate failure"));
    assert!(run.summary().contains("1/8 scenarios failed"));

    // Every surviving artifact is byte-identical to a campaign that
    // never contained the panicking scenario.
    let survivors = run.artifacts();
    let reference = Executor::new(2).run(&clean);
    let a = serde_json::to_string(&survivors).expect("serialize survivors");
    let b = serde_json::to_string(&reference).expect("serialize reference");
    assert_eq!(a, b, "panic isolation perturbed surviving artifacts");
}
