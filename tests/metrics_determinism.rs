//! Observability-layer integration tests: campaign metrics must be
//! deterministic wherever the underlying quantities are.
//!
//! * The same seed at `--jobs 1` and `--jobs 4` must produce
//!   byte-identical **per-scenario** deterministic metrics snapshots —
//!   per-scenario registries are created inside the scenario, so no
//!   counter can observe worker scheduling.
//! * The merged campaign snapshot (per-scenario snapshots absorbed into
//!   one registry) must likewise be byte-identical, after stripping the
//!   wall-clock timers via [`csig_obs::Snapshot::deterministic`].
//! * The headline counters the paper pipeline depends on — simulator
//!   events, RTT samples, verdicts — must actually be non-empty.

use csig_exec::{Campaign, Executor};
use csig_obs::MetricsRegistry;
use csig_testbed::{AccessParams, ObservedSweepScenario, Profile, SweepScenario};

/// A small interleaved self/external campaign on the figure-1 point.
fn campaign(reps: u32, seed: u64) -> Campaign<ObservedSweepScenario> {
    let mut campaign = Campaign::new(seed);
    for _ in 0..reps {
        for external in [false, true] {
            campaign.push(ObservedSweepScenario(SweepScenario {
                access: AccessParams::figure1(),
                external,
                profile: Profile::Scaled,
            }));
        }
    }
    campaign
}

#[test]
fn per_scenario_metrics_are_jobs_invariant() {
    let reg1 = MetricsRegistry::new();
    let reg4 = MetricsRegistry::new();
    let seq = Executor::new(1)
        .run_observed_with_progress(&campaign(3, 0x0B5), &reg1, |_| {})
        .expect_artifacts();
    let par = Executor::new(4)
        .run_observed_with_progress(&campaign(3, 0x0B5), &reg4, |_| {})
        .expect_artifacts();
    assert_eq!(seq.len(), par.len());

    for (i, ((r1, s1, t1), (r4, s4, t4))) in seq.iter().zip(&par).enumerate() {
        // The measurement itself is jobs-invariant (pre-existing
        // contract), and so is every per-scenario snapshot and trace.
        assert_eq!(format!("{r1:?}"), format!("{r4:?}"), "result {i}");
        assert_eq!(
            s1.deterministic().to_json(),
            s4.deterministic().to_json(),
            "scenario {i} deterministic snapshot depends on --jobs"
        );
        let l1: Vec<String> = t1.iter().map(|e| e.to_json_line()).collect();
        let l4: Vec<String> = t4.iter().map(|e| e.to_json_line()).collect();
        assert_eq!(l1, l4, "scenario {i} trace depends on --jobs");
        // The snapshots carry real content.
        assert!(s1.counter("sim.events").unwrap_or(0) > 0, "scenario {i}");
        assert!(s1.counter("rtt.samples").unwrap_or(0) > 0, "scenario {i}");
        assert_eq!(
            s1.counter("flows.verdicts").unwrap_or(0)
                + s1.counter("flows.skips_insufficient").unwrap_or(0),
            1,
            "scenario {i} must be counted exactly once"
        );
    }

    // Merged campaign view: absorb per-scenario snapshots in submission
    // order and compare the deterministic subset byte-for-byte — the
    // same merge `fig1 --metrics-out` writes.
    for (_, snap, _) in &seq {
        reg1.absorb(snap);
    }
    for (_, snap, _) in &par {
        reg4.absorb(snap);
    }
    let merged1 = reg1.snapshot().deterministic();
    let merged4 = reg4.snapshot().deterministic();
    assert_eq!(merged1.to_json(), merged4.to_json());
    assert!(!merged1.is_empty());
    assert_eq!(merged1.counter("exec.scenarios_ok"), Some(6));
    assert!(merged1.counter("flows.verdicts").unwrap_or(0) > 0);
    // The raw (non-deterministic) snapshot does carry wall-clock
    // timers; determinism is a property of the stripped view only.
    assert!(reg1.snapshot().histogram("time.scenario_wall_us").is_some());
    assert!(merged1.histogram("time.scenario_wall_us").is_none());
}
