//! Cross-crate integration over the M-Lab reconstructions: campaign
//! generation, Web100 filtering, labeling and classification.

use tcp_congestion_signatures::mlab::{
    generate, label_dispute2014, run_campaign, AccessIsp, Dispute2014Config, Month, Tslp2017Config,
};
use tcp_congestion_signatures::prelude::*;
use tcp_congestion_signatures::tslp::{interdomain_episodes, DetectorParams};

#[test]
fn dispute_campaign_passes_mlab_filters() {
    let tests = generate(&Dispute2014Config {
        tests_per_cell: 2,
        test_duration: SimDuration::from_secs(3),
        seed: 7001,
    });
    // The paper keeps tests lasting ≥90% of the duration that were
    // congestion-limited ≥90% of the time. Virtually all synthetic NDT
    // tests qualify (they are bulk downloads with a huge rwnd).
    let passing = tests
        .iter()
        .filter(|t| {
            t.measurement
                .web100
                .passes_mlab_filter(SimDuration::from_secs(2))
        })
        .count();
    assert!(
        passing as f64 > 0.9 * tests.len() as f64,
        "{passing}/{} pass",
        tests.len()
    );
    // And the filter actually measures something: sender-limited time
    // is negligible for these flows.
    for t in tests.iter().take(5) {
        assert!(t.measurement.web100.congestion_limited > 0.9);
        assert!(t.measurement.web100.bytes_acked > 0);
    }
}

#[test]
fn dispute_labels_track_generator_ground_truth() {
    let tests = generate(&Dispute2014Config {
        tests_per_cell: 6,
        test_duration: SimDuration::from_secs(3),
        seed: 7002,
    });
    let mut agree = 0usize;
    let mut labeled = 0usize;
    for t in &tests {
        if let Some(label) = label_dispute2014(t) {
            labeled += 1;
            let truth = if t.congested {
                CongestionClass::External
            } else {
                CongestionClass::SelfInduced
            };
            if truth == label {
                agree += 1;
            }
        }
    }
    assert!(labeled > 20, "only {labeled} labeled");
    // The paper's coarse labeling is imperfect by design, but with the
    // synthetic campaign's near-deterministic peak congestion it should
    // agree with ground truth for the vast majority of labeled tests.
    assert!(
        agree as f64 > 0.85 * labeled as f64,
        "{agree}/{labeled} labels agree with ground truth"
    );
}

#[test]
fn cox_is_never_congested_and_always_fast_off_peak() {
    let tests = generate(&Dispute2014Config {
        tests_per_cell: 4,
        test_duration: SimDuration::from_secs(3),
        seed: 7003,
    });
    for t in tests.iter().filter(|t| t.isp == AccessIsp::Cox) {
        assert!(!t.congested, "Cox got congested: {t:?}");
    }
    // Jan-Feb Cox throughput should not differ structurally from
    // Mar-Apr Cox throughput (no dispute effect).
    let mean = |months: &[Month]| {
        let v: Vec<f64> = tests
            .iter()
            .filter(|t| t.isp == AccessIsp::Cox && months.contains(&t.month))
            .map(|t| t.measurement.throughput_mbps)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let jf = mean(&[Month::Jan, Month::Feb]);
    let ma = mean(&[Month::Mar, Month::Apr]);
    assert!(
        (jf - ma).abs() < 0.5 * jf.max(ma),
        "Cox changed across the dispute: {jf} vs {ma}"
    );
}

#[test]
fn tslp_campaign_detection_and_classification_agree() {
    let out = run_campaign(&Tslp2017Config {
        days: 3,
        episode_days: vec![1],
        peak_test_minutes: 90,
        offpeak_test_minutes: 240,
        test_duration: SimDuration::from_secs(3),
        probe_interval: SimDuration::from_secs(600),
        ..Tslp2017Config::default()
    });
    // TSLP finds exactly the scheduled episode.
    let eps = interdomain_episodes(
        &out.near,
        &out.far,
        DetectorParams {
            min_elevation_ms: 6.0,
            min_run: 2,
        },
    );
    assert_eq!(eps.len(), 1);

    // A testbed-trained classifier marks the episode's tests external
    // and the rest self-induced.
    let results = Sweep {
        grid: tcp_congestion_signatures::testbed::small_grid(),
        reps: 3,
        profile: Profile::Scaled,
        seed: 7004,
    }
    .run(|_, _| {});
    let clf = train_from_results(&results, 0.7, TreeParams::default()).expect("model");
    let mut ep_external = 0usize;
    let mut ep_total = 0usize;
    let mut clean_self = 0usize;
    let mut clean_total = 0usize;
    for t in &out.tests {
        let Ok(f) = &t.measurement.features else {
            continue;
        };
        let pred = clf.classify(f);
        if t.during_episode {
            ep_total += 1;
            ep_external += usize::from(pred == CongestionClass::External);
        } else {
            clean_total += 1;
            clean_self += usize::from(pred == CongestionClass::SelfInduced);
        }
    }
    assert!(ep_total >= 2);
    assert!(
        ep_external as f64 >= 0.75 * ep_total as f64,
        "{ep_external}/{ep_total} episode tests classified external"
    );
    assert!(
        clean_self as f64 >= 0.9 * clean_total as f64,
        "{clean_self}/{clean_total} clean tests classified self"
    );
}
