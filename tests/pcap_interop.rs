//! Capture interoperability: a verdict computed from a live capture
//! must survive a pcap export/import round-trip (i.e. the offline
//! `tcpdump → analyze` workflow the paper uses is equivalent to the
//! online one).

use tcp_congestion_signatures::prelude::*;
use tcp_congestion_signatures::testbed;
use tcp_congestion_signatures::trace::{read_pcap, write_pcap};

#[test]
fn verdict_survives_pcap_roundtrip() {
    // Train a quick model.
    let results = Sweep {
        grid: vec![AccessParams::figure1()],
        reps: 3,
        profile: Profile::Scaled,
        seed: 11,
    }
    .run(|_, _| {});
    let clf = train_from_results(&results, 0.7, TreeParams::default()).expect("model");

    // Run a fresh test, capture at the server.
    let cfg = TestbedConfig::scaled(AccessParams::figure1(), 987);
    let mut tb = testbed::build(&cfg);
    let cap = tb.attach_capture();
    tb.sim
        .run_until(tb.test_end + SimDuration::from_millis(500));
    let capture = tb.sim.take_capture(cap);

    // Online verdicts.
    let online = analyze_capture(&clf, &capture);
    assert_eq!(online.len(), 1);
    let online_verdict = online[0].verdict.as_ref().expect("classifiable");

    // Export to a real pcap file and import it back.
    let mut buf = Vec::new();
    let n = write_pcap(&capture, &mut buf).expect("export");
    assert!(n > 1000, "only {n} packets exported");
    let imported = read_pcap(&buf[..], capture.node).expect("import");

    // Offline verdicts agree exactly.
    let offline = analyze_capture(&clf, &imported);
    assert_eq!(offline.len(), 1);
    let offline_verdict = offline[0].verdict.as_ref().expect("classifiable");
    assert_eq!(online_verdict.class, offline_verdict.class);
    assert_eq!(
        online_verdict.features.norm_diff,
        offline_verdict.features.norm_diff
    );
    assert_eq!(online_verdict.features.cov, offline_verdict.features.cov);
    assert_eq!(
        online_verdict.features.samples,
        offline_verdict.features.samples
    );
}

#[test]
fn pcap_file_has_standard_layout() {
    let cfg = TestbedConfig::scaled(AccessParams::figure1(), 988);
    let mut tb = testbed::build(&cfg);
    let cap = tb.attach_capture();
    tb.sim
        .run_until(tb.test_start + SimDuration::from_millis(500));
    let capture = tb.sim.take_capture(cap);
    let mut buf = Vec::new();
    write_pcap(&capture, &mut buf).expect("export");
    // Nanosecond little-endian magic and LINKTYPE_RAW.
    assert_eq!(&buf[0..4], &0xA1B2_3C4Du32.to_le_bytes());
    assert_eq!(&buf[20..24], &101u32.to_le_bytes());
    // First packet is IPv4 with protocol TCP.
    let first = &buf[24 + 16..];
    assert_eq!(first[0] >> 4, 4, "not IPv4");
    assert_eq!(first[9], 6, "not TCP");
}
