//! Property-style invariants of the signature itself, measured on real
//! simulations (not synthetic feature vectors).

use proptest::prelude::*;
use tcp_congestion_signatures::prelude::*;

/// Self-induced NormDiff tracks the buffer's share of the total RTT:
/// deeper buffers give strictly larger NormDiff at equal latency.
#[test]
fn norm_diff_grows_with_buffer_depth() {
    let feature_at = |buffer_ms: u64| {
        let access = AccessParams {
            rate_mbps: 20,
            loss_pct: 0.0,
            latency_ms: 20,
            buffer_ms,
        };
        run_test(&TestbedConfig::scaled(access, 2024))
            .features
            .expect("features")
            .norm_diff
    };
    let d20 = feature_at(20);
    let d50 = feature_at(50);
    let d100 = feature_at(100);
    assert!(d20 < d50, "20ms {d20} !< 50ms {d50}");
    assert!(d50 < d100, "50ms {d50} !< 100ms {d100}");
}

/// The theoretical ceiling: NormDiff ≈ buffer / (base RTT + buffer).
#[test]
fn norm_diff_close_to_buffer_fraction() {
    let access = AccessParams {
        rate_mbps: 20,
        loss_pct: 0.0,
        latency_ms: 20,
        buffer_ms: 100,
    };
    let f = run_test(&TestbedConfig::scaled(access, 31))
        .features
        .expect("features");
    // Base RTT ≈ 2×latency + core ≈ 46 ms ⇒ ceiling ≈ 100/146 ≈ 0.68.
    // Measured NormDiff should be near (within jitter/overshoot).
    assert!(
        (0.55..0.92).contains(&f.norm_diff),
        "norm_diff {} far from buffer fraction",
        f.norm_diff
    );
}

/// Baseline latency cancels out of the features (they are ratios): the
/// classifier's verdict for a self-induced flow must not flip between
/// 20 ms and 40 ms access latency.
#[test]
fn latency_invariance_of_the_verdict() {
    let results = Sweep {
        grid: vec![AccessParams::figure1()],
        reps: 3,
        profile: Profile::Scaled,
        seed: 71,
    }
    .run(|_, _| {});
    let clf = train_from_results(&results, 0.7, TreeParams::default()).expect("model");
    for latency_ms in [20u64, 40] {
        let access = AccessParams {
            rate_mbps: 20,
            loss_pct: 0.02,
            latency_ms,
            buffer_ms: 100,
        };
        let f = run_test(&TestbedConfig::scaled(access, 72))
            .features
            .expect("features");
        assert_eq!(
            clf.classify(&f),
            CongestionClass::SelfInduced,
            "latency {latency_ms} ms flipped the verdict"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed, a self-induced scaled run at the Figure-1 setting
    /// produces a valid feature vector with NormDiff in (0, 1] and
    /// CoV > 0, and classifiable slow-start throughput.
    #[test]
    fn prop_self_induced_runs_always_yield_valid_features(seed in 0u64..1000) {
        let r = run_test(&TestbedConfig::scaled(AccessParams::figure1(), seed));
        let f = r.features.expect("self-induced runs are never starved");
        prop_assert!(f.norm_diff > 0.0 && f.norm_diff <= 1.0);
        prop_assert!(f.cov > 0.0);
        prop_assert!(f.samples >= 10);
        prop_assert!(r.ss_throughput_bps > 0.0);
        prop_assert!(r.slow_start.end.is_some(), "slow start never ended");
    }
}
