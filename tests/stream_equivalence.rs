//! Streaming / batch equivalence, proven on live simulations.
//!
//! The streaming per-flow pipeline (`RttExtractor`, `SlowStartTracker`,
//! `ThroughputTracker`, `FeatureAccumulator`, `FlowProbe`,
//! `LiveAnalyzer`) must produce *exactly* — bit for bit — the results
//! of the buffer-everything batch path, across randomized loss rates,
//! jitter (reordering pressure), flow counts and transfer sizes. Both
//! paths observe the same simulation through independent taps: a
//! buffering `Capture` and the streaming sinks, attached side by side.

use proptest::prelude::*;
use tcp_congestion_signatures::core::{analyze_capture, LiveAnalyzer, ModelMeta};
use tcp_congestion_signatures::dtree::TreeParams;
use tcp_congestion_signatures::features::{features_from_samples, FlowProbe};
use tcp_congestion_signatures::netsim::{
    Capture, FlowId, LinkConfig, SimDuration, Simulator, SinkHandle,
};
use tcp_congestion_signatures::prelude::*;
use tcp_congestion_signatures::trace::{
    capacity_estimate_bps, RttExtractor, SlowStartTracker, ThroughputTracker,
};

/// Build a server-behind-router topology with `n_flows` clients, run it
/// with a buffering capture *and* streaming sinks attached to the same
/// server node, and return everything.
fn run_with_both_taps(
    seed: u64,
    loss_pct: f64,
    jitter_ms: u64,
    n_flows: u32,
    size: u64,
) -> (Simulator, Capture, Vec<(FlowId, SinkHandle)>, SinkHandle) {
    let ms = SimDuration::from_millis;
    let mut sim = Simulator::new(seed);
    let server = sim.add_host(Box::new(TcpServerAgent::new(
        TcpConfig::default(),
        ServerSendPolicy::Fixed(size),
    )));
    let router = sim.add_router();
    sim.add_duplex_link(server, router, LinkConfig::new(1_000_000_000, ms(2)));

    let mut flows = Vec::new();
    for i in 0..n_flows {
        let flow = FlowId(1000 + 100 * i);
        let client = sim.add_host(Box::new(TcpClientAgent::new(
            server,
            TcpConfig::default(),
            ClientBehavior::Once,
            flow.0,
        )));
        // Each client behind its own shaped access link; loss and
        // jitter provide retransmissions and reordering pressure.
        sim.add_link(
            router,
            client,
            LinkConfig::new(10_000_000 + 5_000_000 * i as u64, ms(10 + 5 * i as u64))
                .buffer_ms(80)
                .loss(loss_pct / 100.0)
                .jitter(ms(jitter_ms)),
        );
        sim.add_link(
            client,
            router,
            LinkConfig::new(100_000_000, ms(1)).buffer_ms(20),
        );
        flows.push(flow);
    }
    sim.compute_routes();

    let cap = sim.attach_capture(server);
    let probes: Vec<(FlowId, SinkHandle)> = flows
        .iter()
        .map(|&f| (f, sim.attach_sink(server, Box::new(FlowProbe::new(f)))))
        .collect();
    let live = sim.attach_sink(server, Box::new(LiveAnalyzer::new(tiny_model())));

    sim.set_event_budget(50_000_000);
    sim.run_until(tcp_congestion_signatures::netsim::SimTime::ZERO + SimDuration::from_secs(30));

    let capture = sim.take_capture(cap);
    (sim, capture, probes, live)
}

fn tiny_model() -> SignatureClassifier {
    let mut d = Dataset::new();
    for i in 0..20 {
        let x = i as f64 / 20.0;
        d.push(vec![0.6 + 0.4 * x, 0.15 + 0.2 * x], 0);
        d.push(vec![0.3 * x, 0.05 * x], 1);
    }
    SignatureClassifier::train(
        &d,
        TreeParams::default(),
        ModelMeta {
            congestion_threshold: 0.8,
            trained_on: "equivalence-test".into(),
            n_train: 40,
            n_filtered: 0,
        },
    )
}

fn check_equivalence(seed: u64, loss_pct: f64, jitter_ms: u64, n_flows: u32, size: u64) {
    let (sim, capture, probes, live_h) =
        run_with_both_taps(seed, loss_pct, jitter_ms, n_flows, size);
    let flows = split_flows(&capture);

    for (flow, probe_h) in &probes {
        let probe: &FlowProbe = sim.sink(*probe_h).expect("probe tap");
        let trace = &flows[flow];

        // Streaming state machines, fed incrementally, against the
        // batch functions over the buffered trace.
        let mut rtt = RttExtractor::new();
        let mut ss_tracker = SlowStartTracker::new();
        let mut tput = ThroughputTracker::new();
        let streamed: Vec<_> = trace.records.iter().filter_map(|r| rtt.push(r)).collect();
        for r in &trace.records {
            ss_tracker.push(r);
            tput.push(r);
        }
        let samples = extract_rtt_samples(trace);
        let ss = detect_slow_start(trace);
        assert_eq!(streamed, samples, "RttExtractor diverged (flow {flow:?})");
        assert_eq!(ss_tracker.snapshot(), ss, "SlowStartTracker diverged");
        assert_eq!(
            tput.summary(),
            throughput_summary(trace),
            "ThroughputTracker diverged"
        );
        assert_eq!(
            ss_tracker.capacity_estimate_bps(),
            capacity_estimate_bps(trace, &ss),
            "capacity estimate diverged"
        );

        // The live probe saw the interleaved multi-flow stream, not a
        // pre-split trace — its results must still be bit-identical.
        assert_eq!(probe.slow_start(), ss, "live probe slow start diverged");
        assert_eq!(
            probe.throughput(),
            throughput_summary(trace),
            "live probe throughput diverged"
        );
        assert_eq!(
            probe.features(),
            features_from_samples(&samples, &ss),
            "live probe features diverged"
        );
        assert_eq!(
            probe.min_rtt_ms(),
            samples
                .iter()
                .map(|s| s.rtt.as_millis_f64())
                .reduce(f64::min),
            "live probe min RTT diverged"
        );
    }

    // The live analyzer (emit-on-close, bounded state) against the
    // batch capture analysis.
    let live: &LiveAnalyzer = sim.sink(live_h).expect("live analyzer tap");
    let live_reports = live.clone().finish();
    let batch_reports = analyze_capture(&tiny_model(), &capture);
    assert_eq!(live_reports.len(), batch_reports.len());
    for (l, b) in live_reports.iter().zip(&batch_reports) {
        assert_eq!(l.flow, b.flow);
        match (&l.verdict, &b.verdict) {
            (Ok(lv), Ok(bv)) => {
                assert_eq!(lv.class, bv.class);
                assert_eq!(lv.confidence, bv.confidence);
                assert_eq!(lv.features, bv.features);
                assert_eq!(lv.slow_start, bv.slow_start);
            }
            (Err(le), Err(be)) => assert_eq!(le, be),
            (l, b) => panic!("verdict mismatch for flow: {l:?} vs {b:?}"),
        }
    }
}

/// The fixed headline case: lossy, jittery, multi-flow. Also asserts
/// the runs are substantive (data flowed, features computable) so the
/// equivalence above is not vacuous.
#[test]
fn streaming_equals_batch_on_lossy_multiflow_run() {
    check_equivalence(42, 1.0, 2, 3, 2_000_000);
    let (sim, capture, probes, _) = run_with_both_taps(42, 1.0, 2, 3, 2_000_000);
    assert!(
        capture.len() > 1000,
        "only {} records captured",
        capture.len()
    );
    for (flow, probe_h) in &probes {
        let probe: &FlowProbe = sim.sink(*probe_h).expect("probe tap");
        assert!(
            probe.samples_total() >= 10,
            "flow {flow:?}: only {} RTT samples",
            probe.samples_total()
        );
        let f = probe.features().expect("features computable");
        assert!(f.norm_diff > 0.0);
        assert!(probe.throughput().bytes_acked >= 2_000_000);
    }
}

/// Clean path, single flow (slow start never ends).
#[test]
fn streaming_equals_batch_without_retransmissions() {
    check_equivalence(7, 0.0, 0, 1, 300_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized loss, reordering jitter, flow count and size: the
    /// streaming pipeline reproduces the batch pipeline exactly.
    #[test]
    fn prop_streaming_equals_batch(
        seed in 0u64..10_000,
        loss_pct in 0.0f64..3.0,
        jitter_ms in 0u64..4,
        n_flows in 1u32..4,
        size_kb in 100u64..1500,
    ) {
        check_equivalence(seed, loss_pct, jitter_ms, n_flows, size_kb * 1000);
    }
}
