//! Offline vendored subset of `criterion`.
//!
//! Same bench-authoring API surface as real criterion for what this
//! workspace uses (`benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `iter`, `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros), but the runner is deliberately simple:
//! each benchmark is warmed up once, then timed over `sample_size`
//! samples whose iteration counts are auto-scaled so a sample takes a
//! measurable amount of time. Results (mean time per iteration, plus
//! derived throughput when configured) are printed to stdout. There is
//! no statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion-compatible).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the throughput basis for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.into()),
            &bencher.samples,
            self.throughput,
        );
        self
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the measured routine.
pub struct Bencher {
    /// (total duration, iterations) per sample.
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, auto-scaling iterations per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count that gives a
        // measurable (~5ms) sample, starting from a single call.
        let once = time(|| {
            std_black_box(routine());
        });
        let iters =
            (Duration::from_millis(5).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64;
        for _ in 0..self.sample_size {
            let elapsed = time(|| {
                for _ in 0..iters {
                    std_black_box(routine());
                }
            });
            self.samples.push((elapsed, iters));
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let elapsed = time(|| {
                std_black_box(routine(input));
            });
            self.samples.push((elapsed, 1));
        }
    }
}

fn time<F: FnOnce()>(f: F) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

fn report(id: &str, samples: &[(Duration, u64)], throughput: Option<Throughput>) {
    let (total, iters) = samples
        .iter()
        .fold((Duration::ZERO, 0u64), |(d, n), &(sd, sn)| (d + sd, n + sn));
    if iters == 0 {
        println!("{id}: no samples");
        return;
    }
    let per_iter_ns = total.as_nanos() as f64 / iters as f64;
    let mut line = format!("{id}: {} per iter", fmt_ns(per_iter_ns));
    if let Some(t) = throughput {
        let (units, label) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = units as f64 / (per_iter_ns / 1e9);
        line.push_str(&format!(" ({rate:.3e} {label})"));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions, optionally with a configured `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
