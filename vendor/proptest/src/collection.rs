//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for a `Vec` whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = vec(any::<u8>(), 0..2048);
        let mut saw_nonempty = false;
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 2048);
            saw_nonempty |= !v.is_empty();
        }
        assert!(saw_nonempty);
    }
}
