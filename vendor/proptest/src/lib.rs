//! Offline vendored subset of `proptest`.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`, `name in strategy` and
//! `name: Type` argument forms), [`prop_assert!`]/[`prop_assert_eq!`],
//! range strategies over primitives, tuple strategies,
//! [`collection::vec`], and [`prelude::any`]. Unlike real proptest
//! there is no shrinking: each test runs `cases` deterministic cases
//! (seeded per test name and case index, so failures reproduce across
//! runs), and on panic the failing inputs are printed before the panic
//! is re-raised. `.proptest-regressions` files are not read or
//! written.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use crate::strategy::any;

/// Define property tests. Each `fn` becomes a `#[test]` running
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run!($cfg, stringify!($name), ($($args)*), $body);
        }
        $crate::__proptest_fns!(@cfg($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ($cfg:expr, $name:expr, ($($args:tt)*), $body:block) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        let __name: &str = $name;
        for __case in 0..__cfg.cases {
            let mut __rng = $crate::test_runner::case_rng(__name, __case);
            let mut __dbg: ::std::vec::Vec<::std::string::String> = ::std::vec::Vec::new();
            let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                $crate::__proptest_case!(__rng, __dbg, $body, $($args)*)
            }));
            if let ::std::result::Result::Err(__payload) = __outcome {
                eprintln!(
                    "proptest: `{}` failed at case {}/{} with inputs:",
                    __name,
                    __case + 1,
                    __cfg.cases
                );
                for __line in &__dbg {
                    eprintln!("    {}", __line);
                }
                ::std::panic::resume_unwind(__payload);
            }
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $dbg:ident, $body:block $(,)?) => { $body };
    ($rng:ident, $dbg:ident, $body:block, $var:ident in $strat:expr $(, $($rest:tt)*)?) => {{
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $dbg.push(format!("{} = {:?}", stringify!($var), &$var));
        $crate::__proptest_case!($rng, $dbg, $body $(, $($rest)*)?)
    }};
    ($rng:ident, $dbg:ident, $body:block, $var:ident: $ty:ty $(, $($rest:tt)*)?) => {{
        let $var = $crate::strategy::Strategy::generate(
            &$crate::strategy::any::<$ty>(),
            &mut $rng,
        );
        $dbg.push(format!("{} = {:?}", stringify!($var), &$var));
        $crate::__proptest_case!($rng, $dbg, $body $(, $($rest)*)?)
    }};
}

/// Assert inside a property test (panics, like `assert!`; the runner
/// prints the failing inputs before propagating).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
