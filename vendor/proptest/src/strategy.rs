//! Value-generation strategies.
//!
//! A [`Strategy`] produces one value per call from the runner's RNG.
//! No shrink trees: the deterministic per-case seeding in
//! [`crate::test_runner`] makes failures reproducible without them.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// Generates values for property-test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t { rng.gen() }
        }
    )*};
}
arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = StdRng::seed_from_u64(2);
        let (b, x) = (any::<bool>(), 40u32..3000).generate(&mut rng);
        let _: bool = b;
        assert!((40..3000).contains(&x));
    }
}
