//! Test configuration and deterministic per-case seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Property-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one case: seeded from the test name (FNV-1a)
/// mixed with the case index, so every run of the suite replays the
/// same inputs and a reported failing case reproduces exactly.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn case_rngs_are_stable_and_distinct() {
        let word = |name, case| case_rng(name, case).next_u64();
        assert_eq!(word("t", 0), word("t", 0));
        assert_ne!(word("t", 0), word("t", 1));
        assert_ne!(word("t", 0), word("u", 0));
    }
}
